//! Breadth-First Search as a GraphMat vertex program.
//!
//! The paper's formulation (§3-II): the root gets distance 0 and is active;
//! at iteration `t` every vertex adjacent to an active vertex computes
//! `Distance(v) = min(Distance(v), t + 1)`, and vertices whose distance
//! changed (from ∞) become active. BFS runs on the symmetrized, unweighted
//! graph (§5.1).
//!
//! The program never reads edge values, so it is generic over the edge type
//! `E`. Running it on an `EdgeList<()>` takes the zero-cost unweighted fast
//! path: the DCSC matrices store no edge values, saving 4 bytes/edge of
//! memory traffic versus an `f32`-weighted graph of the same topology.

use crate::AlgorithmOutput;
use graphmat_core::error::Result;
use graphmat_core::{
    run_graph_program, ActivityPolicy, EdgeDirection, Graph, GraphBuildOptions, GraphProgram,
    GraphView, RunOptions, Session, Topology, VertexId,
};
use graphmat_io::edgelist::EdgeList;

/// Distance value meaning "not reached yet".
pub const UNREACHED: u32 = u32::MAX;

/// BFS parameters.
#[derive(Clone, Copy, Debug)]
pub struct BfsConfig {
    /// The root vertex the search starts from.
    pub root: VertexId,
    /// Symmetrize the input graph first (the paper always does for BFS).
    pub symmetrize: bool,
    /// Graph construction options.
    pub build: GraphBuildOptions,
}

impl Default for BfsConfig {
    fn default() -> Self {
        BfsConfig {
            root: 0,
            symmetrize: true,
            build: GraphBuildOptions::default().with_in_edges(false),
        }
    }
}

impl BfsConfig {
    /// BFS from the given root with default settings.
    pub fn from_root(root: VertexId) -> Self {
        BfsConfig {
            root,
            ..Default::default()
        }
    }
}

/// The BFS vertex program. The vertex property is the current distance from
/// the root (`UNREACHED` if not discovered yet). Generic over the (ignored)
/// edge type; `BfsProgram<()>` is the unweighted fast path.
pub struct BfsProgram<E = ()> {
    _edge: std::marker::PhantomData<E>,
}

impl<E> Default for BfsProgram<E> {
    fn default() -> Self {
        BfsProgram {
            _edge: std::marker::PhantomData,
        }
    }
}

impl<E: Clone + Send + Sync> GraphProgram for BfsProgram<E> {
    type VertexProp = u32;
    type Message = u32;
    type Reduced = u32;
    type Edge = E;

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    fn send_message(&self, _v: VertexId, dist: &u32) -> Option<u32> {
        Some(*dist)
    }

    fn process_message(&self, msg: &u32, _edge: &E, _dst: &u32) -> u32 {
        msg.saturating_add(1)
    }

    fn reduce(&self, acc: &mut u32, value: u32) {
        if value < *acc {
            *acc = value;
        }
    }

    fn apply(&self, reduced: &u32, dist: &mut u32) {
        if *reduced < *dist {
            *dist = *reduced;
        }
    }
}

/// Run BFS and return the per-vertex hop distance from the root
/// ([`UNREACHED`] for vertices in other components).
///
/// Accepts any edge value type — weights are ignored. Pass an
/// `EdgeList<()>` (from [`EdgeList::from_pairs`] or
/// [`EdgeList::topology`]) for the unweighted fast path.
pub fn bfs<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    config: &BfsConfig,
    options: &RunOptions,
) -> AlgorithmOutput<u32> {
    assert!(
        config.root < edges.num_vertices(),
        "BFS root {} out of range ({} vertices)",
        config.root,
        edges.num_vertices()
    );
    let symmetric;
    let edges = if config.symmetrize {
        symmetric = edges.symmetrized();
        &symmetric
    } else {
        edges
    };

    let mut graph: Graph<u32, E> = Graph::from_edge_list(edges, config.build);
    graph.set_all_properties(UNREACHED);
    graph.set_property(config.root, 0);
    graph.set_active(config.root);

    let result = run_graph_program(&BfsProgram::<E>::default(), &mut graph, options);
    AlgorithmOutput {
        values: graph.properties().to_vec(),
        stats: result.stats,
        converged: result.converged,
    }
}

/// Run BFS over a pre-built shared topology through a [`Session`] and
/// return the per-vertex hop distance from the root.
///
/// The serving-shape entry point: build the topology once
/// (`session.build_graph(&edges.symmetrized()).in_edges(false).finish()?`),
/// share it via `Arc`, and call this from any number of threads
/// concurrently. Unlike [`bfs`], no preprocessing happens here — symmetrize
/// the edge list before building if the search should ignore direction.
///
/// # Errors
///
/// [`graphmat_core::GraphMatError::VertexOutOfRange`] if `root` is not a
/// vertex of the topology.
pub fn bfs_on<E: Clone + Send + Sync>(
    session: &Session,
    topology: &Topology<E>,
    root: VertexId,
) -> Result<AlgorithmOutput<u32>> {
    bfs_view(session, GraphView::base(topology), root)
}

/// [`bfs_on`] over a `(base ⊕ delta)` [`GraphView`] — typically
/// `snapshot.view()` from a [`graphmat_core::store::GraphStore`] snapshot.
/// The search traverses the **edited** graph, bit-for-bit identical to a
/// run against a topology rebuilt from the edited edge list.
pub fn bfs_view<E: Clone + Send + Sync>(
    session: &Session,
    view: GraphView<'_, E>,
    root: VertexId,
) -> Result<AlgorithmOutput<u32>> {
    session
        .run_view(view, BfsProgram::<E>::default())
        .init_all(UNREACHED)
        .seed_with(root, 0)
        // BFS semantics are fixed: frontier-driven, run to convergence —
        // session-wide run defaults must not silently truncate or
        // over-activate the search.
        .activity(ActivityPolicy::Changed)
        .until_convergence()
        .execute()
        .map(AlgorithmOutput::from)
}

/// Run BFS into a caller-owned (pooled) state — the serving hot path.
///
/// Like [`bfs_on`] but with zero per-query allocation in the steady state:
/// the hop distances are left in `state` instead of a fresh `Vec`, and the
/// engine workspace cached inside the state is recycled. Use one
/// [`graphmat_core::StatePool`] per program type (see its docs); pass a
/// `deadline` to bound wall-clock time
/// ([`graphmat_core::GraphMatError::DeadlineExceeded`] past it).
pub fn bfs_into<E: Clone + Send + Sync + 'static>(
    session: &Session,
    topology: &Topology<E>,
    root: VertexId,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<u32>,
) -> Result<graphmat_core::RunResult> {
    bfs_view_into(session, GraphView::base(topology), root, deadline, state)
}

/// [`bfs_into`] over a `(base ⊕ delta)` [`GraphView`] — the serving hot path
/// when the store has pending deltas. Identical pooling/allocation behaviour.
pub fn bfs_view_into<E: Clone + Send + Sync + 'static>(
    session: &Session,
    view: GraphView<'_, E>,
    root: VertexId,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<u32>,
) -> Result<graphmat_core::RunResult> {
    session
        .run_view(view, BfsProgram::<E>::default())
        .init_all(UNREACHED)
        .seed_with(root, 0)
        .activity(ActivityPolicy::Changed)
        .until_convergence()
        .deadline(deadline)
        .execute_with(state)
}

/// Queue-based reference BFS used by tests.
pub fn bfs_reference<E: Clone>(edges: &EdgeList<E>, root: VertexId, symmetrize: bool) -> Vec<u32> {
    let symmetric;
    let edges = if symmetrize {
        symmetric = edges.symmetrized();
        &symmetric
    } else {
        edges
    };
    let n = edges.num_vertices() as usize;
    let mut adj = vec![Vec::new(); n];
    for &(s, d, _) in edges.edges() {
        adj[s as usize].push(d as usize);
    }
    let mut dist = vec![UNREACHED; n];
    let mut queue = std::collections::VecDeque::new();
    dist[root as usize] = 0;
    queue.push_back(root as usize);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if dist[v] == UNREACHED {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_branch() -> EdgeList<()> {
        // 0-1-2-3 chain plus branch 1-4; vertex 5 isolated
        EdgeList::from_pairs(6, vec![(0, 1), (1, 2), (2, 3), (1, 4)])
    }

    #[test]
    fn distances_match_reference() {
        let el = chain_with_branch();
        let out = bfs(&el, &BfsConfig::from_root(0), &RunOptions::sequential());
        assert_eq!(out.values, bfs_reference(&el, 0, true));
        assert_eq!(out.values, vec![0, 1, 2, 3, 2, UNREACHED]);
        assert!(out.converged);
    }

    #[test]
    fn symmetrization_makes_directed_edges_traversable_backwards() {
        let el = EdgeList::from_pairs(3, vec![(1, 0), (1, 2)]);
        // rooted at 0: without symmetrization nothing is reachable
        let no_sym = bfs(
            &el,
            &BfsConfig {
                root: 0,
                symmetrize: false,
                ..Default::default()
            },
            &RunOptions::sequential(),
        );
        assert_eq!(no_sym.values, vec![0, UNREACHED, UNREACHED]);
        let sym = bfs(&el, &BfsConfig::from_root(0), &RunOptions::sequential());
        assert_eq!(sym.values, vec![0, 1, 2]);
    }

    #[test]
    fn number_of_supersteps_equals_eccentricity() {
        let el = chain_with_branch();
        let out = bfs(&el, &BfsConfig::from_root(0), &RunOptions::sequential());
        // frontier advances one hop per superstep; final superstep discovers
        // nothing new, so iterations = max distance + 1
        assert_eq!(out.stats.iterations, 4);
    }

    #[test]
    #[should_panic]
    fn out_of_range_root_panics() {
        let el = chain_with_branch();
        let _ = bfs(&el, &BfsConfig::from_root(99), &RunOptions::sequential());
    }

    #[test]
    fn session_driver_matches_facade() {
        let el = chain_with_branch();
        let session = Session::sequential();
        let topo = session
            .build_graph(&el.symmetrized())
            .in_edges(false)
            .finish()
            .unwrap();
        let on = bfs_on(&session, &topo, 0).unwrap();
        let facade = bfs(&el, &BfsConfig::from_root(0), &RunOptions::sequential());
        assert_eq!(on.values, facade.values);
        assert!(on.converged);

        // Misuse is an error, not a panic.
        let err = bfs_on(&session, &topo, 99).unwrap_err();
        assert_eq!(
            err,
            graphmat_core::GraphMatError::VertexOutOfRange {
                vertex: 99,
                num_vertices: 6
            }
        );
    }

    #[test]
    fn session_run_defaults_cannot_truncate_the_search() {
        // A session whose run defaults cap iterations at 1 (say, for
        // PageRank-style workloads) must not silently truncate a
        // convergence-driven driver: bfs_on pins its own termination.
        use graphmat_core::{RunOptions, SessionOptions};
        let session = Session::new(
            SessionOptions::default()
                .with_threads(1)
                .with_run_defaults(RunOptions::sequential().with_max_iterations(1)),
        )
        .unwrap();
        let el = chain_with_branch();
        let topo = session
            .build_graph(&el.symmetrized())
            .in_edges(false)
            .finish()
            .unwrap();
        let out = bfs_on(&session, &topo, 0).unwrap();
        assert!(out.converged);
        assert_eq!(out.values, vec![0, 1, 2, 3, 2, UNREACHED]);
    }

    #[test]
    fn pooled_driver_matches_and_reruns_identically() {
        let el = chain_with_branch();
        let session = Session::sequential();
        let topo = session
            .build_graph(&el.symmetrized())
            .in_edges(false)
            .finish()
            .unwrap();
        let on = bfs_on(&session, &topo, 0).unwrap();

        let mut pool = graphmat_core::StatePool::for_topology(&topo);
        let mut state = pool.acquire();
        bfs_into(&session, &topo, 0, None, &mut state).unwrap();
        assert_eq!(state.properties(), on.values.as_slice());
        pool.release(state);

        // Rerun from the pool: the stale distances must be re-initialized
        // and the cached workspace reused.
        let mut state = pool.acquire();
        bfs_into(&session, &topo, 1, None, &mut state).unwrap();
        let fresh = bfs_on(&session, &topo, 1).unwrap();
        assert_eq!(state.properties(), fresh.values.as_slice());
        assert!(state.has_cached_workspace());
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn parallel_matches_sequential_on_rmat() {
        let el =
            graphmat_io::rmat::generate(&graphmat_io::rmat::RmatConfig::graph500(9).with_seed(21));
        let cfg = BfsConfig::from_root(1);
        let seq = bfs(&el, &cfg, &RunOptions::sequential());
        let par = bfs(&el, &cfg, &RunOptions::default().with_threads(4));
        assert_eq!(seq.values, par.values);
        assert_eq!(seq.values, bfs_reference(&el, 1, true));
    }
}
