//! Collaborative filtering (matrix factorization by gradient descent) as a
//! GraphMat vertex program.
//!
//! The paper's formulation (§3-III, equations 3–6): each user `u` and item
//! `v` owns a latent vector `p ∈ ℝᴷ`; the goal is to minimise
//! `Σ (G_uv − pᵤᵀp_v)² + λ(‖pᵤ‖² + ‖p_v‖²)`. One gradient-descent step per
//! superstep:
//!
//! ```text
//! e_uv = G_uv − pᵤᵀ p_v
//! pᵤ ← pᵤ + γ [ Σ_v e_uv p_v − λ pᵤ ]
//! p_v ← p_v + γ [ Σ_u e_uv pᵤ − λ p_v ]
//! ```
//!
//! The ratings graph is bipartite (edges run user → item) and the program
//! scatters along **both** edge directions, so users and items update
//! simultaneously from the previous superstep's values — which is exactly GD
//! (not SGD), the reason the paper's CF is *faster* than the SGD native
//! baseline in Table 3.
//!
//! `PROCESS_MESSAGE` needs the destination vertex's latent vector to compute
//! `e_uv`; as with triangle counting, this is the frontend capability that
//! pure-semiring frameworks lack.

use crate::AlgorithmOutput;
use graphmat_core::error::Result;
use graphmat_core::{
    run_graph_program, ActivityPolicy, EdgeDirection, Graph, GraphBuildOptions, GraphProgram,
    RunOptions, Session, Topology, VertexId,
};
use graphmat_io::bipartite::RatingsGraph;
use graphmat_io::edgelist::{EdgeList, EdgeWeight};

/// Collaborative filtering parameters.
#[derive(Clone, Copy, Debug)]
pub struct CfConfig {
    /// Number of latent features `K` (the paper uses a small constant; 20 by
    /// default here).
    pub latent_dims: usize,
    /// Regularisation weight `λ`.
    pub lambda: f64,
    /// Learning rate `γ`.
    pub gamma: f64,
    /// Number of gradient-descent iterations.
    pub iterations: usize,
    /// Seed for the deterministic initialisation of the latent vectors.
    pub seed: u64,
    /// Graph construction options (must keep in-edges enabled).
    pub build: GraphBuildOptions,
}

impl Default for CfConfig {
    fn default() -> Self {
        CfConfig {
            latent_dims: 20,
            lambda: 0.05,
            gamma: 0.002,
            iterations: 10,
            seed: 7,
            build: GraphBuildOptions::default(),
        }
    }
}

/// Per-vertex CF state: the latent feature vector.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CfVertex {
    /// Latent features (`K` entries).
    pub features: Vec<f64>,
}

/// The gradient-descent CF vertex program. Generic over any scalar-readable
/// rating type (`f32` by default, integer star ratings work too).
pub struct CfProgram<E = f32> {
    lambda: f64,
    gamma: f64,
    _edge: std::marker::PhantomData<E>,
}

impl<E: EdgeWeight> GraphProgram for CfProgram<E> {
    type VertexProp = CfVertex;
    type Message = Vec<f64>;
    type Reduced = Vec<f64>;
    type Edge = E;

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Both
    }

    fn send_message(&self, _v: VertexId, prop: &CfVertex) -> Option<Vec<f64>> {
        if prop.features.is_empty() {
            None
        } else {
            Some(prop.features.clone())
        }
    }

    fn process_message(&self, msg: &Vec<f64>, rating: &E, dst: &CfVertex) -> Vec<f64> {
        // e = G_uv − p_other · p_self ; contribution = e * p_other
        let dot: f64 = msg
            .iter()
            .zip(dst.features.iter())
            .map(|(a, b)| a * b)
            .sum();
        let error = rating.weight() as f64 - dot;
        msg.iter().map(|x| error * x).collect()
    }

    fn reduce(&self, acc: &mut Vec<f64>, value: Vec<f64>) {
        if acc.is_empty() {
            *acc = value;
        } else {
            for (a, v) in acc.iter_mut().zip(value) {
                *a += v;
            }
        }
    }

    fn apply(&self, reduced: &Vec<f64>, prop: &mut CfVertex) {
        if reduced.is_empty() {
            return;
        }
        for (p, grad) in prop.features.iter_mut().zip(reduced.iter()) {
            *p += self.gamma * (grad - self.lambda * *p);
        }
    }
}

/// Run collaborative filtering on a bipartite ratings graph and return the
/// per-vertex latent vectors (users first, then items, in vertex-id order).
pub fn collaborative_filtering(
    ratings: &RatingsGraph,
    config: &CfConfig,
    options: &RunOptions,
) -> AlgorithmOutput<Vec<f64>> {
    collaborative_filtering_edges(&ratings.edges, config, options)
}

/// Run collaborative filtering on a raw bipartite edge list (edges must run
/// from user vertices to item vertices; weights are ratings).
pub fn collaborative_filtering_edges<E: EdgeWeight>(
    edges: &EdgeList<E>,
    config: &CfConfig,
    options: &RunOptions,
) -> AlgorithmOutput<Vec<f64>> {
    assert!(config.latent_dims > 0, "latent_dims must be positive");
    assert!(
        config.build.build_in_edges,
        "collaborative filtering scatters along both directions; \
         build_in_edges must stay enabled"
    );
    let mut graph: Graph<CfVertex, E> = Graph::from_edge_list(edges, config.build);
    let k = config.latent_dims;
    let seed = config.seed;
    graph.init_properties(|v| CfVertex {
        features: (0..k).map(|i| init_feature(seed, v, i, k)).collect(),
    });
    graph.set_all_active();

    let program = CfProgram::<E> {
        lambda: config.lambda,
        gamma: config.gamma,
        _edge: std::marker::PhantomData,
    };
    let run_opts = RunOptions {
        max_iterations: Some(options.max_iterations.unwrap_or(config.iterations)),
        // gradient descent updates every user and item each iteration
        activity: ActivityPolicy::AlwaysAll,
        ..*options
    };
    let result = run_graph_program(&program, &mut graph, &run_opts);

    AlgorithmOutput {
        values: graph
            .properties()
            .iter()
            .map(|p| p.features.clone())
            .collect(),
        stats: result.stats,
        converged: result.converged,
    }
}

/// Run collaborative filtering over a pre-built shared topology through a
/// [`Session`].
///
/// The serving-shape variant of [`collaborative_filtering_edges`]. The
/// topology must be built from the bipartite ratings edge list **with
/// in-edges enabled** (the default) — the program scatters in both
/// directions, and a topology without the `G` matrix yields
/// [`graphmat_core::GraphMatError::MissingInMatrix`]. `config.build` is
/// ignored. A `config.iterations` of `0` returns the deterministic initial
/// latent vectors without running.
pub fn collaborative_filtering_on<E: EdgeWeight>(
    session: &Session,
    topology: &Topology<E>,
    config: &CfConfig,
) -> Result<AlgorithmOutput<Vec<f64>>> {
    if config.latent_dims == 0 {
        return Err(graphmat_core::GraphMatError::InvalidParameter(
            "collaborative filtering needs at least one latent dimension",
        ));
    }
    let k = config.latent_dims;
    let seed = config.seed;
    let initial = move |v: VertexId| CfVertex {
        features: (0..k).map(|i| init_feature(seed, v, i, k)).collect(),
    };
    if config.iterations == 0 {
        let n = topology.num_vertices();
        return Ok(AlgorithmOutput {
            values: (0..n).map(|v| initial(v).features).collect(),
            stats: crate::zero_superstep_stats(topology, session),
            converged: false,
        });
    }

    let program = CfProgram::<E> {
        lambda: config.lambda,
        gamma: config.gamma,
        _edge: std::marker::PhantomData,
    };
    let outcome = session
        .run(topology, program)
        .init_with(initial)
        .activate_all()
        .activity(ActivityPolicy::AlwaysAll)
        .max_iterations(config.iterations)
        .execute()?;
    Ok(AlgorithmOutput {
        values: outcome.values.into_iter().map(|p| p.features).collect(),
        stats: outcome.stats,
        converged: outcome.converged,
    })
}

/// Deterministic pseudo-random initial feature value in `[0, 1/√K)`.
fn init_feature(seed: u64, v: VertexId, i: usize, k: usize) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((v as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
        .wrapping_add((i as u64).wrapping_mul(0x165667B19E3779F9));
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51AFD7ED558CCD);
    h ^= h >> 33;
    (h >> 11) as f64 / (1u64 << 53) as f64 / (k as f64).sqrt()
}

/// Root-mean-square error of the factorization over the given ratings.
pub fn rmse<E: EdgeWeight>(edges: &EdgeList<E>, features: &[Vec<f64>]) -> f64 {
    if edges.num_edges() == 0 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for (u, v, rating) in edges.edges() {
        let prediction: f64 = features[*u as usize]
            .iter()
            .zip(features[*v as usize].iter())
            .map(|(a, b)| a * b)
            .sum();
        let err = rating.weight() as f64 - prediction;
        sum += err * err;
    }
    (sum / edges.num_edges() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmat_io::bipartite::{self, BipartiteConfig};

    fn small_ratings() -> RatingsGraph {
        bipartite::generate(&BipartiteConfig {
            num_users: 60,
            num_items: 15,
            num_ratings: 500,
            ..Default::default()
        })
    }

    #[test]
    fn rmse_decreases_over_iterations() {
        let ratings = small_ratings();
        let base = CfConfig {
            latent_dims: 8,
            iterations: 0,
            ..Default::default()
        };
        let trained_cfg = CfConfig {
            iterations: 30,
            ..base
        };
        let initial = collaborative_filtering(&ratings, &base, &RunOptions::sequential());
        let trained = collaborative_filtering(&ratings, &trained_cfg, &RunOptions::sequential());
        let rmse_initial = rmse(&ratings.edges, &initial.values);
        let rmse_trained = rmse(&ratings.edges, &trained.values);
        assert!(
            rmse_trained < rmse_initial * 0.9,
            "training should reduce RMSE: {rmse_initial} -> {rmse_trained}"
        );
    }

    #[test]
    fn latent_vectors_have_requested_dimension() {
        let ratings = small_ratings();
        let cfg = CfConfig {
            latent_dims: 5,
            iterations: 2,
            ..Default::default()
        };
        let out = collaborative_filtering(&ratings, &cfg, &RunOptions::sequential());
        assert_eq!(out.values.len(), ratings.edges.num_vertices() as usize);
        assert!(out.values.iter().all(|f| f.len() == 5));
    }

    #[test]
    fn runs_requested_iterations() {
        let ratings = small_ratings();
        let cfg = CfConfig {
            latent_dims: 4,
            iterations: 6,
            ..Default::default()
        };
        let out = collaborative_filtering(&ratings, &cfg, &RunOptions::sequential());
        assert_eq!(out.stats.iterations, 6);
    }

    #[test]
    fn parallel_matches_sequential() {
        let ratings = small_ratings();
        let cfg = CfConfig {
            latent_dims: 4,
            iterations: 5,
            ..Default::default()
        };
        let seq = collaborative_filtering(&ratings, &cfg, &RunOptions::sequential());
        let par = collaborative_filtering(&ratings, &cfg, &RunOptions::default().with_threads(4));
        for (a, b) in seq.values.iter().zip(par.values.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn session_driver_matches_facade_and_needs_in_edges() {
        let ratings = small_ratings();
        let cfg = CfConfig {
            latent_dims: 4,
            iterations: 5,
            ..Default::default()
        };
        let session = Session::sequential();
        let topo = session.build_graph(&ratings.edges).finish().unwrap();
        let on = collaborative_filtering_on(&session, &topo, &cfg).unwrap();
        let facade = collaborative_filtering(&ratings, &cfg, &RunOptions::sequential());
        assert_eq!(on.values, facade.values);

        let out_only = session
            .build_graph(&ratings.edges)
            .in_edges(false)
            .finish()
            .unwrap();
        assert_eq!(
            collaborative_filtering_on(&session, &out_only, &cfg).unwrap_err(),
            graphmat_core::GraphMatError::MissingInMatrix
        );

        // Invalid config is an error on the session path, never a panic.
        let bad = CfConfig {
            latent_dims: 0,
            ..cfg
        };
        assert!(matches!(
            collaborative_filtering_on(&session, &topo, &bad).unwrap_err(),
            graphmat_core::GraphMatError::InvalidParameter(_)
        ));
    }

    #[test]
    fn initialisation_is_deterministic_and_bounded() {
        for v in 0..50u32 {
            for i in 0..8usize {
                let a = init_feature(7, v, i, 8);
                let b = init_feature(7, v, i, 8);
                assert_eq!(a, b);
                assert!((0.0..1.0).contains(&a));
            }
        }
    }

    #[test]
    fn rmse_of_perfect_factorization_is_zero() {
        // rating = 2.0, features chosen so dot product = 2.0 exactly
        let el = EdgeList::from_tuples(2, vec![(0, 1, 2.0)]);
        let features = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert!(rmse(&el, &features) < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_latent_dims_panics() {
        let ratings = small_ratings();
        let cfg = CfConfig {
            latent_dims: 0,
            ..Default::default()
        };
        let _ = collaborative_filtering(&ratings, &cfg, &RunOptions::sequential());
    }
}
