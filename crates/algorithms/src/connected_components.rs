//! Connected components by label propagation (extension beyond the paper's
//! five algorithms).
//!
//! Every vertex starts with its own id as its component label; each superstep
//! it broadcasts its label and adopts the minimum label it hears. On a
//! symmetrized graph this converges to the minimum vertex id of each
//! connected component. The program demonstrates that new algorithms need
//! only a `GraphProgram` implementation — no backend changes — which is the
//! paper's productivity claim.

use crate::AlgorithmOutput;
use graphmat_core::error::Result;
use graphmat_core::{
    run_graph_program, ActivityPolicy, EdgeDirection, Graph, GraphBuildOptions, GraphProgram,
    GraphView, RunOptions, Session, Topology, VertexId,
};
use graphmat_io::edgelist::EdgeList;

/// Connected-components parameters.
#[derive(Clone, Copy, Debug)]
pub struct CcConfig {
    /// Symmetrize the input first (connected components are defined on the
    /// undirected graph).
    pub symmetrize: bool,
    /// Graph construction options.
    pub build: GraphBuildOptions,
}

impl Default for CcConfig {
    fn default() -> Self {
        CcConfig {
            symmetrize: true,
            build: GraphBuildOptions::default().with_in_edges(false),
        }
    }
}

/// The label-propagation vertex program. Generic over the (ignored) edge
/// type; `CcProgram<()>` is the unweighted fast path.
pub struct CcProgram<E = ()> {
    _edge: std::marker::PhantomData<E>,
}

impl<E> Default for CcProgram<E> {
    fn default() -> Self {
        CcProgram {
            _edge: std::marker::PhantomData,
        }
    }
}

impl<E: Clone + Send + Sync> GraphProgram for CcProgram<E> {
    type VertexProp = u32;
    type Message = u32;
    type Reduced = u32;
    type Edge = E;

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    fn send_message(&self, _v: VertexId, label: &u32) -> Option<u32> {
        Some(*label)
    }

    fn process_message(&self, msg: &u32, _edge: &E, _dst: &u32) -> u32 {
        *msg
    }

    fn reduce(&self, acc: &mut u32, value: u32) {
        if value < *acc {
            *acc = value;
        }
    }

    fn apply(&self, reduced: &u32, label: &mut u32) {
        if *reduced < *label {
            *label = *reduced;
        }
    }
}

/// Compute connected components; the result maps every vertex to the minimum
/// vertex id in its component.
pub fn connected_components<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    config: &CcConfig,
    options: &RunOptions,
) -> AlgorithmOutput<u32> {
    let symmetric;
    let edges = if config.symmetrize {
        symmetric = edges.symmetrized();
        &symmetric
    } else {
        edges
    };
    let mut graph: Graph<u32, E> = Graph::from_edge_list(edges, config.build);
    graph.init_properties(|v| v);
    graph.set_all_active();
    let result = run_graph_program(&CcProgram::<E>::default(), &mut graph, options);
    AlgorithmOutput {
        values: graph.properties().to_vec(),
        stats: result.stats,
        converged: result.converged,
    }
}

/// Compute connected components over a pre-built shared topology through a
/// [`Session`].
///
/// The serving-shape entry point. Connected components are defined on the
/// undirected graph, so build the topology from a **symmetrized** edge list
/// (`session.build_graph(&edges.symmetrized()).in_edges(false).finish()?`);
/// no preprocessing happens here.
pub fn connected_components_on<E: Clone + Send + Sync>(
    session: &Session,
    topology: &Topology<E>,
) -> Result<AlgorithmOutput<u32>> {
    connected_components_view(session, GraphView::base(topology))
}

/// [`connected_components_on`] over a `(base ⊕ delta)` [`GraphView`] —
/// typically `snapshot.view()` from a
/// [`graphmat_core::store::GraphStore`] snapshot. Labels propagate over the
/// **edited** graph, bit-for-bit identical to a run against a topology
/// rebuilt from the edited edge list.
pub fn connected_components_view<E: Clone + Send + Sync>(
    session: &Session,
    view: GraphView<'_, E>,
) -> Result<AlgorithmOutput<u32>> {
    session
        .run_view(view, CcProgram::<E>::default())
        .init_with(|v| v)
        .activate_all()
        // Label propagation must run until no label changes; don't let
        // session run defaults truncate or over-activate it.
        .activity(ActivityPolicy::Changed)
        .until_convergence()
        .execute()
        .map(AlgorithmOutput::from)
}

/// Run connected components into a caller-owned (pooled) state — the
/// serving hot path.
///
/// Like [`connected_components_on`] but with zero per-query allocation in
/// the steady state: the labels are left in `state` instead of a fresh
/// `Vec`, and the engine workspace cached inside the state is recycled. Use
/// one [`graphmat_core::StatePool`] per program type (see its docs); pass a
/// `deadline` to bound wall-clock time
/// ([`graphmat_core::GraphMatError::DeadlineExceeded`] past it).
pub fn connected_components_into<E: Clone + Send + Sync + 'static>(
    session: &Session,
    topology: &Topology<E>,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<u32>,
) -> Result<graphmat_core::RunResult> {
    connected_components_view_into(session, GraphView::base(topology), deadline, state)
}

/// [`connected_components_into`] over a `(base ⊕ delta)` [`GraphView`] —
/// the serving hot path when the store has pending deltas. Identical
/// pooling/allocation behaviour.
pub fn connected_components_view_into<E: Clone + Send + Sync + 'static>(
    session: &Session,
    view: GraphView<'_, E>,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<u32>,
) -> Result<graphmat_core::RunResult> {
    session
        .run_view(view, CcProgram::<E>::default())
        .init_with(|v| v)
        .activate_all()
        .activity(ActivityPolicy::Changed)
        .until_convergence()
        .deadline(deadline)
        .execute_with(state)
}

/// Number of distinct components in a label assignment.
pub fn component_count(labels: &[u32]) -> usize {
    let mut sorted: Vec<u32> = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Union-find reference implementation used by tests.
pub fn connected_components_reference<E>(edges: &EdgeList<E>) -> Vec<u32> {
    let n = edges.num_vertices() as usize;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for &(s, d, _) in edges.edges() {
        let (rs, rd) = (find(&mut parent, s as usize), find(&mut parent, d as usize));
        if rs != rd {
            parent[rs.max(rd)] = rs.min(rd);
        }
    }
    // canonical label: minimum id in the component
    let mut label = vec![0u32; n];
    for (v, slot) in label.iter_mut().enumerate() {
        *slot = find(&mut parent, v) as u32;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components() {
        let el = EdgeList::from_pairs(6, vec![(0, 1), (1, 2), (3, 4)]);
        let out = connected_components(&el, &CcConfig::default(), &RunOptions::sequential());
        assert_eq!(out.values, vec![0, 0, 0, 3, 3, 5]);
        assert_eq!(component_count(&out.values), 3);
        assert!(out.converged);
    }

    #[test]
    fn matches_union_find_reference() {
        let el = graphmat_io::uniform::generate(
            &graphmat_io::uniform::UniformConfig::new(300, 400).with_seed(13),
        );
        let out = connected_components(
            &el,
            &CcConfig::default(),
            &RunOptions::default().with_threads(4),
        );
        let reference = connected_components_reference(&el);
        assert_eq!(out.values, reference);
    }

    #[test]
    fn session_driver_matches_facade() {
        let el = EdgeList::from_pairs(6, vec![(0, 1), (1, 2), (3, 4)]);
        let session = Session::sequential();
        let topo = session
            .build_graph(&el.symmetrized())
            .in_edges(false)
            .finish()
            .unwrap();
        let on = connected_components_on(&session, &topo).unwrap();
        let facade = connected_components(&el, &CcConfig::default(), &RunOptions::sequential());
        assert_eq!(on.values, facade.values);
    }

    #[test]
    fn pooled_driver_matches_and_reruns_identically() {
        let el = EdgeList::from_pairs(6, vec![(0, 1), (1, 2), (3, 4)]);
        let session = Session::sequential();
        let topo = session
            .build_graph(&el.symmetrized())
            .in_edges(false)
            .finish()
            .unwrap();
        let on = connected_components_on(&session, &topo).unwrap();

        let mut pool = graphmat_core::StatePool::for_topology(&topo);
        let mut state = pool.acquire();
        connected_components_into(&session, &topo, None, &mut state).unwrap();
        assert_eq!(state.properties(), on.values.as_slice());
        pool.release(state);

        let mut state = pool.acquire();
        connected_components_into(&session, &topo, None, &mut state).unwrap();
        assert_eq!(state.properties(), on.values.as_slice());
        assert!(state.has_cached_workspace());
        assert_eq!((pool.created(), pool.reused()), (1, 1));
    }

    #[test]
    fn single_component_on_connected_graph() {
        let el = graphmat_io::grid::generate(&graphmat_io::grid::GridConfig {
            removal_fraction: 0.0,
            ..graphmat_io::grid::GridConfig::square(12)
        });
        let out = connected_components(&el, &CcConfig::default(), &RunOptions::sequential());
        assert_eq!(component_count(&out.values), 1);
        assert!(out.values.iter().all(|&l| l == 0));
    }

    #[test]
    fn directionality_is_ignored_via_symmetrization() {
        // directed chain 2 -> 1 -> 0: still one component
        let el = EdgeList::from_pairs(3, vec![(2, 1), (1, 0)]);
        let out = connected_components(&el, &CcConfig::default(), &RunOptions::sequential());
        assert_eq!(component_count(&out.values), 1);
    }
}
