//! Degree computation as a generalized SpMV (the paper's Figure 1 example).
//!
//! Multiplying `Gᵀ` by the all-ones vector yields in-degrees; multiplying `G`
//! by all-ones yields out-degrees. Expressed as a vertex program: every
//! vertex is active, sends the message `1`, `PROCESS_MESSAGE` is the constant
//! `1`, `REDUCE` is `+`, and `APPLY` stores the sum. The module exists partly
//! as the simplest possible example of the framework and partly so tests can
//! cross-check the engine against [`graphmat_core::Graph`]'s own degree
//! bookkeeping.

use crate::AlgorithmOutput;
use graphmat_core::error::Result;
use graphmat_core::{
    run_graph_program, EdgeDirection, Graph, GraphBuildOptions, GraphProgram, GraphView,
    RunOptions, Session, Topology, VertexId,
};
use graphmat_io::edgelist::EdgeList;

/// Degree-counting vertex program; the direction field selects which matrix
/// is traversed. Generic over the (ignored) edge type.
struct DegreeProgram<E> {
    direction: EdgeDirection,
    _edge: std::marker::PhantomData<E>,
}

impl<E: Clone + Send + Sync> GraphProgram for DegreeProgram<E> {
    type VertexProp = u64;
    type Message = u64;
    type Reduced = u64;
    type Edge = E;

    fn direction(&self) -> EdgeDirection {
        self.direction
    }

    fn send_message(&self, _v: VertexId, _prop: &u64) -> Option<u64> {
        Some(1)
    }

    fn process_message(&self, _msg: &u64, _edge: &E, _dst: &u64) -> u64 {
        1
    }

    fn reduce(&self, acc: &mut u64, value: u64) {
        *acc += value;
    }

    fn apply(&self, reduced: &u64, prop: &mut u64) {
        *prop = *reduced;
    }
}

fn run_degree<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    direction: EdgeDirection,
    options: &RunOptions,
) -> AlgorithmOutput<u64> {
    let mut graph: Graph<u64, E> = Graph::from_edge_list(edges, GraphBuildOptions::default());
    graph.set_all_active();
    let program = DegreeProgram {
        direction,
        _edge: std::marker::PhantomData,
    };
    let opts = RunOptions {
        max_iterations: Some(1),
        ..*options
    };
    let result = run_graph_program(&program, &mut graph, &opts);
    AlgorithmOutput {
        values: graph.properties().to_vec(),
        stats: result.stats,
        converged: true,
    }
}

/// In-degree of every vertex, computed as `Gᵀ · 1` (Figure 1 of the paper).
pub fn in_degrees<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    options: &RunOptions,
) -> AlgorithmOutput<u64> {
    run_degree(edges, EdgeDirection::Out, options)
}

/// Out-degree of every vertex, computed as `G · 1`.
pub fn out_degrees<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    options: &RunOptions,
) -> AlgorithmOutput<u64> {
    run_degree(edges, EdgeDirection::In, options)
}

fn run_degree_on<E: Clone + Send + Sync>(
    session: &Session,
    topology: &Topology<E>,
    direction: EdgeDirection,
) -> Result<AlgorithmOutput<u64>> {
    let program = DegreeProgram {
        direction,
        _edge: std::marker::PhantomData::<E>,
    };
    let outcome = session
        .run(topology, program)
        .activate_all()
        .max_iterations(1)
        .execute()?;
    Ok(AlgorithmOutput {
        values: outcome.values,
        stats: outcome.stats,
        converged: true,
    })
}

/// In-degrees over a pre-built shared topology through a [`Session`]
/// (serving-shape variant of [`in_degrees`]).
pub fn in_degrees_on<E: Clone + Send + Sync>(
    session: &Session,
    topology: &Topology<E>,
) -> Result<AlgorithmOutput<u64>> {
    run_degree_on(session, topology, EdgeDirection::Out)
}

/// Out-degrees over a pre-built shared topology through a [`Session`].
///
/// # Errors
///
/// [`graphmat_core::GraphMatError::MissingInMatrix`] if the topology was
/// built with `in_edges(false)` — the out-degree SpMV traverses `G`.
pub fn out_degrees_on<E: Clone + Send + Sync>(
    session: &Session,
    topology: &Topology<E>,
) -> Result<AlgorithmOutput<u64>> {
    run_degree_on(session, topology, EdgeDirection::In)
}

fn run_degree_view_into<E: Clone + Send + Sync + 'static>(
    session: &Session,
    view: GraphView<'_, E>,
    direction: EdgeDirection,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<u64>,
) -> Result<graphmat_core::RunResult> {
    let program = DegreeProgram {
        direction,
        _edge: std::marker::PhantomData::<E>,
    };
    session
        .run_view(view, program)
        // A pooled state may carry the previous query's counts; the degree
        // SpMV overwrites only vertices that receive a message, so isolated
        // vertices must be zeroed explicitly.
        .init_all(0)
        .activate_all()
        .max_iterations(1)
        .deadline(deadline)
        .execute_with(state)
}

/// In-degrees into a caller-owned (pooled) state — the serving hot path
/// (zero per-query allocation in the steady state; see
/// [`graphmat_core::StatePool`]).
pub fn in_degrees_into<E: Clone + Send + Sync + 'static>(
    session: &Session,
    topology: &Topology<E>,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<u64>,
) -> Result<graphmat_core::RunResult> {
    run_degree_view_into(
        session,
        GraphView::base(topology),
        EdgeDirection::Out,
        deadline,
        state,
    )
}

/// [`in_degrees_into`] over a `(base ⊕ delta)` [`GraphView`] — the serving
/// hot path when the store has pending deltas.
pub fn in_degrees_view_into<E: Clone + Send + Sync + 'static>(
    session: &Session,
    view: GraphView<'_, E>,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<u64>,
) -> Result<graphmat_core::RunResult> {
    run_degree_view_into(session, view, EdgeDirection::Out, deadline, state)
}

/// Out-degrees into a caller-owned (pooled) state — the serving hot path
/// (zero per-query allocation in the steady state; see
/// [`graphmat_core::StatePool`]). Needs a topology built with in-edges,
/// like [`out_degrees_on`].
pub fn out_degrees_into<E: Clone + Send + Sync + 'static>(
    session: &Session,
    topology: &Topology<E>,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<u64>,
) -> Result<graphmat_core::RunResult> {
    run_degree_view_into(
        session,
        GraphView::base(topology),
        EdgeDirection::In,
        deadline,
        state,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_graph() -> EdgeList<()> {
        // Figure 1: A->B, A->C, B->C, C->D  (A=0, B=1, C=2, D=3)
        EdgeList::from_pairs(4, vec![(0, 1), (0, 2), (1, 2), (2, 3)])
    }

    #[test]
    fn figure1_in_degrees() {
        let out = in_degrees(&figure1_graph(), &RunOptions::sequential());
        assert_eq!(out.values, vec![0, 1, 2, 1]);
    }

    #[test]
    fn figure1_out_degrees() {
        let out = out_degrees(&figure1_graph(), &RunOptions::sequential());
        assert_eq!(out.values, vec![2, 1, 1, 0]);
    }

    #[test]
    fn matches_edge_list_bookkeeping_on_random_graph() {
        let el = graphmat_io::uniform::generate(
            &graphmat_io::uniform::UniformConfig::new(128, 1024).with_seed(2),
        );
        let ins = in_degrees(&el, &RunOptions::default().with_threads(2));
        let outs = out_degrees(&el, &RunOptions::default().with_threads(2));
        let expect_in: Vec<u64> = el.in_degrees().iter().map(|&d| d as u64).collect();
        let expect_out: Vec<u64> = el.out_degrees().iter().map(|&d| d as u64).collect();
        assert_eq!(ins.values, expect_in);
        assert_eq!(outs.values, expect_out);
    }

    #[test]
    fn session_drivers_match_facades_and_surface_missing_in_matrix() {
        let el = figure1_graph();
        let session = Session::sequential();
        let topo = session.build_graph(&el).finish().unwrap();
        let ins = in_degrees_on(&session, &topo).unwrap();
        let outs = out_degrees_on(&session, &topo).unwrap();
        assert_eq!(ins.values, vec![0, 1, 2, 1]);
        assert_eq!(outs.values, vec![2, 1, 1, 0]);

        let out_only = session.build_graph(&el).in_edges(false).finish().unwrap();
        assert!(in_degrees_on(&session, &out_only).is_ok());
        assert_eq!(
            out_degrees_on(&session, &out_only).unwrap_err(),
            graphmat_core::GraphMatError::MissingInMatrix
        );
    }

    #[test]
    fn pooled_driver_matches_and_clears_stale_counts() {
        let el = figure1_graph();
        let session = Session::sequential();
        let topo = session.build_graph(&el).finish().unwrap();

        let mut pool = graphmat_core::StatePool::for_topology(&topo);
        let mut state = pool.acquire();
        in_degrees_into(&session, &topo, None, &mut state).unwrap();
        assert_eq!(state.properties(), vec![0, 1, 2, 1]);
        pool.release(state);

        // Vertex A (in-degree 0) receives no message; a recycled state must
        // not leak the previous query's count into it.
        let mut state = pool.acquire();
        out_degrees_into(&session, &topo, None, &mut state).unwrap();
        assert_eq!(state.properties(), vec![2, 1, 1, 0]);
        pool.release(state);
        let mut state = pool.acquire();
        in_degrees_into(&session, &topo, None, &mut state).unwrap();
        assert_eq!(state.properties(), vec![0, 1, 2, 1]);
        assert_eq!((pool.created(), pool.reused()), (1, 2));
    }

    #[test]
    fn single_superstep() {
        let out = in_degrees(&figure1_graph(), &RunOptions::sequential());
        assert_eq!(out.stats.iterations, 1);
    }
}
