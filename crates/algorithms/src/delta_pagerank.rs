//! Convergence-driven ("delta") PageRank — an extension beyond the paper's
//! fixed-iteration PageRank.
//!
//! The paper times PageRank per iteration with every vertex active. Many
//! deployments instead run to a tolerance, propagating only the *change* in
//! rank each superstep so that converged regions of the graph drop out of the
//! computation. Writing the rank update in incremental form,
//!
//! ```text
//! rank_{t+1}(v) − rank_t(v) = (1 − r) Σ_{u→v} Δ_t(u) / degree(u)
//! ```
//!
//! the message becomes `Δ(u)/degree(u)`, APPLY adds the damped sum to the
//! rank, and a vertex whose increment falls below the tolerance goes inactive
//! — GraphMat's active-set machinery implements the frontier shrinkage with
//! no engine change (Algorithm 2 lines 12–13). Initialising
//! `rank_0 = Δ_0 = r` makes the recurrence exact from the first superstep.
//!
//! **Boundary-case semantics.** A vertex with no in-edges ends at `rank = r`,
//! which is what the paper's equation 1 prescribes. The fixed-iteration
//! [`crate::pagerank`] program instead leaves such vertices at their initial
//! rank of 1.0, because Algorithm 2 only APPLYs to vertices that received a
//! message — that is faithful to the original GraphMat implementation. On
//! graphs where every vertex has an in-edge the two programs converge to the
//! same values; on graphs with source vertices their results differ by design
//! (and the difference propagates downstream).

use crate::AlgorithmOutput;
use graphmat_core::error::Result;
use graphmat_core::{
    run_graph_program, EdgeDirection, Graph, GraphBuildOptions, GraphProgram, RunOptions, Session,
    Topology, VertexId,
};
use graphmat_io::edgelist::EdgeList;

/// Delta-PageRank parameters.
#[derive(Clone, Copy, Debug)]
pub struct DeltaPageRankConfig {
    /// Random-surf probability `r`.
    pub random_surf: f64,
    /// Convergence tolerance: a vertex whose rank increment is smaller than
    /// this stops broadcasting.
    pub tolerance: f64,
    /// Hard iteration cap (safety net).
    pub max_iterations: usize,
    /// Graph construction options.
    pub build: GraphBuildOptions,
}

impl Default for DeltaPageRankConfig {
    fn default() -> Self {
        DeltaPageRankConfig {
            random_surf: 0.15,
            tolerance: 1e-7,
            max_iterations: 500,
            build: GraphBuildOptions::default().with_in_edges(false),
        }
    }
}

/// Per-vertex delta-PageRank state.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeltaPrVertex {
    /// Current rank estimate.
    pub rank: f64,
    /// Increment applied in the last superstep (what gets broadcast next).
    pub delta: f64,
    /// Out-degree, cached for SEND_MESSAGE.
    pub degree: u32,
}

struct DeltaPageRankProgram<E> {
    random_surf: f64,
    tolerance: f64,
    _edge: std::marker::PhantomData<E>,
}

impl<E: Clone + Send + Sync> GraphProgram for DeltaPageRankProgram<E> {
    type VertexProp = DeltaPrVertex;
    type Message = f64;
    type Reduced = f64;
    type Edge = E;

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    fn send_message(&self, _v: VertexId, prop: &DeltaPrVertex) -> Option<f64> {
        if prop.degree == 0 || prop.delta == 0.0 {
            None
        } else {
            Some(prop.delta / prop.degree as f64)
        }
    }

    fn process_message(&self, msg: &f64, _edge: &E, _dst: &DeltaPrVertex) -> f64 {
        *msg
    }

    fn reduce(&self, acc: &mut f64, value: f64) {
        *acc += value;
    }

    fn apply(&self, reduced: &f64, prop: &mut DeltaPrVertex) {
        let increment = (1.0 - self.random_surf) * reduced;
        if increment.abs() >= self.tolerance {
            prop.rank += increment;
            prop.delta = increment;
        } else {
            // below tolerance: absorb nothing and go quiet (the vertex stays
            // inactive because its property did not change)
        }
    }
}

/// Run PageRank until every vertex's rank increment falls below the
/// tolerance. The returned ranks satisfy the same fixed-point equation as
/// [`crate::pagerank::pagerank`]; they differ from a truncated
/// fixed-iteration run only by the tolerance.
pub fn delta_pagerank<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    config: &DeltaPageRankConfig,
    options: &RunOptions,
) -> AlgorithmOutput<f64> {
    assert!(config.tolerance > 0.0, "tolerance must be positive");
    let mut graph: Graph<DeltaPrVertex, E> = Graph::from_edge_list(edges, config.build);
    let degrees: Vec<u32> = graph.out_degrees().to_vec();
    let r = config.random_surf;
    graph.init_properties(|v| DeltaPrVertex {
        rank: r,
        delta: r,
        degree: degrees[v as usize],
    });
    graph.set_all_active();

    let program = DeltaPageRankProgram::<E> {
        random_surf: config.random_surf,
        tolerance: config.tolerance,
        _edge: std::marker::PhantomData,
    };
    let run_opts = RunOptions {
        max_iterations: Some(config.max_iterations),
        ..*options
    };
    let result = run_graph_program(&program, &mut graph, &run_opts);

    AlgorithmOutput {
        values: graph.properties().iter().map(|p| p.rank).collect(),
        stats: result.stats,
        converged: result.converged,
    }
}

/// Run delta-PageRank over a pre-built shared topology through a
/// [`Session`] (serving-shape variant of [`delta_pagerank`]; `config.build`
/// is ignored).
pub fn delta_pagerank_on<E: Clone + Send + Sync>(
    session: &Session,
    topology: &Topology<E>,
    config: &DeltaPageRankConfig,
) -> Result<AlgorithmOutput<f64>> {
    // NaN must be rejected alongside non-positive values — a NaN tolerance
    // would make every `increment.abs() >= tolerance` false and return a
    // bogus "converged" result.
    if config.tolerance.is_nan() || config.tolerance <= 0.0 {
        return Err(graphmat_core::GraphMatError::InvalidParameter(
            "delta-PageRank tolerance must be positive",
        ));
    }
    // Zero iterations returns the initial state without running, matching
    // the facade and the other fixed-iteration session drivers.
    if config.max_iterations == 0 {
        return Ok(AlgorithmOutput {
            values: vec![config.random_surf; topology.num_vertices() as usize],
            stats: crate::zero_superstep_stats(topology, session),
            converged: false,
        });
    }
    let degrees = topology.out_degrees();
    let r = config.random_surf;
    let program = DeltaPageRankProgram::<E> {
        random_surf: config.random_surf,
        tolerance: config.tolerance,
        _edge: std::marker::PhantomData,
    };
    let outcome = session
        .run(topology, program)
        .init_with(|v| DeltaPrVertex {
            rank: r,
            delta: r,
            degree: degrees[v as usize],
        })
        .activate_all()
        // The whole point of the delta formulation is a shrinking
        // changed-only frontier; pin it against session defaults.
        .activity(graphmat_core::ActivityPolicy::Changed)
        .max_iterations(config.max_iterations)
        .execute()?;
    Ok(AlgorithmOutput {
        values: outcome.values.iter().map(|p| p.rank).collect(),
        stats: outcome.stats,
        converged: outcome.converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{pagerank, PageRankConfig};

    fn test_graph() -> EdgeList {
        graphmat_io::rmat::generate(&graphmat_io::rmat::RmatConfig::graph500(8).with_seed(3))
    }

    #[test]
    fn converges_before_the_iteration_cap() {
        let el = test_graph();
        let out = delta_pagerank(
            &el,
            &DeltaPageRankConfig::default(),
            &RunOptions::sequential(),
        );
        assert!(out.converged);
        assert!(out.stats.iterations < 500);
    }

    #[test]
    fn agrees_with_fixed_iteration_pagerank() {
        // Use a graph where every vertex has at least one in-edge and one
        // out-edge (RMAT plus a Hamiltonian cycle), so the classic program's
        // "never-applied vertices keep their initial rank" boundary case does
        // not kick in and both formulations share a unique fixed point.
        let rmat = test_graph();
        let n = rmat.num_vertices();
        let mut edges: Vec<(u32, u32, f32)> = rmat.edges().to_vec();
        for v in 0..n {
            edges.push((v, (v + 1) % n, 1.0));
        }
        let el = graphmat_io::edgelist::EdgeList::from_tuples(n, edges);

        let delta = delta_pagerank(
            &el,
            &DeltaPageRankConfig {
                tolerance: 1e-12,
                max_iterations: 1000,
                ..Default::default()
            },
            &RunOptions::sequential(),
        );
        let fixed = pagerank(
            &el,
            &PageRankConfig {
                iterations: 200,
                ..Default::default()
            },
            &RunOptions::sequential(),
        );
        for (v, (a, b)) in delta.values.iter().zip(fixed.values.iter()).enumerate() {
            assert!((a - b).abs() < 1e-4, "vertex {v}: {a} vs {b}");
        }
    }

    #[test]
    fn active_set_shrinks_over_time() {
        let el = test_graph();
        let out = delta_pagerank(
            &el,
            &DeltaPageRankConfig {
                tolerance: 1e-6,
                ..Default::default()
            },
            &RunOptions::sequential(),
        );
        let first = out.stats.supersteps.first().unwrap().active_vertices;
        let last = out.stats.supersteps.last().unwrap().active_vertices;
        assert!(last < first, "frontier should shrink: {first} -> {last}");
    }

    #[test]
    fn session_driver_matches_facade_bit_for_bit() {
        let el = test_graph();
        let cfg = DeltaPageRankConfig::default();
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        let on = delta_pagerank_on(&session, &topo, &cfg).unwrap();
        let facade = delta_pagerank(&el, &cfg, &RunOptions::sequential());
        assert_eq!(on.values, facade.values);
        assert_eq!(on.converged, facade.converged);
    }

    #[test]
    fn parallel_matches_sequential() {
        let el = test_graph();
        let cfg = DeltaPageRankConfig::default();
        let seq = delta_pagerank(&el, &cfg, &RunOptions::sequential());
        let par = delta_pagerank(&el, &cfg, &RunOptions::default().with_threads(4));
        for (a, b) in seq.values.iter().zip(par.values.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_iterations_returns_initial_ranks_like_the_facade() {
        let el = test_graph();
        let cfg = DeltaPageRankConfig {
            max_iterations: 0,
            ..Default::default()
        };
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        let on = delta_pagerank_on(&session, &topo, &cfg).unwrap();
        let facade = delta_pagerank(&el, &cfg, &RunOptions::sequential());
        assert_eq!(on.values, facade.values);
        assert!(on.values.iter().all(|&r| r == cfg.random_surf));
        assert!(!on.converged);
    }

    #[test]
    fn zero_tolerance_is_an_error_on_the_session_path() {
        let el = test_graph();
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        for tolerance in [0.0, -1.0, f64::NAN] {
            let bad = DeltaPageRankConfig {
                tolerance,
                ..Default::default()
            };
            assert!(
                matches!(
                    delta_pagerank_on(&session, &topo, &bad).unwrap_err(),
                    graphmat_core::GraphMatError::InvalidParameter(_)
                ),
                "tolerance {tolerance} must be rejected"
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_tolerance_is_rejected() {
        let el = test_graph();
        let _ = delta_pagerank(
            &el,
            &DeltaPageRankConfig {
                tolerance: 0.0,
                ..Default::default()
            },
            &RunOptions::sequential(),
        );
    }
}
