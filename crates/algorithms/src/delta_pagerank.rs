//! Convergence-driven ("delta") PageRank — an extension beyond the paper's
//! fixed-iteration PageRank.
//!
//! The paper times PageRank per iteration with every vertex active. Many
//! deployments instead run to a tolerance, propagating only the *change* in
//! rank each superstep so that converged regions of the graph drop out of the
//! computation. Writing the rank update in incremental form,
//!
//! ```text
//! rank_{t+1}(v) − rank_t(v) = (1 − r) Σ_{u→v} Δ_t(u) / degree(u)
//! ```
//!
//! the message becomes `Δ(u)/degree(u)`, APPLY adds the damped sum to the
//! rank, and a vertex whose increment falls below the tolerance goes inactive
//! — GraphMat's active-set machinery implements the frontier shrinkage with
//! no engine change (Algorithm 2 lines 12–13). Initialising
//! `rank_0 = Δ_0 = r` makes the recurrence exact from the first superstep.
//!
//! **Boundary-case semantics.** A vertex with no in-edges ends at `rank = r`,
//! which is what the paper's equation 1 prescribes. The fixed-iteration
//! [`crate::pagerank`] program instead leaves such vertices at their initial
//! rank of 1.0, because Algorithm 2 only APPLYs to vertices that received a
//! message — that is faithful to the original GraphMat implementation. On
//! graphs where every vertex has an in-edge the two programs converge to the
//! same values; on graphs with source vertices their results differ by design
//! (and the difference propagates downstream).

use crate::AlgorithmOutput;
use graphmat_core::error::Result;
use graphmat_core::store::{GraphSnapshot, GraphStore};
use graphmat_core::{
    run_graph_program, EdgeDirection, Graph, GraphBuildOptions, GraphProgram, GraphView,
    RunOptions, Session, Topology, VertexId,
};
use graphmat_delta::DeltaBatch;
use graphmat_io::edgelist::EdgeList;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Delta-PageRank parameters.
#[derive(Clone, Copy, Debug)]
pub struct DeltaPageRankConfig {
    /// Random-surf probability `r`.
    pub random_surf: f64,
    /// Convergence tolerance: a vertex whose rank increment is smaller than
    /// this stops broadcasting.
    pub tolerance: f64,
    /// Hard iteration cap (safety net).
    pub max_iterations: usize,
    /// Graph construction options.
    pub build: GraphBuildOptions,
}

impl Default for DeltaPageRankConfig {
    fn default() -> Self {
        DeltaPageRankConfig {
            random_surf: 0.15,
            tolerance: 1e-7,
            max_iterations: 500,
            build: GraphBuildOptions::default().with_in_edges(false),
        }
    }
}

/// Per-vertex delta-PageRank state.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeltaPrVertex {
    /// Current rank estimate.
    pub rank: f64,
    /// Increment applied in the last superstep (what gets broadcast next).
    pub delta: f64,
    /// Out-degree, cached for SEND_MESSAGE.
    pub degree: u32,
}

struct DeltaPageRankProgram<E> {
    random_surf: f64,
    tolerance: f64,
    _edge: std::marker::PhantomData<E>,
}

impl<E: Clone + Send + Sync> GraphProgram for DeltaPageRankProgram<E> {
    type VertexProp = DeltaPrVertex;
    type Message = f64;
    type Reduced = f64;
    type Edge = E;

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    fn send_message(&self, _v: VertexId, prop: &DeltaPrVertex) -> Option<f64> {
        if prop.degree == 0 || prop.delta == 0.0 {
            None
        } else {
            Some(prop.delta / prop.degree as f64)
        }
    }

    fn process_message(&self, msg: &f64, _edge: &E, _dst: &DeltaPrVertex) -> f64 {
        *msg
    }

    fn reduce(&self, acc: &mut f64, value: f64) {
        *acc += value;
    }

    fn apply(&self, reduced: &f64, prop: &mut DeltaPrVertex) {
        let increment = (1.0 - self.random_surf) * reduced;
        if increment.abs() >= self.tolerance {
            prop.rank += increment;
            prop.delta = increment;
        } else {
            // below tolerance: absorb nothing and go quiet (the vertex stays
            // inactive because its property did not change)
        }
    }
}

/// Run PageRank until every vertex's rank increment falls below the
/// tolerance. The returned ranks satisfy the same fixed-point equation as
/// [`crate::pagerank::pagerank`]; they differ from a truncated
/// fixed-iteration run only by the tolerance.
pub fn delta_pagerank<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    config: &DeltaPageRankConfig,
    options: &RunOptions,
) -> AlgorithmOutput<f64> {
    assert!(config.tolerance > 0.0, "tolerance must be positive");
    let mut graph: Graph<DeltaPrVertex, E> = Graph::from_edge_list(edges, config.build);
    let degrees: Vec<u32> = graph.out_degrees().to_vec();
    let r = config.random_surf;
    graph.init_properties(|v| DeltaPrVertex {
        rank: r,
        delta: r,
        degree: degrees[v as usize],
    });
    graph.set_all_active();

    let program = DeltaPageRankProgram::<E> {
        random_surf: config.random_surf,
        tolerance: config.tolerance,
        _edge: std::marker::PhantomData,
    };
    let run_opts = RunOptions {
        max_iterations: Some(config.max_iterations),
        ..*options
    };
    let result = run_graph_program(&program, &mut graph, &run_opts);

    AlgorithmOutput {
        values: graph.properties().iter().map(|p| p.rank).collect(),
        stats: result.stats,
        converged: result.converged,
    }
}

/// Run delta-PageRank over a pre-built shared topology through a
/// [`Session`] (serving-shape variant of [`delta_pagerank`]; `config.build`
/// is ignored).
pub fn delta_pagerank_on<E: Clone + Send + Sync>(
    session: &Session,
    topology: &Topology<E>,
    config: &DeltaPageRankConfig,
) -> Result<AlgorithmOutput<f64>> {
    delta_pagerank_view(session, GraphView::base(topology), config)
}

/// [`delta_pagerank_on`] over a `(base ⊕ delta)` [`GraphView`] — typically
/// `snapshot.view()` from a [`GraphStore`] snapshot. The out-degrees the
/// program divides by are the **edited** graph's, so results are
/// bit-for-bit identical to a run against a topology rebuilt from the
/// edited edge list.
pub fn delta_pagerank_view<E: Clone + Send + Sync>(
    session: &Session,
    view: GraphView<'_, E>,
    config: &DeltaPageRankConfig,
) -> Result<AlgorithmOutput<f64>> {
    validate_tolerance(config.tolerance)?;
    // Zero iterations returns the initial state without running, matching
    // the facade and the other fixed-iteration session drivers.
    if config.max_iterations == 0 {
        return Ok(AlgorithmOutput {
            values: vec![config.random_surf; view.num_vertices() as usize],
            stats: crate::zero_superstep_stats(view.topology(), session),
            converged: false,
        });
    }
    let degrees = view.out_degrees();
    let r = config.random_surf;
    let program = DeltaPageRankProgram::<E> {
        random_surf: config.random_surf,
        tolerance: config.tolerance,
        _edge: std::marker::PhantomData,
    };
    let outcome = session
        .run_view(view, program)
        .init_with(|v| DeltaPrVertex {
            rank: r,
            delta: r,
            degree: degrees[v as usize],
        })
        .activate_all()
        // The whole point of the delta formulation is a shrinking
        // changed-only frontier; pin it against session defaults.
        .activity(graphmat_core::ActivityPolicy::Changed)
        .max_iterations(config.max_iterations)
        .execute()?;
    Ok(AlgorithmOutput {
        values: outcome.values.iter().map(|p| p.rank).collect(),
        stats: outcome.stats,
        converged: outcome.converged,
    })
}

/// Run delta-PageRank into a caller-owned (pooled) state — the serving hot
/// path.
///
/// Like [`delta_pagerank_on`] but with zero per-query allocation in the
/// steady state: the final [`DeltaPrVertex`] properties are left in `state`
/// (read ranks with `state.properties()[v].rank`) and the engine workspace
/// cached inside the state is recycled. All parameter validation is typed —
/// a bad tolerance is [`graphmat_core::GraphMatError::InvalidParameter`],
/// never a panic. `deadline`, when given, bounds wall-clock time.
pub fn delta_pagerank_into<E: Clone + Send + Sync + 'static>(
    session: &Session,
    topology: &Topology<E>,
    config: &DeltaPageRankConfig,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<DeltaPrVertex>,
) -> Result<graphmat_core::RunResult> {
    validate_tolerance(config.tolerance)?;
    let degrees = topology.out_degrees();
    let r = config.random_surf;
    state.check_matches(topology)?;
    // Initialise the pooled state directly instead of through
    // `RunBuilder::init_with`: the builder boxes its init closure, and this
    // one captures the degree slice — a small per-query heap allocation the
    // serving hot path must not make (`tests/zero_alloc.rs`).
    state.init_properties(|v| DeltaPrVertex {
        rank: r,
        delta: r,
        degree: degrees[v as usize],
    });
    if config.max_iterations == 0 {
        return Ok(graphmat_core::RunResult {
            stats: crate::zero_superstep_stats(topology, session),
            converged: false,
        });
    }
    let program = DeltaPageRankProgram::<E> {
        random_surf: config.random_surf,
        tolerance: config.tolerance,
        _edge: std::marker::PhantomData,
    };
    session
        .run(topology, program)
        .activate_all()
        .activity(graphmat_core::ActivityPolicy::Changed)
        .max_iterations(config.max_iterations)
        .deadline(deadline)
        .execute_with(state)
}

/// NaN must be rejected alongside non-positive values — a NaN tolerance
/// would make every `increment.abs() >= tolerance` false and return a bogus
/// "converged" result.
fn validate_tolerance(tolerance: f64) -> Result<()> {
    if tolerance.is_nan() || tolerance <= 0.0 {
        return Err(graphmat_core::GraphMatError::InvalidParameter(
            "delta-PageRank tolerance must be positive",
        ));
    }
    Ok(())
}

/// The residual-restart program [`StreamingPageRank`] runs after a topology
/// change. Superstep 0 re-evaluates every vertex's rank under the **new**
/// graph (each vertex broadcasts `rank/degree`, APPLY computes
/// `new = r + (1 − r)·Σ` and records the residual `new − rank` as the
/// delta); every later superstep is the ordinary delta recurrence. The
/// phase flip happens at the superstep barrier (`on_superstep_end`), so
/// SEND and APPLY of one superstep always agree on the phase.
struct StreamingRestartProgram<E> {
    random_surf: f64,
    tolerance: f64,
    restart: AtomicBool,
    _edge: std::marker::PhantomData<E>,
}

impl<E: Clone + Send + Sync> GraphProgram for StreamingRestartProgram<E> {
    type VertexProp = DeltaPrVertex;
    type Message = f64;
    type Reduced = f64;
    type Edge = E;

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    fn send_message(&self, _v: VertexId, prop: &DeltaPrVertex) -> Option<f64> {
        let value = if self.restart.load(Ordering::Relaxed) {
            prop.rank
        } else {
            prop.delta
        };
        if prop.degree == 0 || value == 0.0 {
            None
        } else {
            Some(value / prop.degree as f64)
        }
    }

    fn process_message(&self, msg: &f64, _edge: &E, _dst: &DeltaPrVertex) -> f64 {
        *msg
    }

    fn reduce(&self, acc: &mut f64, value: f64) {
        *acc += value;
    }

    fn apply(&self, reduced: &f64, prop: &mut DeltaPrVertex) {
        if self.restart.load(Ordering::Relaxed) {
            let new_rank = self.random_surf + (1.0 - self.random_surf) * reduced;
            let residual = new_rank - prop.rank;
            if residual.abs() >= self.tolerance {
                prop.rank = new_rank;
                prop.delta = residual;
            }
        } else {
            let increment = (1.0 - self.random_surf) * reduced;
            if increment.abs() >= self.tolerance {
                prop.rank += increment;
                prop.delta = increment;
            }
        }
    }

    fn on_superstep_end(&self, iteration: usize, _changed: usize) {
        if iteration == 0 {
            self.restart.store(false, Ordering::Relaxed);
        }
    }
}

/// PageRank maintained incrementally across a stream of real
/// [`DeltaBatch`]es — the GraFS-style "keep the result live while the graph
/// mutates" workload, built on [`GraphStore`] snapshots.
///
/// The first [`StreamingPageRank::refresh`] runs full delta-PageRank
/// ([`delta_pagerank_view`]). Each later refresh **repairs** the previous
/// ranks instead of recomputing: one restart superstep re-evaluates every
/// vertex under the new snapshot and seeds the delta recurrence with the
/// per-vertex residual, so only the region the edits perturbed (above
/// `tolerance`) re-converges — the shrinking-frontier property that makes
/// delta-PageRank cheap carries over to topology changes.
///
/// Ranks agree with a from-scratch [`delta_pagerank_view`] run on the same
/// snapshot to within tolerance-scale differences (both satisfy the same
/// fixed-point equation; iteration *paths* differ). Vertices whose last
/// in-edge was deleted are reset to `r`, matching the from-scratch
/// boundary-case semantics documented at the module level.
///
/// ```
/// # use graphmat_algorithms::delta_pagerank::{StreamingPageRank, DeltaPageRankConfig};
/// # use graphmat_core::store::GraphStore;
/// # use graphmat_core::Session;
/// # use graphmat_delta::{DeltaBatch, UpdateOp};
/// # use graphmat_io::edgelist::EdgeList;
/// let session = Session::sequential();
/// let edges = EdgeList::from_tuples(3, vec![(0, 1, 1.0f32), (1, 2, 1.0), (2, 0, 1.0)]);
/// let topo = session.build_graph(&edges).finish().unwrap();
/// let store = GraphStore::with_defaults(topo);
///
/// let mut pr = StreamingPageRank::new(DeltaPageRankConfig::default()).unwrap();
/// pr.refresh(&session, &store.snapshot()).unwrap(); // full run
///
/// let mut batch = DeltaBatch::new(3);
/// batch.insert(0, 2, 1.0).unwrap();
/// pr.ingest(&session, &store, batch).unwrap(); // apply + incremental repair
/// assert_eq!(pr.ranks().len(), 3);
/// ```
pub struct StreamingPageRank {
    config: DeltaPageRankConfig,
    ranks: Vec<f64>,
    version: u64,
    initialized: bool,
}

impl StreamingPageRank {
    /// Create a maintainer with the given parameters (validated — a bad
    /// tolerance is a typed error, not a panic).
    pub fn new(config: DeltaPageRankConfig) -> Result<Self> {
        validate_tolerance(config.tolerance)?;
        Ok(StreamingPageRank {
            config,
            ranks: Vec::new(),
            version: 0,
            initialized: false,
        })
    }

    /// The maintained per-vertex ranks (empty before the first refresh).
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }

    /// The snapshot version the ranks were last computed against.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Bring the ranks up to date with `snapshot`: a full run the first
    /// time, an incremental residual-restart repair afterwards.
    pub fn refresh<E: Clone + Send + Sync>(
        &mut self,
        session: &Session,
        snapshot: &GraphSnapshot<E>,
    ) -> Result<graphmat_core::RunResult> {
        let view = snapshot.view();
        let n = view.num_vertices() as usize;
        if !self.initialized {
            let out = delta_pagerank_view(session, view, &self.config)?;
            self.ranks = out.values;
            self.version = snapshot.version();
            self.initialized = true;
            return Ok(graphmat_core::RunResult {
                stats: out.stats,
                converged: out.converged,
            });
        }
        if self.ranks.len() != n {
            return Err(graphmat_core::GraphMatError::InvalidParameter(
                "snapshot vertex count does not match the maintained ranks",
            ));
        }
        let degrees = view.out_degrees();
        let ranks = &self.ranks;
        let program = StreamingRestartProgram::<E> {
            random_surf: self.config.random_surf,
            tolerance: self.config.tolerance,
            restart: AtomicBool::new(true),
            _edge: std::marker::PhantomData,
        };
        let outcome = session
            .run_view(view, program)
            .init_with(|v| DeltaPrVertex {
                rank: ranks[v as usize],
                delta: 0.0,
                degree: degrees[v as usize],
            })
            .activate_all()
            .activity(graphmat_core::ActivityPolicy::Changed)
            .max_iterations(self.config.max_iterations)
            .execute()?;
        self.ranks.clear();
        self.ranks.extend(outcome.values.iter().map(|p| p.rank));
        // Boundary-case fixup: a vertex with no in-edges never receives a
        // message, so the program cannot move it; from scratch it would sit
        // at its initial rank `r`. Pin it there explicitly (an edit may have
        // deleted its last in-edge).
        let in_degrees = view.in_degrees();
        for (v, rank) in self.ranks.iter_mut().enumerate() {
            if in_degrees[v] == 0 {
                *rank = self.config.random_surf;
            }
        }
        self.version = snapshot.version();
        Ok(graphmat_core::RunResult {
            stats: outcome.stats,
            converged: outcome.converged,
        })
    }

    /// Apply one real update batch to `store` and incrementally repair the
    /// ranks against the snapshot that admitted it. Returns that snapshot.
    pub fn ingest<E: Clone + Send + Sync + 'static>(
        &mut self,
        session: &Session,
        store: &GraphStore<E>,
        batch: DeltaBatch<E>,
    ) -> Result<Arc<GraphSnapshot<E>>> {
        let snapshot = store.apply(batch)?;
        self.refresh(session, &snapshot)?;
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{pagerank, PageRankConfig};

    fn test_graph() -> EdgeList {
        graphmat_io::rmat::generate(&graphmat_io::rmat::RmatConfig::graph500(8).with_seed(3))
    }

    #[test]
    fn converges_before_the_iteration_cap() {
        let el = test_graph();
        let out = delta_pagerank(
            &el,
            &DeltaPageRankConfig::default(),
            &RunOptions::sequential(),
        );
        assert!(out.converged);
        assert!(out.stats.iterations < 500);
    }

    #[test]
    fn agrees_with_fixed_iteration_pagerank() {
        // Use a graph where every vertex has at least one in-edge and one
        // out-edge (RMAT plus a Hamiltonian cycle), so the classic program's
        // "never-applied vertices keep their initial rank" boundary case does
        // not kick in and both formulations share a unique fixed point.
        let rmat = test_graph();
        let n = rmat.num_vertices();
        let mut edges: Vec<(u32, u32, f32)> = rmat.edges().to_vec();
        for v in 0..n {
            edges.push((v, (v + 1) % n, 1.0));
        }
        let el = graphmat_io::edgelist::EdgeList::from_tuples(n, edges);

        let delta = delta_pagerank(
            &el,
            &DeltaPageRankConfig {
                tolerance: 1e-12,
                max_iterations: 1000,
                ..Default::default()
            },
            &RunOptions::sequential(),
        );
        let fixed = pagerank(
            &el,
            &PageRankConfig {
                iterations: 200,
                ..Default::default()
            },
            &RunOptions::sequential(),
        );
        for (v, (a, b)) in delta.values.iter().zip(fixed.values.iter()).enumerate() {
            assert!((a - b).abs() < 1e-4, "vertex {v}: {a} vs {b}");
        }
    }

    #[test]
    fn active_set_shrinks_over_time() {
        let el = test_graph();
        let out = delta_pagerank(
            &el,
            &DeltaPageRankConfig {
                tolerance: 1e-6,
                ..Default::default()
            },
            &RunOptions::sequential(),
        );
        let first = out.stats.supersteps.first().unwrap().active_vertices;
        let last = out.stats.supersteps.last().unwrap().active_vertices;
        assert!(last < first, "frontier should shrink: {first} -> {last}");
    }

    #[test]
    fn session_driver_matches_facade_bit_for_bit() {
        let el = test_graph();
        let cfg = DeltaPageRankConfig::default();
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        let on = delta_pagerank_on(&session, &topo, &cfg).unwrap();
        let facade = delta_pagerank(&el, &cfg, &RunOptions::sequential());
        assert_eq!(on.values, facade.values);
        assert_eq!(on.converged, facade.converged);
    }

    #[test]
    fn parallel_matches_sequential() {
        let el = test_graph();
        let cfg = DeltaPageRankConfig::default();
        let seq = delta_pagerank(&el, &cfg, &RunOptions::sequential());
        let par = delta_pagerank(&el, &cfg, &RunOptions::default().with_threads(4));
        for (a, b) in seq.values.iter().zip(par.values.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_iterations_returns_initial_ranks_like_the_facade() {
        let el = test_graph();
        let cfg = DeltaPageRankConfig {
            max_iterations: 0,
            ..Default::default()
        };
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        let on = delta_pagerank_on(&session, &topo, &cfg).unwrap();
        let facade = delta_pagerank(&el, &cfg, &RunOptions::sequential());
        assert_eq!(on.values, facade.values);
        assert!(on.values.iter().all(|&r| r == cfg.random_surf));
        assert!(!on.converged);
    }

    #[test]
    fn zero_tolerance_is_an_error_on_the_session_path() {
        let el = test_graph();
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        for tolerance in [0.0, -1.0, f64::NAN] {
            let bad = DeltaPageRankConfig {
                tolerance,
                ..Default::default()
            };
            assert!(
                matches!(
                    delta_pagerank_on(&session, &topo, &bad).unwrap_err(),
                    graphmat_core::GraphMatError::InvalidParameter(_)
                ),
                "tolerance {tolerance} must be rejected"
            );
        }
    }

    #[test]
    #[should_panic]
    fn zero_tolerance_is_rejected() {
        let el = test_graph();
        let _ = delta_pagerank(
            &el,
            &DeltaPageRankConfig {
                tolerance: 0.0,
                ..Default::default()
            },
            &RunOptions::sequential(),
        );
    }

    #[test]
    fn pooled_driver_matches_session_driver_and_validates_typed() {
        let el = test_graph();
        let cfg = DeltaPageRankConfig::default();
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        let on = delta_pagerank_on(&session, &topo, &cfg).unwrap();

        let mut pool = graphmat_core::StatePool::for_topology(&topo);
        let mut state = pool.acquire();
        delta_pagerank_into(&session, &topo, &cfg, None, &mut state).unwrap();
        let ranks: Vec<f64> = state.properties().iter().map(|p| p.rank).collect();
        assert_eq!(ranks, on.values);
        pool.release(state);

        // Rerun through the pool: identical, workspace recycled.
        let mut state = pool.acquire();
        delta_pagerank_into(&session, &topo, &cfg, None, &mut state).unwrap();
        let ranks: Vec<f64> = state.properties().iter().map(|p| p.rank).collect();
        assert_eq!(ranks, on.values);
        assert!(state.has_cached_workspace());

        // Parameter validation is typed on the pooled path too — no panic.
        let bad = DeltaPageRankConfig {
            tolerance: f64::NAN,
            ..Default::default()
        };
        assert!(matches!(
            delta_pagerank_into(&session, &topo, &bad, None, &mut state).unwrap_err(),
            graphmat_core::GraphMatError::InvalidParameter(_)
        ));
        pool.release(state);
    }

    #[test]
    fn view_driver_over_pending_deltas_matches_rebuild_bit_for_bit() {
        use graphmat_core::store::{GraphStore, StoreOptions};

        let el = test_graph();
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        let store = GraphStore::new(
            std::sync::Arc::clone(&topo),
            StoreOptions {
                compaction_threshold: usize::MAX,
                background: false,
                overload_watermark: usize::MAX,
            },
        );
        let n = el.num_vertices();
        let mut batch = DeltaBatch::new(n);
        batch.insert(0, n - 1, 1.0).unwrap();
        batch.delete(el.edges()[0].0, el.edges()[0].1).unwrap();
        batch.insert(n / 2, 0, 2.0).unwrap();
        let snapshot = store.apply(batch).unwrap();
        assert!(snapshot.overlay().is_some());

        let cfg = DeltaPageRankConfig::default();
        let overlaid = delta_pagerank_view(&session, snapshot.view(), &cfg).unwrap();

        store.compact_now();
        let rebuilt = store.snapshot();
        assert!(rebuilt.overlay().is_none());
        let from_scratch = delta_pagerank_view(&session, rebuilt.view(), &cfg).unwrap();
        for (v, (a, b)) in overlaid.values.iter().zip(&from_scratch.values).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "vertex {v}: {a} vs {b}");
        }
    }

    #[test]
    fn streaming_pagerank_tracks_real_batches() {
        use graphmat_core::store::{GraphStore, StoreOptions};

        let el = test_graph();
        let n = el.num_vertices();
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        let store = GraphStore::new(
            std::sync::Arc::clone(&topo),
            StoreOptions {
                // Force a compaction mid-stream so the maintainer crosses a
                // base rebuild too.
                compaction_threshold: 4,
                background: false,
                overload_watermark: usize::MAX,
            },
        );
        let cfg = DeltaPageRankConfig {
            tolerance: 1e-10,
            max_iterations: 1000,
            ..Default::default()
        };
        let mut pr = StreamingPageRank::new(cfg).unwrap();
        let first = pr.refresh(&session, &store.snapshot()).unwrap();
        assert!(first.converged);
        assert_eq!(pr.version(), 0);

        // Stream three real batches, repairing incrementally after each.
        let batches: Vec<Vec<(u32, u32, f32)>> = vec![
            vec![(0, n - 1, 1.0), (1, n / 2, 1.0)],
            vec![(n / 2, 1, 1.0), (2, 0, 1.0)],
            vec![(0, n - 1, 2.0), (3, n / 3, 1.0)],
        ];
        for ops in batches {
            let mut batch = DeltaBatch::new(n);
            for (s, d, w) in ops {
                batch.insert(s, d, w).unwrap();
            }
            let snap = pr.ingest(&session, &store, batch).unwrap();
            assert_eq!(pr.version(), snap.version());
        }
        assert_eq!(pr.version(), 3);
        assert!(store.compactions() >= 1, "threshold 4 must have compacted");

        // The repaired ranks agree with a from-scratch run on the final
        // snapshot (same fixed point; iteration paths differ).
        let from_scratch = delta_pagerank_view(&session, store.snapshot().view(), &cfg).unwrap();
        for (v, (a, b)) in pr.ranks().iter().zip(&from_scratch.values).enumerate() {
            assert!((a - b).abs() < 1e-6, "vertex {v}: {a} vs {b}");
        }
    }

    #[test]
    fn streaming_refresh_rejects_mismatched_snapshot() {
        use graphmat_core::store::GraphStore;

        let session = Session::sequential();
        let el = test_graph();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        let small = EdgeList::from_tuples(3, vec![(0u32, 1u32, 1.0f32), (1, 2, 1.0)]);
        let small_topo = session
            .build_graph(&small)
            .in_edges(false)
            .finish()
            .unwrap();

        let mut pr = StreamingPageRank::new(DeltaPageRankConfig::default()).unwrap();
        pr.refresh(&session, &GraphStore::with_defaults(topo).snapshot())
            .unwrap();
        let err = pr
            .refresh(&session, &GraphStore::with_defaults(small_topo).snapshot())
            .unwrap_err();
        assert!(matches!(
            err,
            graphmat_core::GraphMatError::InvalidParameter(_)
        ));
    }
}
