//! Graph algorithms written as GraphMat vertex programs.
//!
//! The paper evaluates five algorithms chosen for their diversity (§3):
//!
//! * [`pagerank`] — PageRank (iterative ranking, all vertices active every
//!   superstep);
//! * [`bfs`] — Breadth-First Search (traversal, frontier-driven);
//! * [`collaborative_filtering`] — matrix factorization by gradient descent
//!   on a bipartite ratings graph (heavy per-vertex state, both directions);
//! * [`triangle_count`] — triangle counting (large messages: adjacency
//!   lists);
//! * [`sssp`] — single-source shortest paths (Bellman-Ford with an active
//!   frontier).
//!
//! Beyond the paper's set, the crate also ships [`connected_components`],
//! [`degree`] and [`delta_pagerank`] as extensions demonstrating that the
//! same `GraphProgram` abstraction covers more algorithms without backend
//! changes.
//!
//! Every algorithm follows the same pattern as the paper's appendix listing:
//! a `*Config` struct, a `Program` implementing
//! [`graphmat_core::GraphProgram`], and a driver function that initialises
//! vertex properties / the active set, calls
//! [`graphmat_core::run_graph_program`] and extracts the result.
//!
//! All drivers are **generic over the edge value type**. Structure-only
//! algorithms (BFS, connected components, degree, triangle counting,
//! PageRank) accept any `EdgeList<E>` and simply ignore the values — run
//! them on an `EdgeList<()>` for the zero-cost unweighted fast path, where
//! the adjacency matrices store no edge value bytes at all. Weight-consuming
//! algorithms (SSSP, collaborative filtering) bound their edge type with
//! [`graphmat_io::edgelist::EdgeWeight`], so `f32`, integer weights and
//! even `()` (unit weights) all work without touching the backend.

pub mod bfs;
pub mod collaborative_filtering;
pub mod connected_components;
pub mod degree;
pub mod delta_pagerank;
pub mod pagerank;
pub mod sssp;
pub mod triangle_count;

/// Result of an algorithm run: the per-vertex output plus the engine
/// statistics (used by the benchmark harness).
#[derive(Clone, Debug)]
pub struct AlgorithmOutput<T> {
    /// Per-vertex result values, indexed by vertex id.
    pub values: Vec<T>,
    /// Engine statistics for the run.
    pub stats: graphmat_core::RunStats,
    /// Whether the run converged before hitting the iteration limit.
    pub converged: bool,
}
