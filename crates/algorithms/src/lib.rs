//! Graph algorithms written as GraphMat vertex programs.
//!
//! The paper evaluates five algorithms chosen for their diversity (§3):
//!
//! * [`pagerank`] — PageRank (iterative ranking, all vertices active every
//!   superstep);
//! * [`bfs`] — Breadth-First Search (traversal, frontier-driven);
//! * [`collaborative_filtering`] — matrix factorization by gradient descent
//!   on a bipartite ratings graph (heavy per-vertex state, both directions);
//! * [`triangle_count`] — triangle counting (large messages: adjacency
//!   lists);
//! * [`sssp`] — single-source shortest paths (Bellman-Ford with an active
//!   frontier).
//!
//! Beyond the paper's set, the crate also ships [`connected_components`],
//! [`degree`] and [`delta_pagerank`] as extensions demonstrating that the
//! same `GraphProgram` abstraction covers more algorithms without backend
//! changes.
//!
//! Every algorithm follows the same pattern as the paper's appendix listing:
//! a `*Config` struct, a `Program` implementing
//! [`graphmat_core::GraphProgram`], and **two** drivers:
//!
//! * a legacy one-shot driver (`bfs`, `pagerank`, …) that takes an edge
//!   list, builds a private fused [`graphmat_core::Graph`] and runs once —
//!   convenient for scripts, but every call rebuilds the matrix;
//! * a session driver (`bfs_on`, `pagerank_on`, …) taking
//!   `&`[`graphmat_core::Session`] `+ &`[`graphmat_core::Topology`] — the
//!   serving shape: the topology is built once (see
//!   [`graphmat_core::Session::build_graph`]), shared via `Arc`, and any
//!   number of these drivers can run against it **concurrently** from
//!   different threads through one session. Session drivers return
//!   `Result<AlgorithmOutput<_>, GraphMatError>` instead of panicking, and
//!   they do *not* preprocess the graph — symmetrize / DAG-reduce the edge
//!   list before building the topology (each driver documents what it
//!   expects).
//!
//! The most frequently served algorithms add a third, **pooled** driver
//! (`pagerank_into`, `bfs_into`, `sssp_into`, `connected_components_into`,
//! `in_degrees_into` / `out_degrees_into`): same semantics as the session
//! driver, but the run writes into a caller-owned
//! [`graphmat_core::VertexState`] (typically recycled through a
//! [`graphmat_core::StatePool`]) and takes an optional deadline. A
//! long-running server that keeps one pool per worker per algorithm
//! allocates nothing per query in the steady state — the state vector and
//! the engine workspace cached inside it are both reused.
//!
//! All drivers are **generic over the edge value type**. Structure-only
//! algorithms (BFS, connected components, degree, triangle counting,
//! PageRank) accept any `EdgeList<E>` and simply ignore the values — run
//! them on an `EdgeList<()>` for the zero-cost unweighted fast path, where
//! the adjacency matrices store no edge value bytes at all. Weight-consuming
//! algorithms (SSSP, collaborative filtering) bound their edge type with
//! [`graphmat_io::edgelist::EdgeWeight`], so `f32`, integer weights and
//! even `()` (unit weights) all work without touching the backend.

pub mod bfs;
pub mod collaborative_filtering;
pub mod connected_components;
pub mod degree;
pub mod delta_pagerank;
pub mod pagerank;
pub mod sssp;
pub mod triangle_count;

/// Result of an algorithm run: the per-vertex output plus the engine
/// statistics (used by the benchmark harness).
#[derive(Clone, Debug)]
pub struct AlgorithmOutput<T> {
    /// Per-vertex result values, indexed by vertex id.
    pub values: Vec<T>,
    /// Engine statistics for the run.
    pub stats: graphmat_core::RunStats,
    /// Whether the run converged before hitting the iteration limit.
    pub converged: bool,
}

impl<T> From<graphmat_core::RunOutcome<T>> for AlgorithmOutput<T> {
    fn from(outcome: graphmat_core::RunOutcome<T>) -> Self {
        AlgorithmOutput {
            values: outcome.values,
            stats: outcome.stats,
            converged: outcome.converged,
        }
    }
}

/// Stats for a session driver's zero-iteration short-circuit: no supersteps
/// ran, but the environment facts (matrix footprint, lane count) are still
/// reported, matching what the legacy facade's zero-superstep run records.
pub(crate) fn zero_superstep_stats<E>(
    topology: &graphmat_core::Topology<E>,
    session: &graphmat_core::Session,
) -> graphmat_core::RunStats {
    graphmat_core::RunStats {
        matrix_bytes: topology.matrix_bytes(),
        nthreads: session.nthreads(),
        ..Default::default()
    }
}
