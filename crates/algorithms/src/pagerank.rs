//! PageRank as a GraphMat vertex program.
//!
//! The paper's formulation (§3-I):
//!
//! ```text
//! PR_{t+1}(v) = r + (1 - r) * Σ_{u | (u,v) ∈ E}  PR_t(u) / degree(u)
//! ```
//!
//! with `r` the random-surf probability and `degree(u)` the out-degree of
//! `u`. Initial ranks are 1.0 and every vertex is active; each superstep is
//! one generalized SpMV with multiply = "take the incoming contribution" and
//! add = `+`. The paper reports time per iteration (Figure 4a), so the driver
//! runs a fixed number of iterations by default.

use crate::AlgorithmOutput;
use graphmat_core::error::Result;
use graphmat_core::{
    run_graph_program, ActivityPolicy, EdgeDirection, Graph, GraphBuildOptions, GraphProgram,
    GraphView, RunOptions, Session, Topology, VertexId,
};
use graphmat_io::edgelist::EdgeList;

/// PageRank parameters.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Random-surf probability `r` (the paper's equation 1; 0.15 is the
    /// conventional value).
    pub random_surf: f64,
    /// Number of iterations to run (the paper reports time per iteration, so
    /// the iteration count is fixed rather than convergence-driven; see
    /// [`crate::delta_pagerank`] for the convergence-driven variant).
    pub iterations: usize,
    /// Graph construction options (partitioning etc.).
    pub build: GraphBuildOptions,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            random_surf: 0.15,
            iterations: 20,
            build: GraphBuildOptions::default().with_in_edges(false),
        }
    }
}

/// Per-vertex PageRank state: the current rank and the out-degree (cached so
/// SEND_MESSAGE can divide by it without a graph lookup, exactly as the
/// original GraphMat stores algorithm state in the vertex property).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PageRankVertex {
    /// Current rank estimate.
    pub rank: f64,
    /// Out-degree of the vertex.
    pub degree: u32,
}

/// The PageRank vertex program. Edge values are never read, so the program
/// is generic over the edge type; `PageRankProgram<()>` runs on unweighted
/// graphs with no edge value bytes in the matrix.
pub struct PageRankProgram<E = f32> {
    random_surf: f64,
    _edge: std::marker::PhantomData<E>,
}

impl<E: Clone + Send + Sync> GraphProgram for PageRankProgram<E> {
    type VertexProp = PageRankVertex;
    type Message = f64;
    type Reduced = f64;
    type Edge = E;

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    fn send_message(&self, _v: VertexId, prop: &PageRankVertex) -> Option<f64> {
        if prop.degree == 0 {
            None // dangling vertices contribute nothing
        } else {
            Some(prop.rank / prop.degree as f64)
        }
    }

    fn process_message(&self, msg: &f64, _edge: &E, _dst: &PageRankVertex) -> f64 {
        *msg
    }

    fn reduce(&self, acc: &mut f64, value: f64) {
        *acc += value;
    }

    fn apply(&self, reduced: &f64, prop: &mut PageRankVertex) {
        prop.rank = self.random_surf + (1.0 - self.random_surf) * reduced;
    }
}

/// Run PageRank and return the per-vertex ranks. Accepts any edge value
/// type — ranks depend only on the graph structure.
pub fn pagerank<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    config: &PageRankConfig,
    options: &RunOptions,
) -> AlgorithmOutput<f64> {
    let mut graph: Graph<PageRankVertex, E> = Graph::from_edge_list(edges, config.build);
    let degrees: Vec<u32> = graph.out_degrees().to_vec();
    graph.init_properties(|v| PageRankVertex {
        rank: 1.0,
        degree: degrees[v as usize],
    });
    graph.set_all_active();

    let program = PageRankProgram::<E> {
        random_surf: config.random_surf,
        _edge: std::marker::PhantomData,
    };
    let run_opts = RunOptions {
        max_iterations: Some(options.max_iterations.unwrap_or(config.iterations)),
        // every vertex rebroadcasts each iteration, as in the paper's
        // fixed-iteration PageRank runs
        activity: ActivityPolicy::AlwaysAll,
        ..*options
    };
    let result = run_graph_program(&program, &mut graph, &run_opts);

    AlgorithmOutput {
        values: graph.properties().iter().map(|p| p.rank).collect(),
        stats: result.stats,
        converged: result.converged,
    }
}

/// Run PageRank over a pre-built shared topology through a [`Session`].
///
/// The serving-shape variant of [`pagerank`]: ranks depend only on the
/// structure, so one `Arc<Topology>` serves this and any other session
/// driver concurrently. `config.build` is ignored (the topology is already
/// built). A `config.iterations` of `0` returns the initial ranks (1.0
/// everywhere) without running.
pub fn pagerank_on<E: Clone + Send + Sync>(
    session: &Session,
    topology: &Topology<E>,
    config: &PageRankConfig,
) -> Result<AlgorithmOutput<f64>> {
    pagerank_view(session, GraphView::base(topology), config)
}

/// [`pagerank_on`] over a `(base ⊕ delta)` [`GraphView`] — typically
/// `snapshot.view()` from a [`graphmat_core::store::GraphStore`] snapshot.
/// The out-degrees each vertex divides its rank by are the **edited**
/// graph's, so the result is bit-for-bit identical to a run against a
/// topology rebuilt from the edited edge list.
pub fn pagerank_view<E: Clone + Send + Sync>(
    session: &Session,
    view: GraphView<'_, E>,
    config: &PageRankConfig,
) -> Result<AlgorithmOutput<f64>> {
    /// Every vertex starts at rank 1.0 (the paper's initialisation).
    const INITIAL_RANK: f64 = 1.0;
    let n = view.num_vertices() as usize;
    if config.iterations == 0 {
        return Ok(AlgorithmOutput {
            values: vec![INITIAL_RANK; n],
            stats: crate::zero_superstep_stats(view.topology(), session),
            converged: false,
        });
    }
    // Borrowed, not cloned: the init closure lives only as long as the
    // builder, so the view's degree array is read in place per query.
    let degrees = view.out_degrees();
    let program = PageRankProgram::<E> {
        random_surf: config.random_surf,
        _edge: std::marker::PhantomData,
    };
    let outcome = session
        .run_view(view, program)
        .init_with(|v| PageRankVertex {
            rank: INITIAL_RANK,
            degree: degrees[v as usize],
        })
        .activate_all()
        .activity(ActivityPolicy::AlwaysAll)
        .max_iterations(config.iterations)
        .execute()?;
    Ok(AlgorithmOutput {
        values: outcome.values.iter().map(|p| p.rank).collect(),
        stats: outcome.stats,
        converged: outcome.converged,
    })
}

/// Run PageRank into a caller-owned (pooled) state — the serving hot path.
///
/// Like [`pagerank_on`] but with zero per-query allocation in the steady
/// state: the final [`PageRankVertex`] properties are left in `state`
/// (read ranks with `state.properties()[v].rank`) instead of being
/// collected into a fresh `Vec`, and the engine workspace cached inside the
/// state is recycled. Acquire/release the state through a
/// [`graphmat_core::StatePool`] dedicated to PageRank — the cached
/// workspace is typed by the program, so sharing one pool across programs
/// would re-allocate it every query.
///
/// `deadline`, when given, bounds the run's wall-clock time
/// ([`graphmat_core::GraphMatError::DeadlineExceeded`] past it; the state
/// keeps the completed supersteps' partial ranks and stays safely
/// reusable). A `config.iterations` of `0` just writes the initial ranks.
pub fn pagerank_into<E: Clone + Send + Sync + 'static>(
    session: &Session,
    topology: &Topology<E>,
    config: &PageRankConfig,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<PageRankVertex>,
) -> Result<graphmat_core::RunResult> {
    pagerank_view_into(session, GraphView::base(topology), config, deadline, state)
}

/// [`pagerank_into`] over a `(base ⊕ delta)` [`GraphView`] — the serving hot
/// path when the store has pending deltas. Identical pooling/allocation
/// behaviour; degrees come from the merged view so ranks match a run
/// against the rebuilt topology bit-for-bit.
pub fn pagerank_view_into<E: Clone + Send + Sync + 'static>(
    session: &Session,
    view: GraphView<'_, E>,
    config: &PageRankConfig,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<PageRankVertex>,
) -> Result<graphmat_core::RunResult> {
    const INITIAL_RANK: f64 = 1.0;
    let degrees = view.out_degrees();
    if config.iterations == 0 {
        state.check_matches(view.topology())?;
        state.init_properties(|v| PageRankVertex {
            rank: INITIAL_RANK,
            degree: degrees[v as usize],
        });
        return Ok(graphmat_core::RunResult {
            stats: crate::zero_superstep_stats(view.topology(), session),
            converged: false,
        });
    }
    let program = PageRankProgram::<E> {
        random_surf: config.random_surf,
        _edge: std::marker::PhantomData,
    };
    // Initialise the pooled state directly instead of through
    // `RunBuilder::init_with`: the builder boxes its init closure, and this
    // one captures the degree slice — a small per-query heap allocation the
    // serving hot path must not make (`tests/zero_alloc.rs`).
    state.check_matches(view.topology())?;
    state.init_properties(|v| PageRankVertex {
        rank: INITIAL_RANK,
        degree: degrees[v as usize],
    });
    session
        .run_view(view, program)
        .activate_all()
        .activity(ActivityPolicy::AlwaysAll)
        .max_iterations(config.iterations)
        .deadline(deadline)
        .execute_with(state)
}

/// Dense reference implementation used by tests: straightforward iteration of
/// the paper's equation 1 over an adjacency list.
pub fn pagerank_reference<E>(edges: &EdgeList<E>, random_surf: f64, iterations: usize) -> Vec<f64> {
    let n = edges.num_vertices() as usize;
    let degrees = edges.out_degrees();
    let mut ranks = vec![1.0f64; n];
    for _ in 0..iterations {
        let mut incoming = vec![0.0f64; n];
        for (u, v, _) in edges.edges() {
            if degrees[*u as usize] > 0 {
                incoming[*v as usize] += ranks[*u as usize] / degrees[*u as usize] as f64;
            }
        }
        for v in 0..n {
            // vertices with no in-edges keep rank = r + 0, but GraphMat only
            // applies to vertices that received a message — mirror that by
            // updating every vertex that has at least one in-edge
            ranks[v] = if incoming[v] > 0.0 || edges.in_degrees()[v] > 0 {
                random_surf + (1.0 - random_surf) * incoming[v]
            } else {
                ranks[v]
            };
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_graph() -> EdgeList<()> {
        // 0 -> 1 -> 2 -> 0 plus 0 -> 2
        EdgeList::from_pairs(3, vec![(0, 1), (1, 2), (2, 0), (0, 2)])
    }

    #[test]
    fn matches_reference_on_small_graph() {
        let el = triangle_graph();
        let cfg = PageRankConfig {
            iterations: 15,
            ..Default::default()
        };
        let out = pagerank(&el, &cfg, &RunOptions::sequential());
        let reference = pagerank_reference(&el, 0.15, 15);
        for (a, b) in out.values.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn ranks_reflect_link_structure() {
        // vertex 2 has two in-edges, vertices 0 and 1 have one each
        let el = triangle_graph();
        let out = pagerank(&el, &PageRankConfig::default(), &RunOptions::sequential());
        assert!(out.values[2] > out.values[1]);
        assert!(out.values[2] > out.values[0]);
    }

    #[test]
    fn runs_requested_number_of_iterations() {
        let el = triangle_graph();
        let cfg = PageRankConfig {
            iterations: 7,
            ..Default::default()
        };
        let out = pagerank(&el, &cfg, &RunOptions::sequential());
        assert_eq!(out.stats.iterations, 7);
        assert!(!out.converged);
    }

    #[test]
    fn ranks_sum_stays_close_to_vertex_count() {
        // PageRank conserves total rank mass up to the dangling-vertex leak;
        // with no dangling vertices the sum stays ≈ n.
        let el = triangle_graph();
        let cfg = PageRankConfig {
            iterations: 30,
            ..Default::default()
        };
        let out = pagerank(&el, &cfg, &RunOptions::sequential());
        let total: f64 = out.values.iter().sum();
        assert!((total - 3.0).abs() < 1e-6, "total rank {total}");
    }

    #[test]
    fn dangling_vertices_do_not_poison_ranks() {
        // vertex 3 has no out-edges
        let el = EdgeList::from_pairs(4, vec![(0, 1), (1, 2), (2, 0), (0, 3)]);
        let out = pagerank(&el, &PageRankConfig::default(), &RunOptions::sequential());
        assert!(out.values.iter().all(|r| r.is_finite()));
        assert!(out.values[3] > 0.0);
    }

    #[test]
    fn session_driver_matches_facade_bit_for_bit() {
        let el = triangle_graph();
        let cfg = PageRankConfig {
            iterations: 15,
            ..Default::default()
        };
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        let on = pagerank_on(&session, &topo, &cfg).unwrap();
        let facade = pagerank(&el, &cfg, &RunOptions::sequential());
        assert_eq!(on.values, facade.values);
    }

    #[test]
    fn pooled_driver_matches_and_reruns_identically() {
        let el = triangle_graph();
        let cfg = PageRankConfig {
            iterations: 15,
            ..Default::default()
        };
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        let on = pagerank_on(&session, &topo, &cfg).unwrap();

        let mut pool = graphmat_core::StatePool::for_topology(&topo);
        let mut state = pool.acquire();
        pagerank_into(&session, &topo, &cfg, None, &mut state).unwrap();
        let ranks: Vec<f64> = state.properties().iter().map(|p| p.rank).collect();
        assert_eq!(ranks, on.values);
        pool.release(state);

        let mut state = pool.acquire();
        pagerank_into(&session, &topo, &cfg, None, &mut state).unwrap();
        let ranks: Vec<f64> = state.properties().iter().map(|p| p.rank).collect();
        assert_eq!(ranks, on.values);
        assert!(state.has_cached_workspace());
        assert_eq!((pool.created(), pool.reused()), (1, 1));
    }

    #[test]
    fn parallel_matches_sequential() {
        let el =
            graphmat_io::rmat::generate(&graphmat_io::rmat::RmatConfig::graph500(9).with_seed(77));
        let cfg = PageRankConfig {
            iterations: 5,
            ..Default::default()
        };
        let seq = pagerank(&el, &cfg, &RunOptions::sequential());
        let par = pagerank(&el, &cfg, &RunOptions::default().with_threads(4));
        for (a, b) in seq.values.iter().zip(par.values.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
