//! Single-Source Shortest Paths as a GraphMat vertex program.
//!
//! This is the paper's running example (Figure 3 and the appendix source
//! listing): a Bellman-Ford variant where only vertices whose distance
//! changed in the previous iteration relax their out-edges. The message is
//! the sender's current distance, `PROCESS_MESSAGE` adds the edge weight,
//! `REDUCE` takes the minimum, and `APPLY` keeps the smaller of the old and
//! new distance.

use crate::AlgorithmOutput;
use graphmat_core::error::Result;
use graphmat_core::{
    run_graph_program, ActivityPolicy, EdgeDirection, Graph, GraphBuildOptions, GraphProgram,
    GraphView, RunOptions, Session, Topology, VertexId,
};
use graphmat_io::edgelist::{EdgeList, EdgeWeight};

/// Distance value meaning "unreachable".
pub const UNREACHABLE: f32 = f32::MAX;

/// SSSP parameters.
#[derive(Clone, Copy, Debug)]
pub struct SsspConfig {
    /// The source vertex.
    pub source: VertexId,
    /// Graph construction options.
    pub build: GraphBuildOptions,
}

impl Default for SsspConfig {
    fn default() -> Self {
        SsspConfig {
            source: 0,
            build: GraphBuildOptions::default().with_in_edges(false),
        }
    }
}

impl SsspConfig {
    /// Shortest paths from the given source.
    pub fn from_source(source: VertexId) -> Self {
        SsspConfig {
            source,
            ..Default::default()
        }
    }
}

/// The SSSP vertex program (the paper's appendix `class SSSP`). Generic
/// over any scalar-readable edge type: `f32` weights, integer weights
/// (`u32`, `u8`, …) or `()` (every hop costs 1).
pub struct SsspProgram<E = f32> {
    _edge: std::marker::PhantomData<E>,
}

impl<E> Default for SsspProgram<E> {
    fn default() -> Self {
        SsspProgram {
            _edge: std::marker::PhantomData,
        }
    }
}

impl<E: EdgeWeight> GraphProgram for SsspProgram<E> {
    type VertexProp = f32;
    type Message = f32;
    type Reduced = f32;
    type Edge = E;

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    fn send_message(&self, _v: VertexId, dist: &f32) -> Option<f32> {
        Some(*dist)
    }

    fn process_message(&self, msg: &f32, edge: &E, _dst: &f32) -> f32 {
        msg + edge.weight()
    }

    fn reduce(&self, acc: &mut f32, value: f32) {
        if value < *acc {
            *acc = value;
        }
    }

    fn apply(&self, reduced: &f32, dist: &mut f32) {
        if *reduced < *dist {
            *dist = *reduced;
        }
    }
}

/// Run SSSP and return the per-vertex distance from the source
/// ([`UNREACHABLE`] for vertices with no path).
///
/// Accepts any [`EdgeWeight`] edge type: `f32`, integer weights such as
/// `u32`, or `()` for hop counts.
pub fn sssp<E: EdgeWeight>(
    edges: &EdgeList<E>,
    config: &SsspConfig,
    options: &RunOptions,
) -> AlgorithmOutput<f32> {
    assert!(
        config.source < edges.num_vertices(),
        "SSSP source {} out of range ({} vertices)",
        config.source,
        edges.num_vertices()
    );
    let mut graph: Graph<f32, E> = Graph::from_edge_list(edges, config.build);
    graph.set_all_properties(UNREACHABLE);
    graph.set_property(config.source, 0.0);
    graph.set_active(config.source);

    let result = run_graph_program(&SsspProgram::<E>::default(), &mut graph, options);
    AlgorithmOutput {
        values: graph.properties().to_vec(),
        stats: result.stats,
        converged: result.converged,
    }
}

/// Run SSSP over a pre-built shared topology through a [`Session`] and
/// return the per-vertex distance from `source` ([`UNREACHABLE`] where no
/// path exists).
///
/// The serving-shape entry point: one `Arc<Topology>` can serve this and
/// other session drivers concurrently from many threads.
///
/// # Errors
///
/// [`graphmat_core::GraphMatError::VertexOutOfRange`] if `source` is not a
/// vertex of the topology.
pub fn sssp_on<E: EdgeWeight>(
    session: &Session,
    topology: &Topology<E>,
    source: VertexId,
) -> Result<AlgorithmOutput<f32>> {
    session
        .run(topology, SsspProgram::<E>::default())
        .init_all(UNREACHABLE)
        .seed_with(source, 0.0)
        // Bellman-Ford must relax until quiescent with a changed-only
        // frontier; don't let session run defaults truncate it.
        .activity(ActivityPolicy::Changed)
        .until_convergence()
        .execute()
        .map(AlgorithmOutput::from)
}

/// Run SSSP into a caller-owned (pooled) state — the serving hot path.
///
/// Like [`sssp_on`] but with zero per-query allocation in the steady state:
/// the distances are left in `state` instead of a fresh `Vec`, and the
/// engine workspace cached inside the state is recycled. Use one
/// [`graphmat_core::StatePool`] per program type (see its docs); pass a
/// `deadline` to bound wall-clock time
/// ([`graphmat_core::GraphMatError::DeadlineExceeded`] past it).
pub fn sssp_into<E: EdgeWeight + 'static>(
    session: &Session,
    topology: &Topology<E>,
    source: VertexId,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<f32>,
) -> Result<graphmat_core::RunResult> {
    sssp_view_into(session, GraphView::base(topology), source, deadline, state)
}

/// [`sssp_into`] over a `(base ⊕ delta)` [`GraphView`] — the serving hot
/// path when the store has pending deltas. Identical pooling/allocation
/// behaviour.
pub fn sssp_view_into<E: EdgeWeight + 'static>(
    session: &Session,
    view: GraphView<'_, E>,
    source: VertexId,
    deadline: Option<std::time::Instant>,
    state: &mut graphmat_core::VertexState<f32>,
) -> Result<graphmat_core::RunResult> {
    session
        .run_view(view, SsspProgram::<E>::default())
        .init_all(UNREACHABLE)
        .seed_with(source, 0.0)
        .activity(ActivityPolicy::Changed)
        .until_convergence()
        .deadline(deadline)
        .execute_with(state)
}

/// Dijkstra reference implementation used by tests (requires non-negative
/// weights, which all the generators guarantee).
pub fn sssp_reference<E: EdgeWeight>(edges: &EdgeList<E>, source: VertexId) -> Vec<f32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = edges.num_vertices() as usize;
    let mut adj: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
    for (s, d, w) in edges.edges() {
        adj[*s as usize].push((*d as usize, w.weight()));
    }
    let mut dist = vec![UNREACHABLE; n];
    dist[source as usize] = 0.0;
    // order by total distance encoded as ordered bits (weights are finite and
    // non-negative, so the IEEE bit pattern orders correctly)
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
    heap.push(Reverse((0u32, source as usize)));
    while let Some(Reverse((dbits, u))) = heap.pop() {
        let d = f32::from_bits(dbits);
        if d > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            let candidate = d + w;
            if candidate < dist[v] {
                dist[v] = candidate;
                heap.push(Reverse((candidate.to_bits(), v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The weighted graph of the paper's Figure 3.
    fn figure3() -> EdgeList {
        EdgeList::from_tuples(
            5,
            vec![
                (0, 1, 1.0),
                (0, 2, 3.0),
                (0, 3, 2.0),
                (1, 2, 1.0),
                (2, 3, 2.0),
                (3, 4, 2.0),
                (4, 0, 4.0),
            ],
        )
    }

    #[test]
    fn figure3_distances() {
        let out = sssp(
            &figure3(),
            &SsspConfig::from_source(0),
            &RunOptions::sequential(),
        );
        assert_eq!(out.values, vec![0.0, 1.0, 2.0, 2.0, 4.0]);
        assert!(out.converged);
    }

    #[test]
    fn matches_dijkstra_reference() {
        let el = graphmat_io::uniform::generate(
            &graphmat_io::uniform::UniformConfig::new(200, 1500)
                .with_weights(1, 20)
                .with_seed(4),
        );
        let out = sssp(
            &el,
            &SsspConfig::from_source(7),
            &RunOptions::default().with_threads(4),
        );
        let reference = sssp_reference(&el, 7);
        for (i, (a, b)) in out.values.iter().zip(reference.iter()).enumerate() {
            assert!((a - b).abs() < 1e-4, "vertex {i}: {a} vs {b}");
        }
    }

    #[test]
    fn unreachable_vertices_stay_at_infinity() {
        let el = EdgeList::from_tuples(4, vec![(0, 1, 1.0), (2, 3, 1.0)]);
        let out = sssp(&el, &SsspConfig::from_source(0), &RunOptions::sequential());
        assert_eq!(out.values[0], 0.0);
        assert_eq!(out.values[1], 1.0);
        assert_eq!(out.values[2], UNREACHABLE);
        assert_eq!(out.values[3], UNREACHABLE);
    }

    #[test]
    fn takes_shorter_indirect_path() {
        // direct edge 0->2 weight 10, indirect 0->1->2 weight 3
        let el = EdgeList::from_tuples(3, vec![(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)]);
        let out = sssp(&el, &SsspConfig::from_source(0), &RunOptions::sequential());
        assert_eq!(out.values[2], 3.0);
    }

    #[test]
    fn frontier_driven_work_decreases() {
        // grid road network: most supersteps touch only the frontier
        let el = graphmat_io::grid::generate(&graphmat_io::grid::GridConfig::square(20));
        let out = sssp(&el, &SsspConfig::from_source(0), &RunOptions::sequential());
        let reference = sssp_reference(&el, 0);
        for (a, b) in out.values.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-3);
        }
        // many iterations (high diameter), none touching every vertex
        assert!(out.stats.iterations > 20);
        assert!(out
            .stats
            .supersteps
            .iter()
            .all(|s| s.active_vertices <= el.num_vertices() as usize));
    }

    #[test]
    fn session_driver_matches_facade_and_rejects_bad_sources() {
        let el = figure3();
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();
        let on = sssp_on(&session, &topo, 0).unwrap();
        assert_eq!(on.values, vec![0.0, 1.0, 2.0, 2.0, 4.0]);
        let err = sssp_on(&session, &topo, 9).unwrap_err();
        assert_eq!(
            err,
            graphmat_core::GraphMatError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 5
            }
        );
    }

    #[test]
    fn pooled_driver_matches_and_reruns_identically() {
        let el = figure3();
        let session = Session::sequential();
        let topo = session.build_graph(&el).in_edges(false).finish().unwrap();

        let mut pool = graphmat_core::StatePool::for_topology(&topo);
        let mut state = pool.acquire();
        sssp_into(&session, &topo, 0, None, &mut state).unwrap();
        assert_eq!(state.properties(), vec![0.0, 1.0, 2.0, 2.0, 4.0]);
        pool.release(state);

        let mut state = pool.acquire();
        sssp_into(&session, &topo, 3, None, &mut state).unwrap();
        let fresh = sssp_on(&session, &topo, 3).unwrap();
        assert_eq!(state.properties(), fresh.values.as_slice());
        assert!(state.has_cached_workspace());
        assert_eq!((pool.created(), pool.reused()), (1, 1));
    }

    #[test]
    #[should_panic]
    fn out_of_range_source_panics() {
        let _ = sssp(
            &figure3(),
            &SsspConfig::from_source(9),
            &RunOptions::sequential(),
        );
    }
}
