//! Triangle counting as two GraphMat vertex programs.
//!
//! The paper's formulation (§3-IV, §4.2): the input graph is first made
//! symmetric and then reduced to its strict upper triangle, giving a DAG in
//! which each triangle `a < b < c` is counted exactly once. Two vertex
//! programs then run:
//!
//! 1. **Adjacency-list construction** — every vertex sends its id along its
//!    out-edges; each vertex stores the sorted list of ids it received (its
//!    in-neighbours in the DAG).
//! 2. **Counting** — every vertex sends that list along its out-edges; the
//!    receiving vertex intersects the incoming list with its own list. The
//!    intersection size is the number of triangles closed by that edge.
//!
//! Step 2 is exactly where GraphMat's ability to read the *destination
//! vertex's state inside `PROCESS_MESSAGE`* pays off: a pure matrix framework
//! (CombBLAS) cannot express this and falls back to an SpGEMM whose
//! intermediate result "overflows memory or comes close to memory limits"
//! (§5.2.1) — the behaviour the CombBLAS-style baseline reproduces.

use crate::AlgorithmOutput;
use graphmat_core::error::Result;
use graphmat_core::{
    run_graph_program, EdgeDirection, Graph, GraphBuildOptions, GraphProgram, RunOptions, Session,
    Topology, VertexId, VertexState,
};
use graphmat_io::edgelist::EdgeList;

/// Triangle counting parameters.
#[derive(Clone, Copy, Debug)]
pub struct TriangleCountConfig {
    /// If `true` (default) the input is symmetrized and reduced to its upper
    /// triangle first, as the paper prescribes. Set to `false` only if the
    /// input is already a DAG with `dst > src` for every edge.
    pub preprocess: bool,
    /// Graph construction options.
    pub build: GraphBuildOptions,
}

impl Default for TriangleCountConfig {
    fn default() -> Self {
        TriangleCountConfig {
            preprocess: true,
            build: GraphBuildOptions::default().with_in_edges(false),
        }
    }
}

/// Per-vertex triangle-counting state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TriangleVertex {
    /// Sorted in-neighbour ids collected in phase 1.
    pub neighbors: Vec<VertexId>,
    /// Triangles closed at this vertex, accumulated in phase 2.
    pub triangles: u64,
}

/// Phase 1: collect in-neighbour lists. Generic over the (ignored) edge
/// type; `E = ()` is the unweighted fast path.
struct CollectNeighbors<E> {
    _edge: std::marker::PhantomData<E>,
}

impl<E> Default for CollectNeighbors<E> {
    fn default() -> Self {
        CollectNeighbors {
            _edge: std::marker::PhantomData,
        }
    }
}

impl<E: Clone + Send + Sync> GraphProgram for CollectNeighbors<E> {
    type VertexProp = TriangleVertex;
    type Message = VertexId;
    type Reduced = Vec<VertexId>;
    type Edge = E;

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    fn send_message(&self, v: VertexId, _prop: &TriangleVertex) -> Option<VertexId> {
        Some(v)
    }

    fn process_message(&self, msg: &VertexId, _edge: &E, _dst: &TriangleVertex) -> Vec<VertexId> {
        vec![*msg]
    }

    fn reduce(&self, acc: &mut Vec<VertexId>, mut value: Vec<VertexId>) {
        acc.append(&mut value);
    }

    fn apply(&self, reduced: &Vec<VertexId>, prop: &mut TriangleVertex) {
        let mut list = reduced.clone();
        list.sort_unstable();
        list.dedup();
        prop.neighbors = list;
    }
}

/// Phase 2: intersect neighbour lists.
struct CountTriangles<E> {
    _edge: std::marker::PhantomData<E>,
}

impl<E> Default for CountTriangles<E> {
    fn default() -> Self {
        CountTriangles {
            _edge: std::marker::PhantomData,
        }
    }
}

impl<E: Clone + Send + Sync> GraphProgram for CountTriangles<E> {
    type VertexProp = TriangleVertex;
    type Message = Vec<VertexId>;
    type Reduced = u64;
    type Edge = E;

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    fn send_message(&self, _v: VertexId, prop: &TriangleVertex) -> Option<Vec<VertexId>> {
        if prop.neighbors.is_empty() {
            None
        } else {
            Some(prop.neighbors.clone())
        }
    }

    fn process_message(&self, msg: &Vec<VertexId>, _edge: &E, dst: &TriangleVertex) -> u64 {
        sorted_intersection_size(msg, &dst.neighbors)
    }

    fn reduce(&self, acc: &mut u64, value: u64) {
        *acc += value;
    }

    fn apply(&self, reduced: &u64, prop: &mut TriangleVertex) {
        prop.triangles += *reduced;
    }
}

/// Size of the intersection of two sorted, deduplicated id lists.
fn sorted_intersection_size(a: &[VertexId], b: &[VertexId]) -> u64 {
    let mut count = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Count triangles. Returns the total count and the per-vertex counts.
/// Accepts any edge value type — triangles depend only on the structure.
pub fn triangle_count<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    config: &TriangleCountConfig,
    options: &RunOptions,
) -> AlgorithmOutput<u64> {
    let dag;
    let edges = if config.preprocess {
        dag = edges.to_dag();
        &dag
    } else {
        edges
    };

    let mut graph: Graph<TriangleVertex, E> = Graph::from_edge_list(edges, config.build);

    // Phase 1: one superstep building the in-neighbour lists.
    graph.set_all_active();
    let phase1_opts = RunOptions {
        max_iterations: Some(1),
        ..*options
    };
    let phase1 = run_graph_program(&CollectNeighbors::<E>::default(), &mut graph, &phase1_opts);

    // Phase 2: one superstep intersecting the lists.
    graph.set_all_active();
    let phase2 = run_graph_program(&CountTriangles::<E>::default(), &mut graph, &phase1_opts);

    let stats = merge_phase_stats(phase1.stats, &phase2.stats);

    AlgorithmOutput {
        values: graph.properties().iter().map(|p| p.triangles).collect(),
        stats,
        converged: true,
    }
}

/// Count triangles over a pre-built shared topology through a [`Session`].
///
/// The serving-shape entry point. The topology must already be the strict
/// upper-triangle DAG the algorithm expects — build it from
/// `edges.to_dag()` (`session.build_graph(&edges.to_dag()).in_edges(false)`
/// `.finish()?`); no preprocessing happens here.
///
/// Both vertex programs run through one pooled [`VertexState`]: phase 2
/// intersects the neighbour lists phase 1 stored in the same state — the
/// two-phase shape is exactly what per-run state (as opposed to
/// graph-owned state) makes natural.
pub fn triangle_count_on<E: Clone + Send + Sync + 'static>(
    session: &Session,
    topology: &Topology<E>,
) -> Result<AlgorithmOutput<u64>> {
    let mut state: VertexState<TriangleVertex> = VertexState::for_topology(topology);

    let phase1 = session
        .run(topology, CollectNeighbors::<E>::default())
        .activate_all()
        .max_iterations(1)
        .execute_with(&mut state)?;
    let phase2 = session
        .run(topology, CountTriangles::<E>::default())
        .activate_all()
        .max_iterations(1)
        .execute_with(&mut state)?;

    let stats = merge_phase_stats(phase1.stats, &phase2.stats);
    Ok(AlgorithmOutput {
        values: state.properties().iter().map(|p| p.triangles).collect(),
        stats,
        converged: true,
    })
}

/// Fold phase 2's run statistics into phase 1's. Works from the aggregate
/// totals, not the per-superstep detail, so nothing is lost when
/// `record_supersteps` is off (the detail, when present, is appended too).
fn merge_phase_stats(
    mut stats: graphmat_core::RunStats,
    phase2: &graphmat_core::RunStats,
) -> graphmat_core::RunStats {
    stats.iterations += phase2.iterations;
    stats.total_time += phase2.total_time;
    stats.send_time += phase2.send_time;
    stats.spmv_time += phase2.spmv_time;
    stats.apply_time += phase2.apply_time;
    stats.edges_processed += phase2.edges_processed;
    stats.messages_sent += phase2.messages_sent;
    stats.supersteps.extend(phase2.supersteps.iter().copied());
    stats
}

/// Total number of triangles (sum of the per-vertex counts).
pub fn total_triangles(output: &AlgorithmOutput<u64>) -> u64 {
    output.values.iter().sum()
}

/// Brute-force reference count used by tests (O(V·d²)).
pub fn triangle_count_reference<E: Clone>(edges: &EdgeList<E>) -> u64 {
    let dag = edges.to_dag();
    let n = dag.num_vertices() as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(s, d, _) in dag.edges() {
        adj[s as usize].push(d);
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    let mut total = 0u64;
    for u in 0..n {
        for &v in &adj[u] {
            total += sorted_intersection_size(&adj[u], &adj[v as usize]);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_triangle() {
        let el = EdgeList::from_pairs(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        let out = triangle_count(
            &el,
            &TriangleCountConfig::default(),
            &RunOptions::sequential(),
        );
        assert_eq!(total_triangles(&out), 1);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        let el = EdgeList::from_pairs(4, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let out = triangle_count(
            &el,
            &TriangleCountConfig::default(),
            &RunOptions::sequential(),
        );
        assert_eq!(total_triangles(&out), 2);
        assert_eq!(total_triangles(&out), triangle_count_reference(&el));
    }

    #[test]
    fn complete_graph_k5_has_ten_triangles() {
        let mut pairs = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5u32 {
                pairs.push((i, j));
            }
        }
        let el = EdgeList::from_pairs(5, pairs);
        let out = triangle_count(
            &el,
            &TriangleCountConfig::default(),
            &RunOptions::sequential(),
        );
        assert_eq!(total_triangles(&out), 10); // C(5,3)
    }

    #[test]
    fn triangle_free_graph() {
        // a star has no triangles
        let el = EdgeList::from_pairs(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let out = triangle_count(
            &el,
            &TriangleCountConfig::default(),
            &RunOptions::sequential(),
        );
        assert_eq!(total_triangles(&out), 0);
    }

    #[test]
    fn direction_of_input_edges_does_not_matter() {
        let a = EdgeList::from_pairs(3, vec![(0, 1), (1, 2), (2, 0)]);
        let b = EdgeList::from_pairs(3, vec![(1, 0), (2, 1), (0, 2)]);
        let cfg = TriangleCountConfig::default();
        assert_eq!(
            total_triangles(&triangle_count(&a, &cfg, &RunOptions::sequential())),
            total_triangles(&triangle_count(&b, &cfg, &RunOptions::sequential())),
        );
    }

    #[test]
    fn matches_reference_on_rmat() {
        let el = graphmat_io::rmat::generate(
            &graphmat_io::rmat::RmatConfig::triangle_counting(8).with_seed(31),
        );
        let out = triangle_count(
            &el,
            &TriangleCountConfig::default(),
            &RunOptions::default().with_threads(4),
        );
        assert_eq!(total_triangles(&out), triangle_count_reference(&el));
        assert!(
            total_triangles(&out) > 0,
            "RMAT graph should contain triangles"
        );
    }

    #[test]
    fn session_driver_matches_facade_on_rmat() {
        let el = graphmat_io::rmat::generate(
            &graphmat_io::rmat::RmatConfig::triangle_counting(7).with_seed(5),
        );
        let session = Session::sequential();
        let topo = session
            .build_graph(&el.to_dag())
            .in_edges(false)
            .finish()
            .unwrap();
        let on = triangle_count_on(&session, &topo).unwrap();
        let facade = triangle_count(
            &el,
            &TriangleCountConfig::default(),
            &RunOptions::sequential(),
        );
        assert_eq!(on.values, facade.values);
        assert_eq!(total_triangles(&on), triangle_count_reference(&el));
    }

    #[test]
    fn phase_stats_survive_suppressed_superstep_detail() {
        // With record_supersteps off the per-superstep log is empty; the
        // merged stats must still account for both phases' totals.
        let el = EdgeList::from_pairs(4, vec![(0, 1), (1, 2), (2, 0)]);
        let out = triangle_count(
            &el,
            &TriangleCountConfig::default(),
            &RunOptions {
                record_supersteps: false,
                ..RunOptions::sequential()
            },
        );
        assert_eq!(total_triangles(&out), 1);
        assert_eq!(out.stats.iterations, 2);
        assert!(out.stats.edges_processed > 0);
        assert!(out.stats.supersteps.is_empty());
    }

    #[test]
    fn exactly_two_supersteps_of_work() {
        let el = EdgeList::from_pairs(4, vec![(0, 1), (1, 2), (2, 0)]);
        let out = triangle_count(
            &el,
            &TriangleCountConfig::default(),
            &RunOptions::sequential(),
        );
        assert_eq!(out.stats.iterations, 2);
    }
}
