//! A counting [`GlobalAlloc`] wrapper for zero-allocation assertions.
//!
//! The engine claims that a warmed superstep loop and a warmed server
//! round perform **zero** heap allocation. The pool counters
//! (`StatePool::created`, executor lane reuse) are proxies for that claim;
//! [`CountingAllocator`] turns it into a direct assertion. Install it as
//! the test binary's global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: graphmat_audit::alloc_track::CountingAllocator =
//!     graphmat_audit::alloc_track::CountingAllocator::new();
//! ```
//!
//! then wrap the steady-state region in [`AllocGuard::measure`] and assert
//! on the returned [`AllocStats`]. The counters are process-global, so a
//! measuring test binary should contain exactly one `#[test]` (or run with
//! `RUST_TEST_THREADS=1`) — concurrent tests would attribute each other's
//! allocations to the measured region.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Forwards to [`System`] while counting every call. Zero-sized with a
/// `const` constructor so it can be a `#[global_allocator]` static.
pub struct CountingAllocator;

impl CountingAllocator {
    /// The allocator value for the `#[global_allocator]` static.
    pub const fn new() -> CountingAllocator {
        CountingAllocator
    }
}

impl Default for CountingAllocator {
    fn default() -> CountingAllocator {
        CountingAllocator::new()
    }
}

// SAFETY: pure pass-through to `System` for every method; the atomic
// counter updates have no effect on the returned pointers or layouts, so
// the GlobalAlloc contract is exactly System's.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards the caller's layout to `System` unchanged; counting
    // is side-effect-free on the allocation itself.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards ptr/layout to `System` unchanged under the caller's
    // own dealloc contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    // SAFETY: same pass-through as `alloc`; `System` provides the zeroing.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: forwards ptr/layout/new_size to `System` unchanged under the
    // caller's own realloc contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocator activity over one measured region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocStats {
    /// `alloc` + `alloc_zeroed` calls.
    pub allocs: u64,
    /// `dealloc` calls.
    pub deallocs: u64,
    /// `realloc` calls.
    pub reallocs: u64,
    /// Bytes requested by allocs and reallocs.
    pub bytes: u64,
}

impl AllocStats {
    /// Any heap traffic at all?
    pub fn any(&self) -> bool {
        self.allocs + self.deallocs + self.reallocs != 0
    }
}

/// Snapshot-based measurement over the global counters.
pub struct AllocGuard {
    allocs: u64,
    deallocs: u64,
    reallocs: u64,
    bytes: u64,
}

impl AllocGuard {
    /// Snapshot the counters now; [`Self::finish`] returns the delta.
    pub fn start() -> AllocGuard {
        AllocGuard {
            allocs: ALLOCS.load(Ordering::Relaxed),
            deallocs: DEALLOCS.load(Ordering::Relaxed),
            reallocs: REALLOCS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }

    /// Allocator activity since [`Self::start`].
    pub fn finish(&self) -> AllocStats {
        AllocStats {
            allocs: ALLOCS.load(Ordering::Relaxed) - self.allocs,
            deallocs: DEALLOCS.load(Ordering::Relaxed) - self.deallocs,
            reallocs: REALLOCS.load(Ordering::Relaxed) - self.reallocs,
            bytes: BYTES.load(Ordering::Relaxed) - self.bytes,
        }
    }

    /// Run `f` and return its result with the allocator activity it caused.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocStats) {
        let guard = AllocGuard::start();
        let out = f();
        (out, guard.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests exercise the snapshot arithmetic; without the allocator
    // installed as #[global_allocator] the global counters only move when
    // poked directly, which keeps them deterministic under the parallel
    // test runner.

    #[test]
    fn guard_reports_counter_deltas() {
        let guard = AllocGuard::start();
        ALLOCS.fetch_add(3, Ordering::Relaxed);
        BYTES.fetch_add(128, Ordering::Relaxed);
        let stats = guard.finish();
        assert!(stats.allocs >= 3);
        assert!(stats.bytes >= 128);
        assert!(stats.any());
    }

    #[test]
    fn zero_delta_is_not_any() {
        let stats = AllocStats {
            allocs: 0,
            deallocs: 0,
            reallocs: 0,
            bytes: 0,
        };
        assert!(!stats.any());
    }

    #[test]
    fn counting_allocator_forwards_correctly() {
        // Drive the impl directly (not installed globally) and check both
        // the counters and that the memory is actually usable.
        let a = CountingAllocator::new();
        let guard = AllocGuard::start();
        let layout = match Layout::from_size_align(64, 8) {
            Ok(l) => l,
            Err(e) => panic!("layout: {e}"),
        };
        // SAFETY: layout is non-zero-sized; the pointer is written within
        // its 64-byte allocation and freed with the same layout below.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            p.write_bytes(0xAB, 64);
            let p = a.realloc(p, layout, 128);
            assert!(!p.is_null());
            let grown = match Layout::from_size_align(128, 8) {
                Ok(l) => l,
                Err(e) => panic!("layout: {e}"),
            };
            a.dealloc(p, grown);
        }
        let stats = guard.finish();
        assert!(stats.allocs >= 1);
        assert!(stats.reallocs >= 1);
        assert!(stats.deallocs >= 1);
        assert!(stats.bytes >= 64 + 128);
    }
}
