//! A hand-rolled, lint-oriented Rust lexer.
//!
//! The repo lints in [`crate::lints`] are textual ("no `.unwrap()` in
//! library code", "every `unsafe` needs a `// SAFETY:` comment"), so a full
//! parser would be overkill — but a naive `grep` is wrong in both
//! directions: it fires on patterns inside string literals and doc prose,
//! and it misses the comment context needed to verify a SAFETY annotation.
//!
//! This lexer does exactly the separation the lints need. It splits a source
//! file into two byte-parallel views of the same text:
//!
//! * [`Lexed::code`] — the input with every comment and every
//!   string/char-literal *interior* blanked out (replaced by spaces,
//!   newlines preserved), so searching it for `.unwrap(` or `unsafe` can
//!   never match inside a literal or a comment;
//! * [`Lexed::comments`] — the input with everything *except* comment text
//!   blanked out, so the SAFETY lint and the inline
//!   `audit:allow(...)` waivers read only what a human wrote in comments.
//!
//! Because both views preserve byte offsets and line structure, a match in
//! either maps directly to a `file:line` diagnostic.
//!
//! Handled syntax: line comments (`//`, `///`, `//!`), nested block
//! comments (`/* /* */ */`), string literals with escapes, raw strings
//! (`r"…"`, `r#"…"#`, any hash depth) and their byte-string variants
//! (`b"…"`, `br#"…"#`), char and byte-char literals (`'a'`, `b'\n'`), and
//! the lifetime-vs-char-literal ambiguity (`'a` in `<'a>` is not a string
//! start). Exotic literals this workspace does not use (multi-byte char
//! literals like `'é'`) degrade gracefully: the quote is treated as a
//! lifetime marker, which cannot produce a false lint match because the
//! interior characters stay visible as plain code.

/// A source file split into code and comment views (see module docs).
pub struct Lexed {
    /// Source with comments and literal interiors blanked.
    pub code: String,
    /// Source with everything except comment text blanked.
    pub comments: String,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"`; `true` while the previous byte was an unconsumed `\`.
    Str(bool),
    /// Inside `r##"…"##` with the given hash count.
    RawStr(u32),
}

/// Is `b` a byte that can appear in an identifier?
fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `source` into its code and comment views.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let n = bytes.len();
    let mut code = vec![b' '; n];
    let mut comments = vec![b' '; n];
    // Newlines are structural in every view.
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            code[i] = b'\n';
            comments[i] = b'\n';
        }
    }

    let mut state = State::Code;
    let mut i = 0usize;
    while i < n {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
                    state = State::LineComment;
                    comments[i] = b'/';
                    comments[i + 1] = b'/';
                    i += 2;
                } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    state = State::BlockComment(1);
                    comments[i] = b'/';
                    comments[i + 1] = b'*';
                    i += 2;
                } else if b == b'"' {
                    code[i] = b'"';
                    state = State::Str(false);
                    i += 1;
                } else if (b == b'r' || b == b'b')
                    && (i == 0 || !is_ident(bytes[i - 1]))
                    && raw_string_hashes(bytes, i).is_some()
                {
                    // r"…", r#"…"#, br"…", b-prefix consumed up to the quote.
                    let (hashes, quote_at) = match raw_string_hashes(bytes, i) {
                        Some(h) => h,
                        None => unreachable!(),
                    };
                    for slot in code.iter_mut().take(quote_at + 1).skip(i) {
                        *slot = b' ';
                    }
                    code[quote_at] = b'"';
                    state = State::RawStr(hashes);
                    i = quote_at + 1;
                } else if b == b'b' && i + 1 < n && bytes[i + 1] == b'\'' {
                    // Byte-char literal b'x' — always a literal, never a
                    // lifetime.
                    code[i] = b'b';
                    i = skip_char_literal(bytes, i + 1, &mut code);
                } else if b == b'\'' && (i == 0 || !is_ident(bytes[i - 1])) {
                    if looks_like_char_literal(bytes, i) {
                        i = skip_char_literal(bytes, i, &mut code);
                    } else {
                        // A lifetime: keep the tick visible as code.
                        code[i] = b'\'';
                        i += 1;
                    }
                } else {
                    if b != b'\n' {
                        code[i] = b;
                    }
                    i += 1;
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                } else {
                    comments[i] = b;
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                    comments[i] = b'*';
                    comments[i + 1] = b'/';
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    comments[i] = b'/';
                    comments[i + 1] = b'*';
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    if b != b'\n' {
                        comments[i] = b;
                    }
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    state = State::Str(false);
                } else if b == b'\\' {
                    state = State::Str(true);
                } else if b == b'"' {
                    code[i] = b'"';
                    state = State::Code;
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if b == b'"' && has_hashes(bytes, i + 1, hashes) {
                    code[i] = b'"';
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    i += 1;
                }
            }
        }
    }

    // The blanking above only writes ASCII spaces over arbitrary (possibly
    // multi-byte) content, so the views are valid UTF-8 only if rebuilt
    // leniently. Offsets are preserved either way.
    Lexed {
        code: String::from_utf8_lossy(&code).into_owned(),
        comments: String::from_utf8_lossy(&comments).into_owned(),
    }
}

/// At `start` (pointing at `r` or `b`), detect a raw-string opener and
/// return `(hash_count, index_of_opening_quote)`.
fn raw_string_hashes(bytes: &[u8], start: usize) -> Option<(u32, usize)> {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
        if i >= bytes.len() || bytes[i] != b'r' {
            return None;
        }
    }
    if bytes[i] != b'r' {
        return None;
    }
    i += 1;
    let mut hashes = 0u32;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'"' {
        Some((hashes, i))
    } else {
        None
    }
}

/// Are there `count` consecutive `#` bytes at `at`?
fn has_hashes(bytes: &[u8], at: usize, count: u32) -> bool {
    let count = count as usize;
    at + count <= bytes.len() && bytes[at..at + count].iter().all(|&b| b == b'#')
}

/// At a `'` in code position, decide literal vs lifetime: `'\…'` and `'x'`
/// are literals, anything else (`'a` in `<'a>`, `'static`) is a lifetime.
fn looks_like_char_literal(bytes: &[u8], at: usize) -> bool {
    if at + 1 >= bytes.len() {
        return false;
    }
    if bytes[at + 1] == b'\\' {
        return true;
    }
    at + 2 < bytes.len() && bytes[at + 1] != b'\'' && bytes[at + 2] == b'\''
}

/// Consume a char/byte-char literal starting at the `'` at `at`, blanking
/// its interior; returns the index just past the closing quote.
fn skip_char_literal(bytes: &[u8], at: usize, code: &mut [u8]) -> usize {
    code[at] = b'\'';
    let mut i = at + 1;
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            i += 2;
            continue;
        }
        if bytes[i] == b'\'' {
            code[i] = b'\'';
            return i + 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_move_to_comment_view() {
        let lexed = lex("let x = 1; // SAFETY: fine\nlet y = 2;\n");
        assert!(lexed.code.contains("let x = 1;"));
        assert!(!lexed.code.contains("SAFETY"));
        assert!(lexed.comments.contains("// SAFETY: fine"));
        assert!(!lexed.comments.contains("let x"));
    }

    #[test]
    fn string_interiors_are_blanked() {
        let lexed = lex(r#"let s = "call .unwrap() or panic!";"#);
        assert!(!lexed.code.contains("unwrap"));
        assert!(!lexed.code.contains("panic!"));
        assert!(lexed.code.contains("let s ="));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let lexed = lex(r###"let s = r#"a "quoted" .unwrap() inside"#; x.unwrap();"###);
        // The literal's unwrap is gone; the real call survives.
        assert_eq!(lexed.code.matches(".unwrap(").count(), 1);
    }

    #[test]
    fn byte_strings_are_blanked() {
        let lexed = lex(r#"let b = b"panic!"; let r = br"todo!";"#);
        assert!(!lexed.code.contains("panic!"));
        assert!(!lexed.code.contains("todo!"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lexed = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert!(lexed.code.contains("let x = 1;"));
        assert!(!lexed.code.contains("outer"));
        assert!(lexed.comments.contains("still comment"));
    }

    #[test]
    fn lifetimes_are_not_strings() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x } x.unwrap();");
        assert!(lexed.code.contains("fn f<'a>"));
        assert!(lexed.code.contains(".unwrap("));
    }

    #[test]
    fn char_literals_are_blanked() {
        let lexed = lex(r"let c = 'u'; let q = '\''; let n = '\n'; y.unwrap();");
        // The 'u' char must not leak into code as an identifier char.
        assert!(!lexed.code.contains("'u'"));
        assert!(lexed.code.contains(".unwrap("));
    }

    #[test]
    fn comment_markers_inside_strings_are_ignored() {
        let lexed = lex(r#"let url = "https://example.com"; x.unwrap();"#);
        assert!(lexed.code.contains(".unwrap("));
        assert!(lexed.comments.trim().is_empty());
    }

    #[test]
    fn strings_inside_comments_are_ignored() {
        let lexed = lex("// the \" quote stays in the comment\nlet x = 1;");
        assert!(lexed.code.contains("let x = 1;"));
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n// c\n\"s\n t\"\nb\n";
        let lexed = lex(src);
        assert_eq!(lexed.code.lines().count(), src.lines().count());
        assert_eq!(lexed.comments.lines().count(), src.lines().count());
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let lexed = lex("let s = \"line one\n  .unwrap() on line two\";\nx();");
        assert!(!lexed.code.contains("unwrap"));
        assert!(lexed.code.contains("x();"));
    }
}
