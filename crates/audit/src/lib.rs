//! Correctness tooling for the GraphMat workspace.
//!
//! Three legs, all std-only:
//!
//! * [`lexer`] + [`lints`] + [`workspace`] — the `graphmat-audit` binary's
//!   repo lint pass: a comment/string-aware lexer feeding four lints
//!   (mandatory `// SAFETY:` comments, no `unwrap`/`panic!` in library
//!   code, no `println!` in libraries, no `Instant::now()` in superstep
//!   kernels) with `file:line` diagnostics and a checked-in allowlist.
//! * [`alloc_track`] — the counting `#[global_allocator]` used by the
//!   zero-allocation steady-state tests.
//! * The `shard-check` feature lives in the crates it instruments
//!   (`graphmat-sparse`, `graphmat-core`, `graphmat-baselines`), not here;
//!   see the workspace README's "Correctness tooling" section.

pub mod alloc_track;
pub mod lexer;
pub mod lints;
pub mod workspace;
