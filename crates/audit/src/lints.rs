//! The repo lints, evaluated over a [`crate::lexer::Lexed`] view pair.
//!
//! Five lint classes guard the invariants the engine's unsafe concurrency
//! core, recovery paths and perf discipline depend on:
//!
//! * [`LintId::SafetyComment`] — every `unsafe` (block, fn, impl, trait)
//!   must carry a `// SAFETY:` comment (or a `# Safety` doc section for
//!   `unsafe fn` declarations) in the contiguous comment/attribute block
//!   above it, on the same line, or covering a contiguous group of unsafe
//!   items. The disjoint-write protocol in `graphmat-sparse` is exactly as
//!   sound as these comments are accurate; the lint keeps them mandatory.
//! * [`LintId::NoUnwrap`] — no `.unwrap()`, `.expect(…)`, `panic!`,
//!   `todo!` or `unimplemented!` in non-test library code. Fallible library
//!   paths route through `GraphMatError`; a site that genuinely cannot fail
//!   carries an explicit waiver with a one-line justification.
//! * [`LintId::NoPrintln`] — no `println!`/`eprintln!` in library crates;
//!   binaries own the terminal, libraries do not.
//! * [`LintId::NoInstantInKernel`] — no `Instant::now()` inside superstep
//!   kernel modules. Timing belongs at the phase boundaries in the engine
//!   (where it is recorded once per superstep), never inside the SpMV/SEND
//!   inner loops where a clock read per row would poison both the numbers
//!   and the performance being measured.
//! * [`LintId::RecoveryComment`] — every `catch_unwind` in non-test
//!   library code must carry a `// RECOVERY:` comment stating what state
//!   the unwind may have corrupted and how the recovery path contains it.
//!   Panic isolation that doesn't say what it isolates is how half-written
//!   state leaks back into a pool.
//!
//! # Waivers
//!
//! A site-level waiver is a comment on the flagged line or the line above:
//!
//! ```text
//! // audit:allow(no-unwrap): mutex poisoning already means a sibling lane panicked
//! ```
//!
//! The justification after the colon is mandatory — a waiver without one is
//! itself a violation. File-level waivers live in the checked-in allowlist
//! (see `crates/audit/audit.allow` and [`crate::workspace`]).

use crate::lexer::Lexed;

/// The lint classes (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintId {
    /// `unsafe` without a `// SAFETY:` comment.
    SafetyComment,
    /// `.unwrap()` / `.expect(` / `panic!` / `todo!` / `unimplemented!` in
    /// non-test library code.
    NoUnwrap,
    /// `println!` / `eprintln!` in library code.
    NoPrintln,
    /// `Instant::now()` inside a superstep kernel module.
    NoInstantInKernel,
    /// `catch_unwind` without a `// RECOVERY:` comment.
    RecoveryComment,
}

impl LintId {
    /// The stable string id used in waivers and the allowlist.
    pub fn id(self) -> &'static str {
        match self {
            LintId::SafetyComment => "safety-comment",
            LintId::NoUnwrap => "no-unwrap",
            LintId::NoPrintln => "no-println",
            LintId::NoInstantInKernel => "no-instant-in-kernel",
            LintId::RecoveryComment => "recovery-comment",
        }
    }

    /// Parse a stable string id.
    pub fn parse(s: &str) -> Option<LintId> {
        match s {
            "safety-comment" => Some(LintId::SafetyComment),
            "no-unwrap" => Some(LintId::NoUnwrap),
            "no-println" => Some(LintId::NoPrintln),
            "no-instant-in-kernel" => Some(LintId::NoInstantInKernel),
            "recovery-comment" => Some(LintId::RecoveryComment),
            _ => None,
        }
    }

    /// All lint ids, for `--list`.
    pub fn all() -> [LintId; 5] {
        [
            LintId::SafetyComment,
            LintId::NoUnwrap,
            LintId::NoPrintln,
            LintId::NoInstantInKernel,
            LintId::RecoveryComment,
        ]
    }

    /// One-line description for `--list`.
    pub fn describe(self) -> &'static str {
        match self {
            LintId::SafetyComment => {
                "every `unsafe` block/fn/impl needs a `// SAFETY:` comment \
                 stating the invariant that makes it sound"
            }
            LintId::NoUnwrap => {
                "no .unwrap()/.expect()/panic!/todo!/unimplemented! in \
                 non-test library code (route through GraphMatError or waive \
                 with a justification)"
            }
            LintId::NoPrintln => "no println!/eprintln! in library crates",
            LintId::NoInstantInKernel => {
                "no Instant::now() inside superstep kernel modules (time at \
                 engine phase boundaries, not in inner loops)"
            }
            LintId::RecoveryComment => {
                "every `catch_unwind` in library code needs a `// RECOVERY:` \
                 comment stating what state the unwind may have corrupted \
                 and how the recovery path contains it"
            }
        }
    }
}

/// One lint finding: a line plus a message, resolved against a file by the
/// caller.
#[derive(Debug)]
pub struct Diagnostic {
    /// The lint that fired.
    pub lint: LintId,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// What the path of a file implies for lint applicability; computed by
/// [`crate::workspace::classify`] and consumed here.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileClass {
    /// Test/bench/example/binary code: exempt from the library-only lints
    /// (`no-unwrap`, `no-println`).
    pub exempt_from_lib_lints: bool,
    /// A superstep kernel module: `no-instant-in-kernel` applies.
    pub kernel: bool,
}

/// Run every applicable lint over one file's source text.
pub fn lint_source(source: &str, class: FileClass) -> Vec<Diagnostic> {
    let lexed = crate::lexer::lex(source);
    let code_lines: Vec<&str> = lexed.code.lines().collect();
    let comment_lines: Vec<&str> = lexed.comments.lines().collect();
    let test_lines = cfg_test_lines(&lexed, code_lines.len());

    let mut out = Vec::new();
    safety_comment_lint(&code_lines, &comment_lines, &mut out);
    if !class.exempt_from_lib_lints {
        recovery_comment_lint(&code_lines, &comment_lines, &test_lines, &mut out);
        pattern_lint(
            LintId::NoUnwrap,
            &[".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"],
            &code_lines,
            &comment_lines,
            &test_lines,
            &mut out,
        );
        pattern_lint(
            LintId::NoPrintln,
            &["println!", "eprintln!"],
            &code_lines,
            &comment_lines,
            &test_lines,
            &mut out,
        );
    }
    if class.kernel {
        pattern_lint(
            LintId::NoInstantInKernel,
            &["Instant::now"],
            &code_lines,
            &comment_lines,
            &test_lines,
            &mut out,
        );
    }
    out.sort_by_key(|d| d.line);
    out
}

/// Mark every line inside a `#[cfg(test)]` item's braces as test code.
///
/// Also recognizes compound gates like `#[cfg(all(test, feature = "x"))]`
/// — feature-gated test modules (the chaos crate's) are still test code.
fn cfg_test_lines(lexed: &Lexed, nlines: usize) -> Vec<bool> {
    let mut test = vec![false; nlines];
    for needle in ["cfg(test)", "cfg(all(test,"] {
        mark_test_region(lexed, needle, &mut test);
    }
    test
}

/// Mark the brace-delimited item following each occurrence of `needle`.
fn mark_test_region(lexed: &Lexed, needle: &str, test: &mut [bool]) {
    let nlines = test.len();
    let code = lexed.code.as_bytes();
    let mut search_from = 0usize;
    while let Some(found) = find_from(&lexed.code, needle, search_from) {
        search_from = found + 1;
        // Find the item's opening brace; a `;` first means no inline body.
        let mut i = found + needle.len();
        let mut open = None;
        while i < code.len() {
            match code[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut close = code.len();
        for (j, &b) in code.iter().enumerate().skip(open) {
            if b == b'{' {
                depth += 1;
            } else if b == b'}' {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
        }
        let start_line = line_of(code, found);
        let end_line = line_of(code, close.min(code.len().saturating_sub(1)));
        for t in test
            .iter_mut()
            .take((end_line + 1).min(nlines))
            .skip(start_line)
        {
            *t = true;
        }
        search_from = close;
    }
}

/// 0-based line number of byte offset `at`.
fn line_of(bytes: &[u8], at: usize) -> usize {
    bytes[..at.min(bytes.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|p| p + from)
}

/// Does `line` contain `word` as a standalone token (not an identifier
/// substring)?
fn contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = find_from(line, word, from) {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        from = pos + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// How far up a waiver comment block may start above the waived line.
const WAIVER_WALK_LIMIT: usize = 12;

/// Check for an `audit:allow(<id>)` waiver covering `line` (0-based): the
/// same line's comment, or anywhere in the contiguous comment block
/// directly above it. Returns `Some(has_justification)` when a waiver is
/// present.
fn waiver(code_lines: &[&str], comment_lines: &[&str], line: usize, id: LintId) -> Option<bool> {
    let needle = format!("audit:allow({})", id.id());
    let parse = |l: usize| -> Option<bool> {
        let text = comment_lines.get(l)?;
        let pos = text.find(&needle)?;
        let rest = &text[pos + needle.len()..];
        Some(
            rest.strip_prefix(':')
                .map(|r| !r.trim().is_empty())
                .unwrap_or(false),
        )
    };
    if let Some(w) = parse(line) {
        return Some(w);
    }
    let mut j = line;
    for _ in 0..WAIVER_WALK_LIMIT {
        if j == 0 {
            return None;
        }
        j -= 1;
        if let Some(w) = parse(j) {
            return Some(w);
        }
        // Keep walking only through comment-only lines: any code or blank
        // line ends the block a waiver could live in.
        let code = code_lines.get(j).map(|c| c.trim()).unwrap_or("");
        let comment = comment_lines.get(j).map(|c| c.trim()).unwrap_or("");
        if !code.is_empty() || comment.is_empty() {
            return None;
        }
    }
    None
}

/// Generic per-line pattern lint with waiver + test-region handling.
fn pattern_lint(
    lint: LintId,
    patterns: &[&str],
    code_lines: &[&str],
    comment_lines: &[&str],
    test_lines: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (i, code) in code_lines.iter().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(hit) = patterns.iter().find(|p| {
            if p.starts_with('.') {
                code.contains(*p)
            } else {
                // Macro-style patterns need a token boundary so `panic!`
                // does not fire on `debug_panic!`-style identifiers.
                let bare = p.trim_end_matches('!');
                contains_word(code, bare) && code.contains(*p)
            }
        }) else {
            continue;
        };
        match waiver(code_lines, comment_lines, i, lint) {
            Some(true) => continue,
            Some(false) => out.push(Diagnostic {
                lint,
                line: i + 1,
                message: format!(
                    "audit:allow({}) without a justification — write \
                     `audit:allow({}): <reason>`",
                    lint.id(),
                    lint.id()
                ),
            }),
            None => out.push(Diagnostic {
                lint,
                line: i + 1,
                message: format!("`{hit}` in library code"),
            }),
        }
    }
}

/// How far up the SAFETY-comment walk may go (bounds pathological files,
/// comfortably larger than any real doc block in this workspace).
const SAFETY_WALK_LIMIT: usize = 80;

/// The SAFETY lint: every line containing an `unsafe` token must be covered
/// by a SAFETY annotation (see module docs for what counts as covered).
fn safety_comment_lint(code_lines: &[&str], comment_lines: &[&str], out: &mut Vec<Diagnostic>) {
    for (i, code) in code_lines.iter().enumerate() {
        if !contains_word(code, "unsafe") {
            continue;
        }
        if has_safety_annotation(code_lines, comment_lines, i) {
            continue;
        }
        match waiver(code_lines, comment_lines, i, LintId::SafetyComment) {
            Some(true) => continue,
            Some(false) => out.push(Diagnostic {
                lint: LintId::SafetyComment,
                line: i + 1,
                message: "audit:allow(safety-comment) without a justification".into(),
            }),
            None => out.push(Diagnostic {
                lint: LintId::SafetyComment,
                line: i + 1,
                message: "`unsafe` without a `// SAFETY:` comment documenting \
                          the invariant that makes it sound"
                    .into(),
            }),
        }
    }
}

/// Does a SAFETY marker cover line `i` (0-based)? Same line, or walking up
/// through the contiguous block of comments, attributes and other unsafe
/// lines above it.
fn has_safety_annotation(code_lines: &[&str], comment_lines: &[&str], i: usize) -> bool {
    has_annotation(
        code_lines,
        comment_lines,
        i,
        &["SAFETY", "# Safety"],
        "unsafe",
    )
}

/// The RECOVERY lint: every `catch_unwind` in non-test library code must be
/// covered by a `// RECOVERY:` comment explaining what the unwind may have
/// corrupted and how the recovery path contains it — the comment is the
/// contract that keeps panic isolation honest.
fn recovery_comment_lint(
    code_lines: &[&str],
    comment_lines: &[&str],
    test_lines: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    for (i, code) in code_lines.iter().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !contains_word(code, "catch_unwind") {
            continue;
        }
        // Importing the symbol is not a panic-isolation site.
        let trimmed = code.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue;
        }
        if has_annotation(code_lines, comment_lines, i, &["RECOVERY"], "catch_unwind") {
            continue;
        }
        match waiver(code_lines, comment_lines, i, LintId::RecoveryComment) {
            Some(true) => continue,
            Some(false) => out.push(Diagnostic {
                lint: LintId::RecoveryComment,
                line: i + 1,
                message: "audit:allow(recovery-comment) without a justification".into(),
            }),
            None => out.push(Diagnostic {
                lint: LintId::RecoveryComment,
                line: i + 1,
                message: "`catch_unwind` without a `// RECOVERY:` comment \
                          documenting what the unwind may corrupt and how \
                          recovery contains it"
                    .into(),
            }),
        }
    }
}

/// Does one of `markers` cover line `i` (0-based)? Same line, or walking up
/// through the contiguous block of comments, attributes and sibling lines
/// containing `sibling_word` above it.
fn has_annotation(
    code_lines: &[&str],
    comment_lines: &[&str],
    i: usize,
    markers: &[&str],
    sibling_word: &str,
) -> bool {
    let marked = |l: usize| {
        comment_lines
            .get(l)
            .map(|t| markers.iter().any(|m| t.contains(m)))
            .unwrap_or(false)
    };
    if marked(i) {
        return true;
    }
    let mut j = i;
    for _ in 0..SAFETY_WALK_LIMIT {
        if j == 0 {
            return false;
        }
        j -= 1;
        if marked(j) {
            return true;
        }
        let code = code_lines.get(j).map(|c| c.trim()).unwrap_or("");
        let comment = comment_lines.get(j).map(|c| c.trim()).unwrap_or("");
        let is_blank = code.is_empty() && comment.is_empty();
        let is_comment_only = code.is_empty() && !comment.is_empty();
        let is_attribute = code.starts_with('#');
        let is_sibling = contains_word(code, sibling_word);
        if is_blank {
            return false;
        }
        if is_comment_only || is_attribute || is_sibling {
            continue;
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> Vec<Diagnostic> {
        lint_source(src, FileClass::default())
    }

    fn lint_kernel(src: &str) -> Vec<Diagnostic> {
        lint_source(
            src,
            FileClass {
                kernel: true,
                ..FileClass::default()
            },
        )
    }

    fn has(diags: &[Diagnostic], lint: LintId, line: usize) -> bool {
        diags.iter().any(|d| d.lint == lint && d.line == line)
    }

    // --- seeded violations: one per lint class -------------------------

    #[test]
    fn seeded_safety_less_unsafe_fires() {
        let diags = lint_lib("fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n");
        assert!(has(&diags, LintId::SafetyComment, 2), "{diags:?}");
    }

    #[test]
    fn seeded_library_unwrap_fires() {
        let diags = lint_lib("pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n");
        assert!(has(&diags, LintId::NoUnwrap, 2), "{diags:?}");
    }

    #[test]
    fn seeded_library_println_fires() {
        let diags = lint_lib("pub fn f() {\n    println!(\"hi\");\n}\n");
        assert!(has(&diags, LintId::NoPrintln, 2), "{diags:?}");
    }

    #[test]
    fn seeded_kernel_instant_fires() {
        let src = "use std::time::Instant;\npub fn k() {\n    let _t = Instant::now();\n}\n";
        let diags = lint_kernel(src);
        assert!(has(&diags, LintId::NoInstantInKernel, 3), "{diags:?}");
        // The same file as a non-kernel module is clean.
        assert!(lint_lib(src)
            .iter()
            .all(|d| d.lint != LintId::NoInstantInKernel));
    }

    #[test]
    fn seeded_catch_unwind_without_recovery_fires() {
        let src = "pub fn f() {\n    let _ = std::panic::catch_unwind(|| 1);\n}\n";
        let diags = lint_lib(src);
        assert!(has(&diags, LintId::RecoveryComment, 2), "{diags:?}");
    }

    #[test]
    fn recovery_comment_above_catch_unwind_is_accepted() {
        let src = "pub fn f() {\n    // RECOVERY: the closure owns no shared state; an unwind\n    // leaves nothing to contain.\n    let _ = std::panic::catch_unwind(|| 1);\n}\n";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn catch_unwind_in_tests_is_exempt_from_recovery() {
        let src = "pub fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = std::panic::catch_unwind(|| 1);\n    }\n}\n";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
        let class = FileClass {
            exempt_from_lib_lints: true,
            kernel: false,
        };
        let bin = "fn main() {\n    let _ = std::panic::catch_unwind(|| 1);\n}\n";
        assert!(lint_source(bin, class).is_empty());
    }

    #[test]
    fn importing_catch_unwind_needs_no_recovery_comment() {
        let src = "use std::panic::{catch_unwind, AssertUnwindSafe};\n\npub fn f() {\n    // RECOVERY: nothing shared.\n    let _ = catch_unwind(|| 1);\n}\n";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn feature_gated_test_module_is_exempt() {
        let src = "pub fn lib() {}\n\n#[cfg(all(test, feature = \"chaos\"))]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = std::panic::catch_unwind(|| Some(1).unwrap());\n        println!(\"ok\");\n    }\n}\n";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    // --- the annotations that silence each lint -------------------------

    #[test]
    fn safety_comment_above_is_accepted() {
        let diags = lint_lib("// SAFETY: p is valid for writes per the caller contract.\nfn f(p: *mut u8) { unsafe { *p = 0 } }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn safety_comment_on_same_line_is_accepted() {
        let diags = lint_lib("fn f(p: *mut u8) { unsafe { *p = 0 } } // SAFETY: caller contract\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn safety_doc_section_covers_unsafe_fn() {
        let src = "/// Reads a slot.\n///\n/// # Safety\n/// `i < len` and no concurrent access.\n#[allow(clippy::mut_from_ref)]\npub unsafe fn get(i: usize) {}\n";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn one_safety_comment_covers_contiguous_unsafe_group() {
        let src = "// SAFETY: pointers cross threads only under the dispatch protocol.\nunsafe impl<T: Send> Send for Raw<T> {}\nunsafe impl<T: Send> Sync for Raw<T> {}\n";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn blank_line_breaks_safety_coverage() {
        let src = "// SAFETY: something.\nfn a() {}\n\nfn f(p: *mut u8) { unsafe { *p = 0 } }\n";
        let diags = lint_lib(src);
        assert!(has(&diags, LintId::SafetyComment, 4), "{diags:?}");
    }

    #[test]
    fn unsafe_in_prose_or_string_does_not_fire() {
        let diags = lint_lib("// this API is unsafe to misuse\nlet s = \"unsafe\";\nlet x = 1;\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    // --- exemptions ------------------------------------------------------

    #[test]
    fn cfg_test_module_is_exempt_from_lib_lints() {
        let src = "pub fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n        println!(\"ok\");\n    }\n}\n";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn code_before_cfg_test_is_still_linted() {
        let src =
            "pub fn lib(x: Option<u32>) -> u32 { x.unwrap() }\n\n#[cfg(test)]\nmod tests {}\n";
        let diags = lint_lib(src);
        assert!(has(&diags, LintId::NoUnwrap, 1), "{diags:?}");
    }

    #[test]
    fn exempt_class_skips_lib_lints_but_not_safety() {
        let class = FileClass {
            exempt_from_lib_lints: true,
            kernel: false,
        };
        let src = "fn main() {\n    Some(1).unwrap();\n    unsafe { core::hint::unreachable_unchecked() };\n}\n";
        let diags = lint_source(src, class);
        assert!(diags.iter().all(|d| d.lint != LintId::NoUnwrap));
        assert!(has(&diags, LintId::SafetyComment, 3), "{diags:?}");
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let diags = lint_lib(
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn expect_err_and_custom_macros_do_not_fire() {
        let diags = lint_lib(
            "pub fn f(x: Result<u32, u32>) -> u32 {\n    let _ = my_panic!(2);\n    x.expect_err(\"want err\")\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    // --- waivers ---------------------------------------------------------

    #[test]
    fn waiver_with_justification_silences() {
        let src = "pub fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    // audit:allow(no-unwrap): poisoning already means another lane panicked\n    *m.lock().unwrap()\n}\n";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn waiver_on_same_line_silences() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // audit:allow(no-unwrap): checked by caller\n}\n";
        let diags = lint_lib(src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn waiver_without_justification_is_a_violation() {
        let src =
            "pub fn f(x: Option<u32>) -> u32 {\n    // audit:allow(no-unwrap)\n    x.unwrap()\n}\n";
        let diags = lint_lib(src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("justification"), "{diags:?}");
    }

    #[test]
    fn waiver_for_wrong_lint_does_not_silence() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    // audit:allow(no-println): wrong lint
    x.unwrap()\n}\n";
        let diags = lint_lib(src);
        assert!(has(&diags, LintId::NoUnwrap, 3), "{diags:?}");
    }

    #[test]
    fn lint_ids_round_trip() {
        for lint in LintId::all() {
            assert_eq!(LintId::parse(lint.id()), Some(lint));
            assert!(!lint.describe().is_empty());
        }
        assert_eq!(LintId::parse("nonsense"), None);
    }
}
