//! `graphmat-audit` — the workspace lint pass.
//!
//! ```text
//! cargo run -p graphmat-audit              # audit the workspace, exit 1 on violations
//! cargo run -p graphmat-audit -- --list    # describe the lints
//! cargo run -p graphmat-audit -- --root X  # audit a different tree (used by tests)
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

use graphmat_audit::workspace::{run_audit, Allowlist, Config};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for lint in graphmat_audit::lints::LintId::all() {
                    println!("{:<22} {}", lint.id(), lint.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("graphmat-audit: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("graphmat-audit: unknown argument `{other}`");
                eprintln!("usage: graphmat-audit [--root <dir>] [--list]");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => match workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("graphmat-audit: could not locate the workspace root (no Cargo.toml with [workspace] above the current directory); pass --root");
                return ExitCode::from(2);
            }
        },
    };

    let allow_path = root.join("crates/audit/audit.allow");
    let mut allowlist = if allow_path.exists() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("graphmat-audit: reading {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        };
        match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("graphmat-audit: {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::default()
    };

    let report = match run_audit(&root, &mut allowlist, &Config::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("graphmat-audit: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for (path, diag) in &report.violations {
        println!(
            "{path}:{}: [{}] {}",
            diag.line,
            diag.lint.id(),
            diag.message
        );
    }
    for unused in &report.unused_allow {
        println!(
            "warning: unused allowlist entry `{unused}` (remove it from crates/audit/audit.allow)"
        );
    }
    if report.clean() {
        println!(
            "graphmat-audit: {} files scanned, 0 violations",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "graphmat-audit: {} files scanned, {} violation(s)",
            report.files_scanned,
            report.violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Walk upward from the current directory to the first `Cargo.toml`
/// containing a `[workspace]` table.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        dir = Path::new(&dir).parent()?.to_path_buf();
    }
}
