//! Workspace walking, path classification, and the checked-in allowlist.
//!
//! [`run_audit`] is the whole pipeline: walk every `.rs` file under the
//! workspace root (skipping `target/` and `.git/`), classify each path to
//! decide which lints apply, run [`crate::lints::lint_source`], and filter
//! the findings through the allowlist. The binary in `main.rs` is a thin
//! CLI over this function so the integration tests can drive the identical
//! pipeline against fixture trees.
//!
//! # Path classification
//!
//! * **Library code** (default): all four lints apply as configured.
//! * **Exempt from library-only lints** (`no-unwrap`, `no-println`):
//!   integration tests (`tests/`), benches (`benches/`), examples
//!   (`examples/`), binary targets (`src/bin/`, `src/main.rs`), build
//!   scripts (`build.rs`), and the loadgen/CLI-style crates listed in
//!   [`Config::bin_crate_prefixes`]. `#[cfg(test)]` modules inside library
//!   files are exempted by the lint itself, not by path.
//! * **Kernel modules** ([`Config::kernel_prefixes`]): `Instant::now()` is
//!   banned. The superstep inner loops live in `crates/sparse/src`; timing
//!   belongs at engine phase boundaries.
//!
//! The SAFETY lint applies *everywhere*, including tests and bins — an
//! undocumented `unsafe` in a test is still an undocumented invariant.
//!
//! # Allowlist format (`crates/audit/audit.allow`)
//!
//! One waiver per line; blank lines and `#` comments ignored:
//!
//! ```text
//! <lint-id> <path-prefix> -- <one-line justification>
//! ```
//!
//! The prefix is matched against the `/`-separated path relative to the
//! workspace root, so `no-println crates/criterion/ -- bench harness owns
//! stdout` waives that lint for the whole crate. Entries that matched
//! nothing are reported as warnings so the allowlist cannot rot.

use crate::lints::{self, Diagnostic, FileClass, LintId};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What the audit walks and how paths are classified.
pub struct Config {
    /// Path prefixes (relative, `/`-separated) of superstep kernel modules
    /// where `Instant::now()` is banned.
    pub kernel_prefixes: Vec<String>,
    /// Path prefixes of crates that are binaries in spirit (CLI harnesses)
    /// even where the code lives under `src/`.
    pub bin_crate_prefixes: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            kernel_prefixes: vec!["crates/sparse/src/".into()],
            bin_crate_prefixes: vec!["crates/bench/".into()],
        }
    }
}

/// One parsed allowlist entry.
pub struct AllowEntry {
    /// The waived lint.
    pub lint: LintId,
    /// Relative-path prefix the waiver covers.
    pub prefix: String,
    /// Mandatory one-line justification.
    pub justification: String,
    /// Set while filtering; unused entries are reported.
    pub used: bool,
}

/// The checked-in file-level allowlist.
#[derive(Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the `audit.allow` format; returns `Err` with a message naming
    /// the offending line on malformed input.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (spec, justification) = line.split_once(" -- ").ok_or_else(|| {
                format!(
                    "allowlist line {}: missing ` -- <justification>`",
                    lineno + 1
                )
            })?;
            let justification = justification.trim();
            if justification.is_empty() {
                return Err(format!(
                    "allowlist line {}: empty justification",
                    lineno + 1
                ));
            }
            let (id, prefix) = spec.trim().split_once(char::is_whitespace).ok_or_else(|| {
                format!(
                    "allowlist line {}: expected `<lint-id> <path-prefix>`",
                    lineno + 1
                )
            })?;
            let lint = LintId::parse(id)
                .ok_or_else(|| format!("allowlist line {}: unknown lint id `{id}`", lineno + 1))?;
            entries.push(AllowEntry {
                lint,
                prefix: prefix.trim().to_string(),
                justification: justification.to_string(),
                used: false,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Is this diagnostic waived? Marks the matching entry used.
    fn covers(&mut self, rel_path: &str, diag: &Diagnostic) -> bool {
        let mut hit = false;
        for entry in &mut self.entries {
            if entry.lint == diag.lint && rel_path.starts_with(entry.prefix.as_str()) {
                entry.used = true;
                hit = true;
            }
        }
        hit
    }
}

/// Classify a relative (`/`-separated) path per the module docs.
pub fn classify(rel_path: &str, config: &Config) -> FileClass {
    let exempt_markers = ["tests/", "benches/", "examples/", "src/bin/"];
    let exempt_from_lib_lints = exempt_markers
        .iter()
        .any(|m| rel_path.starts_with(m) || rel_path.contains(&format!("/{m}")))
        || rel_path.ends_with("src/main.rs")
        || rel_path.ends_with("build.rs")
        || config
            .bin_crate_prefixes
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()));
    let kernel = config
        .kernel_prefixes
        .iter()
        .any(|p| rel_path.starts_with(p.as_str()));
    FileClass {
        exempt_from_lib_lints,
        kernel,
    }
}

/// Everything one audit run produced.
pub struct AuditReport {
    /// Violations surviving the allowlist, as (relative path, diagnostic),
    /// sorted by path then line.
    pub violations: Vec<(String, Diagnostic)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Allowlist entries that matched no diagnostic this run.
    pub unused_allow: Vec<String>,
}

impl AuditReport {
    /// Did the audit pass?
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Walk `root` and audit every Rust file (see module docs).
pub fn run_audit(
    root: &Path,
    allowlist: &mut Allowlist,
    config: &Config,
) -> io::Result<AuditReport> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files)?;
    files.sort();

    let mut violations = Vec::new();
    for path in &files {
        let rel = relative_slash_path(root, path);
        let source = fs::read_to_string(path)?;
        let class = classify(&rel, config);
        for diag in lints::lint_source(&source, class) {
            if !allowlist.covers(&rel, &diag) {
                violations.push((rel.clone(), diag));
            }
        }
    }
    violations.sort_by(|a, b| (a.0.as_str(), a.1.line).cmp(&(b.0.as_str(), b.1.line)));

    let unused_allow = allowlist
        .entries
        .iter()
        .filter(|e| !e.used)
        .map(|e| format!("{} {}", e.lint.id(), e.prefix))
        .collect();
    Ok(AuditReport {
        violations,
        files_scanned: files.len(),
        unused_allow,
    })
}

/// Recursively gather `.rs` files, skipping build output and VCS internals.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_library_vs_exempt_paths() {
        let config = Config::default();
        assert!(!classify("crates/core/src/engine.rs", &config).exempt_from_lib_lints);
        assert!(classify("tests/engine_behaviour.rs", &config).exempt_from_lib_lints);
        assert!(classify("crates/core/benches/spmv.rs", &config).exempt_from_lib_lints);
        assert!(classify("crates/server/src/bin/server.rs", &config).exempt_from_lib_lints);
        assert!(classify("crates/io/examples/load.rs", &config).exempt_from_lib_lints);
        assert!(classify("crates/bench/src/figures.rs", &config).exempt_from_lib_lints);
    }

    #[test]
    fn classify_kernel_paths() {
        let config = Config::default();
        assert!(classify("crates/sparse/src/spmv.rs", &config).kernel);
        assert!(!classify("crates/core/src/engine.rs", &config).kernel);
    }

    #[test]
    fn allowlist_parse_and_match() {
        let mut allow = match Allowlist::parse(
            "# comment\n\nno-println crates/criterion/ -- bench harness owns stdout\n",
        ) {
            Ok(a) => a,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(allow.entries.len(), 1);
        let diag = Diagnostic {
            lint: LintId::NoPrintln,
            line: 3,
            message: String::new(),
        };
        assert!(allow.covers("crates/criterion/src/report.rs", &diag));
        assert!(!allow.covers("crates/core/src/engine.rs", &diag));
        let other = Diagnostic {
            lint: LintId::NoUnwrap,
            line: 3,
            message: String::new(),
        };
        assert!(!allow.covers("crates/criterion/src/report.rs", &other));
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("no-println crates/foo/").is_err());
        assert!(Allowlist::parse("no-println crates/foo/ -- ").is_err());
        assert!(Allowlist::parse("bogus-lint crates/foo/ -- why").is_err());
        assert!(Allowlist::parse("no-println -- why").is_err());
    }
}
