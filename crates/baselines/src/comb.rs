//! CombBLAS-style pure-semiring matrix engine.
//!
//! CombBLAS expresses everything as semiring SpMV/SpGEMM and — crucially —
//! its message-processing functor sees only the message and the edge value,
//! *not* the destination vertex's state (§4.2). Two consequences the paper
//! measures, both reproduced here:
//!
//! 1. **Backend overhead.** CombBLAS is an MPI library with a 2-D
//!    partitioning; even on one node every iteration packs the message vector
//!    into per-process buffers. This engine materialises those copies (one
//!    per simulated process) and charges them to the cost model, which is why
//!    it trails GraphMat on PageRank/BFS/SSSP by a constant factor.
//! 2. **Expressiveness gap.** Triangle counting cannot read the destination's
//!    adjacency list during message processing, so it falls back to masked
//!    SpGEMM whose intermediate products dwarf the input (36× slower in the
//!    paper, Figure 4c); collaborative filtering needs an extra gather pass
//!    to bring the partner vectors over before the gradient can be formed.

use crate::BaselineRun;
use graphmat_io::bipartite::RatingsGraph;
use graphmat_io::edgelist::{EdgeList, EdgeWeight};
use graphmat_perf::CostCounters;
use graphmat_sparse::csr::Csr;
use graphmat_sparse::parallel::Executor;
use graphmat_sparse::partition::PartitionedDcsc;
use graphmat_sparse::semiring::PlusTimes;
use graphmat_sparse::spmm::{spgemm, spgemm_masked, sum_values};
use graphmat_sparse::spmv::gspmv;
use graphmat_sparse::spvec::{MessageVector, SparseVector};
use graphmat_sparse::Index;
use std::time::Instant;

/// Number of MPI ranks the engine pretends to run with (the paper uses 16
/// processes on its 24-core machine because CombBLAS requires a square
/// process count).
const SIMULATED_PROCESSES: usize = 16;

/// Simulate the per-process message-buffer packing CombBLAS performs each
/// iteration: copy the frontier values once per simulated process and charge
/// the copies to the cost model.
fn simulate_mpi_copies<T: Clone>(frontier: &SparseVector<T>, counters: &mut CostCounters) {
    let nnz = frontier.nnz();
    for _ in 0..SIMULATED_PROCESSES {
        // materialise the buffer so the time cost is real, not just counted
        let buffer: Vec<(Index, T)> = frontier.iter().map(|(i, v)| (i, v.clone())).collect();
        std::hint::black_box(&buffer);
        counters.add_overhead(nnz as u64);
        counters.add_bytes_written(nnz as u64 * std::mem::size_of::<T>() as u64);
    }
}

fn transpose_partitioned<E: Clone>(edges: &EdgeList<E>, nparts: usize) -> PartitionedDcsc<E> {
    PartitionedDcsc::from_coo_balanced(&edges.to_transpose_coo(), nparts.max(1))
}

/// PageRank on the semiring engine. Any edge type works — the semiring
/// multiply ignores the matrix value.
pub fn pagerank<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    random_surf: f64,
    iterations: usize,
    nthreads: usize,
) -> BaselineRun<f64> {
    let n = edges.num_vertices() as usize;
    let executor = Executor::new(nthreads.max(1));
    let gt = transpose_partitioned(edges, nthreads.max(1) * 4);
    let degrees: Vec<u32> = edges.out_degrees().iter().map(|&d| d as u32).collect();
    let mut counters = CostCounters::new();

    let start = Instant::now();
    let mut ranks = vec![1.0f64; n];
    for _ in 0..iterations {
        let mut frontier: SparseVector<f64> = SparseVector::new(n);
        for v in 0..n {
            if degrees[v] > 0 {
                frontier.set(v as Index, ranks[v] / degrees[v] as f64);
            }
        }
        simulate_mpi_copies(&frontier, &mut counters);
        let sums = gspmv(
            &gt,
            &frontier,
            // pure semiring multiply: no destination-vertex access
            &|msg: &f64, _e: &E, _k: Index| *msg,
            &|acc: &mut f64, v: f64| *acc += v,
            &executor,
        );
        counters.add_edge_ops(gt.nnz() as u64);
        counters.add_messages(frontier.nnz() as u64);
        counters.add_bytes_read(gt.nnz() as u64 * 12);
        for (v, rank) in ranks.iter_mut().enumerate() {
            if let Some(sum) = sums.get(v as Index) {
                *rank = random_surf + (1.0 - random_surf) * sum;
            }
        }
        counters.add_vertex_ops(n as u64);
    }
    BaselineRun {
        values: ranks,
        elapsed: start.elapsed(),
        counters,
        iterations,
    }
}

/// BFS on the semiring engine (boolean frontier expansion). Any edge type
/// works, including the unweighted `()`.
pub fn bfs<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    root: Index,
    nthreads: usize,
) -> BaselineRun<u32> {
    let sym = edges.symmetrized();
    let n = sym.num_vertices() as usize;
    let executor = Executor::new(nthreads.max(1));
    let gt = transpose_partitioned(&sym, nthreads.max(1) * 4);
    let out_degrees = sym.out_degrees();
    let mut counters = CostCounters::new();

    let start = Instant::now();
    let mut dist = vec![u32::MAX; n];
    dist[root as usize] = 0;
    let mut frontier: SparseVector<u32> = SparseVector::new(n);
    frontier.set(root, 0);
    let mut iterations = 0usize;
    while frontier.nnz() > 0 {
        iterations += 1;
        simulate_mpi_copies(&frontier, &mut counters);
        let reached = gspmv(
            &gt,
            &frontier,
            &|level: &u32, _e: &E, _k: Index| level + 1,
            &|acc: &mut u32, v: u32| *acc = (*acc).min(v),
            &executor,
        );
        counters.add_messages(frontier.nnz() as u64);
        let mut next: SparseVector<u32> = SparseVector::new(n);
        for (v, &level) in reached.iter() {
            counters.add_vertex_ops(1);
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = level;
                next.set(v, level);
            }
        }
        counters.add_edge_ops(
            frontier
                .iter()
                .map(|(v, _)| out_degrees[v as usize] as u64)
                .sum(),
        );
        frontier = next;
    }
    BaselineRun {
        values: dist,
        elapsed: start.elapsed(),
        counters,
        iterations,
    }
}

/// SSSP on the semiring engine (min-plus frontier relaxation). Accepts any
/// scalar-readable edge weight type.
pub fn sssp<E: EdgeWeight>(
    edges: &EdgeList<E>,
    source: Index,
    nthreads: usize,
) -> BaselineRun<f32> {
    let n = edges.num_vertices() as usize;
    let executor = Executor::new(nthreads.max(1));
    let gt = transpose_partitioned(edges, nthreads.max(1) * 4);
    let out_degrees = edges.out_degrees();
    let mut counters = CostCounters::new();

    let start = Instant::now();
    let mut dist = vec![f32::MAX; n];
    dist[source as usize] = 0.0;
    let mut frontier: SparseVector<f32> = SparseVector::new(n);
    frontier.set(source, 0.0);
    let mut iterations = 0usize;
    while frontier.nnz() > 0 {
        iterations += 1;
        simulate_mpi_copies(&frontier, &mut counters);
        let relaxed = gspmv(
            &gt,
            &frontier,
            &|d: &f32, w: &E, _k: Index| d + w.weight(),
            &|acc: &mut f32, v: f32| *acc = acc.min(v),
            &executor,
        );
        counters.add_messages(frontier.nnz() as u64);
        counters.add_edge_ops(
            frontier
                .iter()
                .map(|(v, _)| out_degrees[v as usize] as u64)
                .sum(),
        );
        let mut next: SparseVector<f32> = SparseVector::new(n);
        for (v, &candidate) in relaxed.iter() {
            counters.add_vertex_ops(1);
            if candidate < dist[v as usize] {
                dist[v as usize] = candidate;
                next.set(v, candidate);
            }
        }
        frontier = next;
    }
    BaselineRun {
        values: dist,
        elapsed: start.elapsed(),
        counters,
        iterations,
    }
}

/// Triangle counting via masked SpGEMM (`sum((A·A) .* A)`) — the only option
/// for a framework whose multiply cannot look at the destination vertex.
/// Also reports the intermediate-product count that makes this approach blow
/// up on large graphs.
pub fn triangle_count<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    _nthreads: usize,
) -> BaselineRun<u64> {
    let dag = edges.to_dag();
    // unweighted boolean structure: triangle counting ignores edge weights
    let adj_f64 = Csr::from_coo(&dag.to_adjacency_coo().map(|_| 1.0f64));
    let mut counters = CostCounters::new();

    let start = Instant::now();
    // every (i,k,j) product attempted is an edge op; Gustavson visits
    // Σ_i Σ_{k ∈ row i} nnz(row k) of them — count explicitly
    let mut intermediate_products: u64 = 0;
    for i in 0..adj_f64.nrows() {
        let (cols, _) = adj_f64.row(i);
        for &k in cols {
            intermediate_products += adj_f64.row_nnz(k) as u64;
        }
    }
    // The naive CombBLAS formulation materialises the full A·A before
    // masking — this is the intermediate blow-up the paper measures (the
    // product typically has far more non-zeros than A itself).
    let full_product = spgemm(&adj_f64, &adj_f64, &PlusTimes);
    let masked = spgemm_masked(&adj_f64, &adj_f64, &adj_f64, &PlusTimes);
    let total = sum_values(&masked, 0.0, |acc, v| acc + v) as u64;
    counters.add_edge_ops(intermediate_products);
    // materialised intermediates: every stored entry of A·A plus the products
    counters.add_overhead(intermediate_products + full_product.nnz() as u64);
    counters.add_bytes_read(intermediate_products * 12);
    counters.add_bytes_written(full_product.nnz() as u64 * 16 + masked.nnz() as u64 * 16);
    counters.add_vertex_ops(adj_f64.nrows() as u64);

    // per-vertex counts (row sums of the masked product) for API parity
    let mut per_vertex = vec![0u64; dag.num_vertices() as usize];
    for (r, _, v) in masked.entries() {
        per_vertex[*r as usize] += *v as u64;
    }
    let _ = total;
    BaselineRun {
        values: per_vertex,
        elapsed: start.elapsed(),
        counters,
        iterations: 1,
    }
}

/// Collaborative filtering with the extra "gather partner vectors" pass a
/// pure-semiring framework needs (it cannot read the destination's latent
/// vector inside the multiply).
pub fn collaborative_filtering(
    ratings: &RatingsGraph,
    latent_dims: usize,
    lambda: f64,
    gamma: f64,
    iterations: usize,
    seed: u64,
    _nthreads: usize,
) -> BaselineRun<Vec<f64>> {
    let edges = &ratings.edges;
    let n = edges.num_vertices() as usize;
    let user_to_item = Csr::from_coo(&edges.to_adjacency_coo());
    let item_to_user = Csr::from_coo(&edges.to_transpose_coo());
    let mut counters = CostCounters::new();

    let start = Instant::now();
    let mut features: Vec<Vec<f64>> = (0..n as u32)
        .map(|v| {
            (0..latent_dims)
                .map(|i| crate::native::deterministic_init(seed, v, i, latent_dims))
                .collect()
        })
        .collect();

    for _ in 0..iterations {
        let snapshot = features.clone();
        counters.add_overhead((n * latent_dims) as u64); // snapshot copy
        for v in 0..n {
            let (neighbors, ratings_row) = if (v as u32) < ratings.num_users {
                user_to_item.row(v as Index)
            } else {
                item_to_user.row(v as Index)
            };
            if neighbors.is_empty() {
                continue;
            }
            // Pass 1 (the extra gather): materialise every partner's vector.
            let gathered: Vec<Vec<f64>> = neighbors
                .iter()
                .map(|&o| snapshot[o as usize].clone())
                .collect();
            counters.add_overhead((gathered.len() * latent_dims) as u64);
            counters.add_bytes_written((gathered.len() * latent_dims * 8) as u64);
            // Pass 2: the gradient, now that the partner vectors are local.
            let mut gradient = vec![0.0f64; latent_dims];
            for (partner, &rating) in gathered.iter().zip(ratings_row) {
                let dot: f64 = snapshot[v]
                    .iter()
                    .zip(partner.iter())
                    .map(|(a, b)| a * b)
                    .sum();
                let err = rating as f64 - dot;
                for (g, x) in gradient.iter_mut().zip(partner.iter()) {
                    *g += err * x;
                }
            }
            counters.add_edge_ops(neighbors.len() as u64);
            for (p, g) in features[v].iter_mut().zip(gradient.iter()) {
                *p += gamma * (g - lambda * *p);
            }
            counters.add_vertex_ops(1);
        }
    }
    BaselineRun {
        values: features,
        elapsed: start.elapsed(),
        counters,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native;
    use graphmat_io::bipartite::{self, BipartiteConfig};
    use graphmat_io::uniform::{self, UniformConfig};

    fn graph() -> EdgeList {
        uniform::generate(&UniformConfig::new(64, 512).with_weights(1, 9).with_seed(3))
    }

    #[test]
    fn comb_pagerank_matches_native() {
        let el = graph();
        let a = pagerank(&el, 0.15, 10, 2);
        let b = native::pagerank(&el, 0.15, 10, 2);
        for (x, y) in a.values.iter().zip(b.values.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
        // CombBLAS-like engine must report more overhead than native (which
        // reports none)
        assert!(a.counters.overhead_ops > b.counters.overhead_ops);
    }

    #[test]
    fn comb_bfs_matches_native() {
        let el = graph();
        let a = bfs(&el, 3, 2);
        let b = native::bfs(&el, 3, 2);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn comb_sssp_matches_native() {
        let el = graph();
        let a = sssp(&el, 5, 2);
        let b = native::sssp(&el, 5, 2);
        for (x, y) in a.values.iter().zip(b.values.iter()) {
            if *x == f32::MAX || *y == f32::MAX {
                assert_eq!(x, y);
            } else {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn comb_triangles_match_native_and_blow_up_in_ops() {
        let el = graph();
        let a = triangle_count(&el, 2);
        let b = native::triangle_count(&el, 2);
        assert_eq!(a.values.iter().sum::<u64>(), b.values.iter().sum::<u64>());
        // the SpGEMM route materialises intermediates the native
        // intersection never creates
        assert!(a.counters.overhead_ops > b.counters.overhead_ops);
        assert!(a.counters.bytes_written > b.counters.bytes_written);
    }

    #[test]
    fn comb_cf_matches_native() {
        let ratings = bipartite::generate(&BipartiteConfig {
            num_users: 40,
            num_items: 8,
            num_ratings: 300,
            ..Default::default()
        });
        let a = collaborative_filtering(&ratings, 4, 0.05, 0.002, 5, 7, 1);
        let b = native::collaborative_filtering(&ratings, 4, 0.05, 0.002, 5, 7, 1);
        for (x, y) in a.values.iter().zip(b.values.iter()) {
            for (p, q) in x.iter().zip(y.iter()) {
                assert!((p - q).abs() < 1e-9);
            }
        }
        assert!(a.counters.overhead_ops > 0);
    }
}
