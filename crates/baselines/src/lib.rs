//! Comparator engines for the GraphMat evaluation.
//!
//! The paper compares GraphMat against three frameworks and hand-optimized
//! native code (§5.1). None of those C++ systems can be bundled here, so each
//! is re-implemented as a small Rust engine that preserves the *architectural
//! property the paper identifies as the cause of its performance*:
//!
//! | Module | Stands in for | Preserved property |
//! |--------|---------------|--------------------|
//! | [`native`] | the hand-optimized code of Satish et al. \[27\] | direct CSR loops, no framework abstraction — the Table 3 upper bound |
//! | [`comb`] | CombBLAS v1.3 | pure-semiring message processing with **no destination-vertex access**, per-"process" message buffer copies; triangle counting must use masked SpGEMM, collaborative filtering needs an extra gather pass |
//! | [`vertexpull`] | GraphLab v2.2 | per-vertex gather–apply–scatter over adjacency lists with per-edge dynamic dispatch and per-vertex scheduler bookkeeping — many more instructions per edge |
//! | [`worklist`] | Galois v2.2.0 | asynchronous worklist execution with atomic per-vertex updates — fewer instructions on SSSP/BFS (reads fresh state mid-round), no benefit on PageRank/CF |
//!
//! Every entry point returns a [`BaselineRun`]: the algorithm result, the
//! wall-clock time, and the abstract cost counters consumed by the Figure 6
//! benchmark.

pub mod comb;
pub mod native;
pub mod vertexpull;
pub mod worklist;

use graphmat_perf::CostCounters;
use std::time::Duration;

/// The result of running one algorithm under one baseline engine.
#[derive(Clone, Debug)]
pub struct BaselineRun<T> {
    /// Per-vertex result values (semantics depend on the algorithm).
    pub values: Vec<T>,
    /// Wall-clock time of the algorithm proper (graph loading excluded, as in
    /// the paper's methodology, §5.2.1).
    pub elapsed: Duration,
    /// Abstract operation counts for the Figure 6 cost model.
    pub counters: CostCounters,
    /// Number of iterations / rounds executed (1 for non-iterative runs).
    pub iterations: usize,
}

/// Identifier for the frameworks compared in the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Framework {
    /// This repository's GraphMat implementation.
    GraphMat,
    /// GraphLab-style gather–apply–scatter engine.
    GraphLabLike,
    /// CombBLAS-style pure-semiring matrix engine.
    CombBlasLike,
    /// Galois-style asynchronous worklist engine.
    GaloisLike,
    /// Hand-optimized native code.
    Native,
}

impl Framework {
    /// Display name used in benchmark tables (mirrors the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            Framework::GraphMat => "GraphMat",
            Framework::GraphLabLike => "GraphLab*",
            Framework::CombBlasLike => "CombBLAS*",
            Framework::GaloisLike => "Galois*",
            Framework::Native => "Native",
        }
    }

    /// The frameworks that appear in Figure 4 (everything except native).
    pub fn figure4() -> &'static [Framework] {
        &[
            Framework::GraphLabLike,
            Framework::CombBlasLike,
            Framework::GaloisLike,
            Framework::GraphMat,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_names_are_distinct() {
        let names: Vec<&str> = [
            Framework::GraphMat,
            Framework::GraphLabLike,
            Framework::CombBlasLike,
            Framework::GaloisLike,
            Framework::Native,
        ]
        .iter()
        .map(|f| f.name())
        .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn figure4_has_four_frameworks() {
        assert_eq!(Framework::figure4().len(), 4);
        assert!(Framework::figure4().contains(&Framework::GraphMat));
        assert!(!Framework::figure4().contains(&Framework::Native));
    }
}
