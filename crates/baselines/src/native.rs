//! Hand-optimized native implementations (the Table 3 upper bound).
//!
//! These are the kind of implementations the paper's native baseline \[27\]
//! uses: direct loops over CSR with no framework abstraction, no message
//! materialisation and no per-superstep bookkeeping beyond what the algorithm
//! itself needs. They double as correctness oracles for the framework-based
//! implementations in the integration tests.

use crate::BaselineRun;
use graphmat_io::bipartite::RatingsGraph;
use graphmat_io::edgelist::{EdgeList, EdgeWeight};
use graphmat_perf::CostCounters;
use graphmat_sparse::coo::Coo;
use graphmat_sparse::csr::Csr;
use graphmat_sparse::parallel::Executor;
use graphmat_sparse::Index;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

fn csr_from_edges<E: Clone>(edges: &EdgeList<E>) -> Csr<E> {
    Csr::from_coo(&edges.to_adjacency_coo())
}

fn csr_transpose_from_edges<E: Clone>(edges: &EdgeList<E>) -> Csr<E> {
    Csr::from_coo(&edges.to_transpose_coo())
}

/// Native PageRank: pull-based iteration over the transposed CSR. Edge
/// values are ignored, so any edge type works.
pub fn pagerank<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    random_surf: f64,
    iterations: usize,
    nthreads: usize,
) -> BaselineRun<f64> {
    let n = edges.num_vertices() as usize;
    let gt = csr_transpose_from_edges(edges); // row = dst, cols = srcs
    let degrees: Vec<u32> = edges.out_degrees().iter().map(|&d| d as u32).collect();
    let executor = Executor::new(nthreads.max(1));
    let mut counters = CostCounters::new();

    let start = Instant::now();
    let mut ranks = vec![1.0f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        // contribution of each source, computed once
        let contrib: Vec<f64> = ranks
            .iter()
            .zip(degrees.iter())
            .map(|(r, &d)| if d > 0 { r / d as f64 } else { 0.0 })
            .collect();
        let next_ptr = SharedSlice::new(&mut next);
        let ranks_ref = &ranks;
        // indexing by the chunk range is the point here: disjoint ranges of
        // `next` are written through the shared pointer
        #[allow(clippy::needless_range_loop)]
        executor.run_chunked(n, |_, lo, hi| {
            for v in lo..hi {
                let (srcs, _) = gt.row(v as Index);
                let mut sum = 0.0;
                for &u in srcs {
                    sum += contrib[u as usize];
                }
                // Vertices that receive no contribution keep their rank —
                // the same semantics as the message-driven engines, where
                // APPLY only runs for vertices that received a message.
                let new_rank = if sum > 0.0 {
                    random_surf + (1.0 - random_surf) * sum
                } else {
                    ranks_ref[v]
                };
                // SAFETY: chunks are disjoint vertex ranges.
                unsafe { *next_ptr.get_mut(v) = new_rank };
            }
        });
        std::mem::swap(&mut ranks, &mut next);
        counters.add_edge_ops(gt.nnz() as u64);
        counters.add_vertex_ops(n as u64);
        counters.add_bytes_read(gt.nnz() as u64 * 12);
        counters.add_bytes_written(n as u64 * 8);
    }
    BaselineRun {
        values: ranks,
        elapsed: start.elapsed(),
        counters,
        iterations,
    }
}

/// Native BFS: frontier queue over the symmetrized CSR. Edge values are
/// ignored, so any edge type works (including the unweighted `()`).
pub fn bfs<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    root: Index,
    nthreads: usize,
) -> BaselineRun<u32> {
    let sym = edges.symmetrized();
    let adj = csr_from_edges(&sym);
    let n = sym.num_vertices() as usize;
    let _ = nthreads;
    let mut counters = CostCounters::new();

    let start = Instant::now();
    let mut dist = vec![u32::MAX; n];
    let mut frontier = vec![root];
    dist[root as usize] = 0;
    let mut level = 0u32;
    let mut iterations = 0usize;
    while !frontier.is_empty() {
        level += 1;
        iterations += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            let (neighbors, _) = adj.row(u);
            counters.add_edge_ops(neighbors.len() as u64);
            for &v in neighbors {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = level;
                    next.push(v);
                }
            }
        }
        counters.add_vertex_ops(next.len() as u64);
        counters.add_bytes_read(frontier.len() as u64 * 8);
        frontier = next;
    }
    BaselineRun {
        values: dist,
        elapsed: start.elapsed(),
        counters,
        iterations,
    }
}

/// Native SSSP: Bellman-Ford with an active frontier over CSR. Accepts any
/// scalar-readable edge weight type.
pub fn sssp<E: EdgeWeight>(
    edges: &EdgeList<E>,
    source: Index,
    nthreads: usize,
) -> BaselineRun<f32> {
    let adj = csr_from_edges(edges);
    let n = edges.num_vertices() as usize;
    let _ = nthreads;
    let mut counters = CostCounters::new();

    let start = Instant::now();
    let mut dist = vec![f32::MAX; n];
    dist[source as usize] = 0.0;
    let mut frontier = vec![source];
    let mut iterations = 0usize;
    while !frontier.is_empty() {
        iterations += 1;
        let mut next = Vec::new();
        let mut touched = vec![false; n];
        for &u in &frontier {
            let (neighbors, weights) = adj.row(u);
            counters.add_edge_ops(neighbors.len() as u64);
            let du = dist[u as usize];
            for (&v, w) in neighbors.iter().zip(weights) {
                let candidate = du + w.weight();
                if candidate < dist[v as usize] {
                    dist[v as usize] = candidate;
                    if !touched[v as usize] {
                        touched[v as usize] = true;
                        next.push(v);
                    }
                }
            }
        }
        counters.add_vertex_ops(next.len() as u64);
        frontier = next;
    }
    BaselineRun {
        values: dist,
        elapsed: start.elapsed(),
        counters,
        iterations,
    }
}

/// Native triangle counting: sorted adjacency-list intersection on the DAG.
/// Edge values are ignored, so any edge type works.
pub fn triangle_count<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    nthreads: usize,
) -> BaselineRun<u64> {
    let dag = edges.to_dag();
    let adj = csr_from_edges(&dag);
    let n = dag.num_vertices() as usize;
    let executor = Executor::new(nthreads.max(1));
    let counters_edges = AtomicU64::new(0);

    let start = Instant::now();
    let per_vertex: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    executor.run_chunked(n, |_, lo, hi| {
        for u in lo..hi {
            let (nu, _) = adj.row(u as Index);
            for &v in nu {
                let (nv, _) = adj.row(v);
                // sorted intersection
                let (mut i, mut j) = (0usize, 0usize);
                let mut local = 0u64;
                while i < nu.len() && j < nv.len() {
                    match nu[i].cmp(&nv[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            local += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                counters_edges.fetch_add((nu.len() + nv.len()) as u64, Ordering::Relaxed);
                per_vertex[v as usize].fetch_add(local, Ordering::Relaxed);
            }
        }
    });
    let values: Vec<u64> = per_vertex
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    let mut counters = CostCounters::new();
    counters.add_edge_ops(counters_edges.load(Ordering::Relaxed));
    counters.add_vertex_ops(n as u64);
    counters.add_bytes_read(counters_edges.load(Ordering::Relaxed) * 4);
    BaselineRun {
        values,
        elapsed: start.elapsed(),
        counters,
        iterations: 1,
    }
}

/// Native collaborative filtering: gradient descent directly over CSR in both
/// directions (this plays the role of the paper's native SGD/GD code; GD is
/// used so results are comparable with the GraphMat program).
pub fn collaborative_filtering(
    ratings: &RatingsGraph,
    latent_dims: usize,
    lambda: f64,
    gamma: f64,
    iterations: usize,
    seed: u64,
    nthreads: usize,
) -> BaselineRun<Vec<f64>> {
    let edges = &ratings.edges;
    let n = edges.num_vertices() as usize;
    let user_to_item = csr_from_edges(edges); // rows = users
    let item_to_user = csr_transpose_from_edges(edges); // rows = items
    let _ = nthreads;
    let mut counters = CostCounters::new();

    let start = Instant::now();
    let mut features: Vec<Vec<f64>> = (0..n as u32)
        .map(|v| {
            (0..latent_dims)
                .map(|i| deterministic_init(seed, v, i, latent_dims))
                .collect()
        })
        .collect();

    for _ in 0..iterations {
        let snapshot = features.clone();
        counters.add_bytes_read((n * latent_dims * 8) as u64);
        // update every vertex from the previous iteration's snapshot (GD)
        for v in 0..n {
            let (neighbors, ratings_row) = if (v as u32) < ratings.num_users {
                user_to_item.row(v as Index)
            } else {
                item_to_user.row(v as Index)
            };
            if neighbors.is_empty() {
                continue;
            }
            let mut gradient = vec![0.0f64; latent_dims];
            for (&other, &rating) in neighbors.iter().zip(ratings_row) {
                let dot: f64 = snapshot[v]
                    .iter()
                    .zip(snapshot[other as usize].iter())
                    .map(|(a, b)| a * b)
                    .sum();
                let err = rating as f64 - dot;
                for (g, x) in gradient.iter_mut().zip(snapshot[other as usize].iter()) {
                    *g += err * x;
                }
            }
            counters.add_edge_ops(neighbors.len() as u64);
            for (p, g) in features[v].iter_mut().zip(gradient.iter()) {
                *p += gamma * (g - lambda * *p);
            }
            counters.add_vertex_ops(1);
        }
    }
    BaselineRun {
        values: features,
        elapsed: start.elapsed(),
        counters,
        iterations,
    }
}

/// Same deterministic initial feature values as the GraphMat CF program, so
/// the two implementations can be compared element-wise.
pub fn deterministic_init(seed: u64, v: u32, i: usize, k: usize) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((v as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
        .wrapping_add((i as u64).wrapping_mul(0x165667B19E3779F9));
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51AFD7ED558CCD);
    h ^= h >> 33;
    (h >> 11) as f64 / (1u64 << 53) as f64 / (k as f64).sqrt()
}

/// Raw shared mutable slice for disjoint chunked writes.
struct SharedSlice<T> {
    ptr: *mut T,
    len: usize,
    /// Write-once shadow: a handle lives for one chunked region in which
    /// every element is written at most once (see
    /// `graphmat_sparse::shard_check`).
    #[cfg(feature = "shard-check")]
    claims: graphmat_sparse::shard_check::ClaimMap,
}

// SAFETY: the pointer crosses threads only inside `run_chunked` parallel
// regions whose chunk bounds partition the index space, so every element is
// written through `get_mut` by exactly one lane under its `i < len` /
// no-concurrent-access contract; `T: Send`, and the dispatching caller
// blocks until every lane finishes, keeping the borrowed slice alive for
// the whole region.
unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    fn new(slice: &mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            #[cfg(feature = "shard-check")]
            claims: graphmat_sparse::shard_check::ClaimMap::new(
                slice.len(),
                "native baseline chunk slot",
            ),
        }
    }

    /// # Safety
    /// `i < len` and no concurrent access to the same element.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        // Claim before the aliasable &mut: overlapping chunk bounds panic
        // here instead of racing on the slice.
        #[cfg(feature = "shard-check")]
        self.claims.claim_exclusive(i);
        &mut *self.ptr.add(i)
    }
}

/// Atomic f32 minimum via compare-exchange on the bit pattern; shared by the
/// worklist engine as well.
pub(crate) fn atomic_min_f32(cell: &AtomicU32, value: f32) -> bool {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        if f32::from_bits(current) <= value {
            return false;
        }
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(actual) => current = actual,
        }
    }
}

// keep Coo import alive for doc examples that build matrices directly
#[allow(unused_imports)]
use Coo as _CooAlias;

#[cfg(test)]
mod tests {
    use super::*;
    use graphmat_io::bipartite::{self, BipartiteConfig};
    use graphmat_io::uniform::{self, UniformConfig};

    fn small_graph() -> EdgeList {
        EdgeList::from_tuples(
            5,
            vec![
                (0, 1, 1.0),
                (0, 2, 3.0),
                (0, 3, 2.0),
                (1, 2, 1.0),
                (2, 3, 2.0),
                (3, 4, 2.0),
                (4, 0, 4.0),
            ],
        )
    }

    #[test]
    fn native_sssp_matches_figure3() {
        let run = sssp(&small_graph(), 0, 2);
        assert_eq!(run.values, vec![0.0, 1.0, 2.0, 2.0, 4.0]);
        assert!(run.counters.edge_ops > 0);
    }

    #[test]
    fn native_bfs_levels() {
        let run = bfs(&small_graph(), 0, 2);
        assert_eq!(run.values, vec![0, 1, 1, 1, 1]); // symmetrized: E adjacent to A
    }

    #[test]
    fn native_pagerank_sums_to_vertex_count() {
        let el = uniform::generate(&UniformConfig::new(64, 512).with_seed(5));
        let run = pagerank(&el, 0.15, 30, 2);
        // every vertex has out-edges with high probability; mass ≈ n
        let total: f64 = run.values.iter().sum();
        assert!(total > 30.0 && total < 80.0, "total {total}");
        assert_eq!(run.iterations, 30);
    }

    #[test]
    fn native_triangle_count_on_k4() {
        let mut pairs = Vec::new();
        for i in 0..4u32 {
            for j in (i + 1)..4u32 {
                pairs.push((i, j));
            }
        }
        let el = EdgeList::from_pairs(4, pairs);
        let run = triangle_count(&el, 2);
        assert_eq!(run.values.iter().sum::<u64>(), 4); // C(4,3)
    }

    #[test]
    fn native_cf_reduces_rmse() {
        let ratings = bipartite::generate(&BipartiteConfig {
            num_users: 50,
            num_items: 10,
            num_ratings: 400,
            ..Default::default()
        });
        let before = collaborative_filtering(&ratings, 8, 0.05, 0.002, 0, 7, 1);
        let after = collaborative_filtering(&ratings, 8, 0.05, 0.002, 30, 7, 1);
        let rmse = |features: &Vec<Vec<f64>>| -> f64 {
            let mut sum = 0.0;
            for &(u, v, r) in ratings.edges.edges() {
                let p: f64 = features[u as usize]
                    .iter()
                    .zip(features[v as usize].iter())
                    .map(|(a, b)| a * b)
                    .sum();
                sum += (r as f64 - p) * (r as f64 - p);
            }
            (sum / ratings.edges.num_edges() as f64).sqrt()
        };
        assert!(rmse(&after.values) < rmse(&before.values));
    }

    #[test]
    fn atomic_min_f32_keeps_minimum() {
        let cell = AtomicU32::new(10.0f32.to_bits());
        assert!(atomic_min_f32(&cell, 5.0));
        assert!(!atomic_min_f32(&cell, 7.0));
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 5.0);
    }

    #[test]
    fn pagerank_parallel_matches_sequential() {
        let el = uniform::generate(&UniformConfig::new(128, 1024).with_seed(9));
        let a = pagerank(&el, 0.15, 10, 1);
        let b = pagerank(&el, 0.15, 10, 4);
        for (x, y) in a.values.iter().zip(b.values.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
