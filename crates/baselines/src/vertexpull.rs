//! GraphLab-style gather–apply–scatter (GAS) engine.
//!
//! GraphLab executes vertex programs directly over adjacency lists: each
//! (active) vertex *gathers* over its in-edges, *applies* the combined value,
//! and *scatters* activation to its neighbours. There is no global matrix
//! view, so none of GraphMat's structure-level optimizations apply, and the
//! per-edge work goes through a user-supplied closure held behind a trait
//! object (mirroring GraphLab's virtual `gather()` calls). The paper's
//! counter analysis (Figure 6) attributes GraphLab's gap to exactly this
//! instruction bloat — more instructions and stall cycles per edge — which is
//! the property this engine preserves. The engine also keeps GraphLab's
//! per-vertex scheduler bitmap, charged to the cost model as overhead.

use crate::BaselineRun;
use graphmat_io::bipartite::RatingsGraph;
use graphmat_io::edgelist::{EdgeList, EdgeWeight};
use graphmat_perf::CostCounters;
use graphmat_sparse::parallel::Executor;
use graphmat_sparse::Index;
use std::marker::PhantomData;
use std::sync::Mutex;
use std::time::Instant;

/// Adjacency-list representation used by the GAS engine, generic over the
/// edge value type.
pub struct AdjacencyGraph<E = f32> {
    /// For every vertex, its in-neighbours and the value of the edge.
    pub in_edges: Vec<Vec<(Index, E)>>,
    /// For every vertex, its out-neighbours and the value of the edge.
    pub out_edges: Vec<Vec<(Index, E)>>,
}

impl<E: Clone> AdjacencyGraph<E> {
    /// Build the adjacency lists from an edge list.
    pub fn from_edge_list(edges: &EdgeList<E>) -> Self {
        let n = edges.num_vertices() as usize;
        let mut in_edges: Vec<Vec<(Index, E)>> = vec![Vec::new(); n];
        let mut out_edges: Vec<Vec<(Index, E)>> = vec![Vec::new(); n];
        for (s, d, w) in edges.edges() {
            out_edges[*s as usize].push((*d, w.clone()));
            in_edges[*d as usize].push((*s, w.clone()));
        }
        AdjacencyGraph {
            in_edges,
            out_edges,
        }
    }
}

impl<E> AdjacencyGraph<E> {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.in_edges.len()
    }
}

/// A GraphLab-style vertex program: gather over in-edges, apply, scatter.
/// The callbacks are invoked through `dyn` references, as GraphLab invokes
/// user code through virtual calls.
pub trait GasProgram: Sync {
    /// Per-vertex state.
    type State: Clone + Send + Sync;
    /// The gathered/accumulated type.
    type Gather: Clone + Send + Sync;
    /// The edge value type of the graphs this program gathers over.
    type Edge: Clone + Send + Sync;

    /// Neutral element of the gather sum.
    fn gather_init(&self) -> Self::Gather;
    /// Gather contribution of in-edge `(src → v)`.
    fn gather(
        &self,
        src_state: &Self::State,
        edge: &Self::Edge,
        v_state: &Self::State,
    ) -> Self::Gather;
    /// Combine two gather values.
    fn combine(&self, acc: &mut Self::Gather, value: Self::Gather);
    /// Apply the combined gather value; return `true` if the vertex changed
    /// (its out-neighbours are then activated for the next round).
    fn apply(&self, gathered: &Self::Gather, state: &mut Self::State) -> bool;
}

/// Run a GAS program round-based until no vertex is active or the iteration
/// cap is hit. Returns the final states and cost counters.
///
/// `keep_all_active` models GraphLab's "signal everything each round" usage
/// for fixed-iteration algorithms (PageRank, gradient-descent CF): every
/// vertex keeps broadcasting regardless of whether its own state changed.
pub fn run_gas<P: GasProgram>(
    graph: &AdjacencyGraph<P::Edge>,
    program: &P,
    mut states: Vec<P::State>,
    initial_active: Vec<bool>,
    max_iterations: Option<usize>,
    keep_all_active: bool,
    nthreads: usize,
) -> (Vec<P::State>, CostCounters, usize) {
    let n = graph.num_vertices();
    let executor = Executor::new(nthreads.max(1));
    let mut active = initial_active;
    let mut counters = CostCounters::new();
    let mut iterations = 0usize;

    while active.iter().any(|&a| a) {
        if let Some(cap) = max_iterations {
            if iterations >= cap {
                break;
            }
        }
        iterations += 1;

        // Which vertices need to gather this round: those with at least one
        // active in-neighbour (GraphLab's scheduler propagates signals along
        // out-edges; scanning the bitmap is scheduler overhead).
        let mut to_run: Vec<usize> = Vec::new();
        for v in 0..n {
            counters.add_overhead(1); // scheduler bitmap scan
            let signalled = graph.in_edges[v].iter().any(|&(u, _)| active[u as usize]);
            if signalled {
                to_run.push(v);
            }
        }

        let snapshot = states.clone();
        counters.add_overhead(n as u64); // state snapshot copy (BSP-consistency)
        let results = Mutex::new(Vec::<(usize, P::State, bool)>::with_capacity(to_run.len()));
        // dyn-dispatched callbacks, as GraphLab's engine would perform them
        #[allow(clippy::type_complexity)]
        let gather_dyn: &(dyn Fn(&P::State, &P::Edge, &P::State) -> P::Gather + Sync) =
            &|s, e, d| program.gather(s, e, d);
        let combine_dyn: &(dyn Fn(&mut P::Gather, P::Gather) + Sync) =
            &|acc, v| program.combine(acc, v);

        executor.run_chunked(to_run.len(), |_, lo, hi| {
            let mut local = Vec::with_capacity(hi - lo);
            for &v in &to_run[lo..hi] {
                let mut acc = program.gather_init();
                for (u, w) in &graph.in_edges[v] {
                    if active[*u as usize] {
                        let contrib = gather_dyn(&snapshot[*u as usize], w, &snapshot[v]);
                        combine_dyn(&mut acc, contrib);
                    }
                }
                let mut state = snapshot[v].clone();
                let changed = program.apply(&acc, &mut state);
                local.push((v, state, changed));
            }
            results
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .extend(local);
        });

        let results = results
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        counters.add_edge_ops(to_run.iter().map(|&v| graph.in_edges[v].len() as u64).sum());
        counters.add_messages(results.len() as u64);
        counters.add_vertex_ops(results.len() as u64);
        counters.add_bytes_read(
            to_run
                .iter()
                .map(|&v| graph.in_edges[v].len() as u64 * 16)
                .sum(),
        );

        let mut next_active = vec![keep_all_active; n];
        for (v, state, changed) in results {
            states[v] = state;
            if changed && !keep_all_active {
                next_active[v] = true;
            }
        }
        active = next_active;
    }
    (states, counters, iterations)
}

/// PageRank under the GAS engine.
pub fn pagerank<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    random_surf: f64,
    iterations: usize,
    nthreads: usize,
) -> BaselineRun<f64> {
    struct Pr<E> {
        random_surf: f64,
        _edge: PhantomData<E>,
    }
    #[derive(Clone)]
    struct State {
        rank: f64,
        degree: u32,
    }
    impl<E: Clone + Send + Sync> GasProgram for Pr<E> {
        type State = State;
        type Gather = f64;
        type Edge = E;
        fn gather_init(&self) -> f64 {
            0.0
        }
        fn gather(&self, src: &State, _e: &E, _v: &State) -> f64 {
            if src.degree > 0 {
                src.rank / src.degree as f64
            } else {
                0.0
            }
        }
        fn combine(&self, acc: &mut f64, v: f64) {
            *acc += v;
        }
        fn apply(&self, gathered: &f64, state: &mut State) -> bool {
            // vertices whose in-neighbours are all dangling receive nothing
            // and keep their rank, matching the message-driven engines
            if *gathered > 0.0 {
                state.rank = self.random_surf + (1.0 - self.random_surf) * gathered;
            }
            true // every vertex keeps signalling (fixed-iteration PageRank)
        }
    }

    let graph = AdjacencyGraph::from_edge_list(edges);
    let degrees = edges.out_degrees();
    let states: Vec<State> = (0..graph.num_vertices())
        .map(|v| State {
            rank: 1.0,
            degree: degrees[v] as u32,
        })
        .collect();
    let start = Instant::now();
    let (states, counters, iters) = run_gas(
        &graph,
        &Pr {
            random_surf,
            _edge: PhantomData,
        },
        states,
        vec![true; graph.num_vertices()],
        Some(iterations),
        true,
        nthreads,
    );
    BaselineRun {
        values: states.iter().map(|s| s.rank).collect(),
        elapsed: start.elapsed(),
        counters,
        iterations: iters,
    }
}

/// BFS under the GAS engine. Any edge type works, including `()`.
pub fn bfs<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    root: Index,
    nthreads: usize,
) -> BaselineRun<u32> {
    struct Bfs<E>(PhantomData<E>);
    impl<E: Clone + Send + Sync> GasProgram for Bfs<E> {
        type State = u32;
        type Gather = u32;
        type Edge = E;
        fn gather_init(&self) -> u32 {
            u32::MAX
        }
        fn gather(&self, src: &u32, _e: &E, _v: &u32) -> u32 {
            src.saturating_add(1)
        }
        fn combine(&self, acc: &mut u32, v: u32) {
            *acc = (*acc).min(v);
        }
        fn apply(&self, gathered: &u32, state: &mut u32) -> bool {
            if *gathered < *state {
                *state = *gathered;
                true
            } else {
                false
            }
        }
    }

    let sym = edges.symmetrized();
    let graph = AdjacencyGraph::from_edge_list(&sym);
    let mut states = vec![u32::MAX; graph.num_vertices()];
    states[root as usize] = 0;
    let mut active = vec![false; graph.num_vertices()];
    active[root as usize] = true;
    let start = Instant::now();
    let (states, counters, iters) = run_gas(
        &graph,
        &Bfs(PhantomData),
        states,
        active,
        None,
        false,
        nthreads,
    );
    BaselineRun {
        values: states,
        elapsed: start.elapsed(),
        counters,
        iterations: iters,
    }
}

/// SSSP under the GAS engine. Accepts any scalar-readable edge weight type.
pub fn sssp<E: EdgeWeight>(
    edges: &EdgeList<E>,
    source: Index,
    nthreads: usize,
) -> BaselineRun<f32> {
    struct Sssp<E>(PhantomData<E>);
    impl<E: EdgeWeight> GasProgram for Sssp<E> {
        type State = f32;
        type Gather = f32;
        type Edge = E;
        fn gather_init(&self) -> f32 {
            f32::MAX
        }
        fn gather(&self, src: &f32, e: &E, _v: &f32) -> f32 {
            if *src == f32::MAX {
                f32::MAX
            } else {
                src + e.weight()
            }
        }
        fn combine(&self, acc: &mut f32, v: f32) {
            *acc = acc.min(v);
        }
        fn apply(&self, gathered: &f32, state: &mut f32) -> bool {
            if *gathered < *state {
                *state = *gathered;
                true
            } else {
                false
            }
        }
    }

    let graph = AdjacencyGraph::from_edge_list(edges);
    let mut states = vec![f32::MAX; graph.num_vertices()];
    states[source as usize] = 0.0;
    let mut active = vec![false; graph.num_vertices()];
    active[source as usize] = true;
    let start = Instant::now();
    let (states, counters, iters) = run_gas(
        &graph,
        &Sssp(PhantomData),
        states,
        active,
        None,
        false,
        nthreads,
    );
    BaselineRun {
        values: states,
        elapsed: start.elapsed(),
        counters,
        iterations: iters,
    }
}

/// Triangle counting under the GAS engine: each vertex gathers its
/// in-neighbour ids (round 1), then gathers intersection counts (round 2) —
/// the same two-phase structure as GraphMat's, but paying the adjacency-list
/// engine's per-edge overheads.
pub fn triangle_count<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    nthreads: usize,
) -> BaselineRun<u64> {
    let dag = edges.to_dag();
    let graph = AdjacencyGraph::from_edge_list(&dag);
    let n = graph.num_vertices();
    let executor = Executor::new(nthreads.max(1));
    let mut counters = CostCounters::new();

    let start = Instant::now();
    // Round 1: collect sorted in-neighbour lists (materialised per vertex).
    let mut lists: Vec<Vec<Index>> = vec![Vec::new(); n];
    for (v, slot) in lists.iter_mut().enumerate() {
        let mut list: Vec<Index> = graph.in_edges[v].iter().map(|(u, _)| *u).collect();
        list.sort_unstable();
        list.dedup();
        counters.add_edge_ops(graph.in_edges[v].len() as u64);
        counters.add_overhead(list.len() as u64); // per-vertex hash/list build
        *slot = list;
    }
    // Round 2: for every edge (u -> v), intersect list(u) with list(v).
    let per_vertex: Vec<std::sync::atomic::AtomicU64> = (0..n)
        .map(|_| std::sync::atomic::AtomicU64::new(0))
        .collect();
    let edge_ops = std::sync::atomic::AtomicU64::new(0);
    executor.run_chunked(n, |_, lo, hi| {
        for u in lo..hi {
            for (v, _) in &graph.out_edges[u] {
                let v = *v;
                let (a, b) = (&lists[u], &lists[v as usize]);
                let (mut i, mut j) = (0usize, 0usize);
                let mut count = 0u64;
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            count += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                edge_ops.fetch_add(
                    (a.len() + b.len()) as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                per_vertex[v as usize].fetch_add(count, std::sync::atomic::Ordering::Relaxed);
            }
        }
    });
    counters.add_edge_ops(edge_ops.load(std::sync::atomic::Ordering::Relaxed));
    counters.add_vertex_ops(n as u64);
    // GraphLab's hash-based intersection keeps this algorithm competitive
    // (the paper: only ~1.5× slower than GraphMat), so no extra penalty here.
    let values: Vec<u64> = per_vertex
        .iter()
        .map(|a| a.load(std::sync::atomic::Ordering::Relaxed))
        .collect();
    BaselineRun {
        values,
        elapsed: start.elapsed(),
        counters,
        iterations: 2,
    }
}

/// Collaborative filtering under the GAS engine (gathers over both edge
/// directions by running the gather on the symmetrized bipartite graph).
pub fn collaborative_filtering(
    ratings: &RatingsGraph,
    latent_dims: usize,
    lambda: f64,
    gamma: f64,
    iterations: usize,
    seed: u64,
    nthreads: usize,
) -> BaselineRun<Vec<f64>> {
    struct Cf {
        lambda: f64,
        gamma: f64,
    }
    #[derive(Clone)]
    struct State {
        features: Vec<f64>,
    }
    impl GasProgram for Cf {
        type State = State;
        type Gather = Vec<f64>;
        type Edge = f32;
        fn gather_init(&self) -> Vec<f64> {
            Vec::new()
        }
        fn gather(&self, src: &State, rating: &f32, v: &State) -> Vec<f64> {
            let dot: f64 = src
                .features
                .iter()
                .zip(v.features.iter())
                .map(|(a, b)| a * b)
                .sum();
            let err = *rating as f64 - dot;
            src.features.iter().map(|x| err * x).collect()
        }
        fn combine(&self, acc: &mut Vec<f64>, value: Vec<f64>) {
            if acc.is_empty() {
                *acc = value;
            } else {
                for (a, v) in acc.iter_mut().zip(value) {
                    *a += v;
                }
            }
        }
        fn apply(&self, gathered: &Vec<f64>, state: &mut State) -> bool {
            if gathered.is_empty() {
                return true;
            }
            for (p, g) in state.features.iter_mut().zip(gathered.iter()) {
                *p += self.gamma * (g - self.lambda * *p);
            }
            true
        }
    }

    // gathering over in-edges of the symmetrized graph = messages from both
    // users and items, as the GraphMat Both-direction program does
    let sym = ratings.edges.symmetrized();
    let graph = AdjacencyGraph::from_edge_list(&sym);
    let states: Vec<State> = (0..graph.num_vertices() as u32)
        .map(|v| State {
            features: (0..latent_dims)
                .map(|i| crate::native::deterministic_init(seed, v, i, latent_dims))
                .collect(),
        })
        .collect();
    let start = Instant::now();
    let (states, counters, iters) = run_gas(
        &graph,
        &Cf { lambda, gamma },
        states,
        vec![true; graph.num_vertices()],
        Some(iterations),
        true,
        nthreads,
    );
    BaselineRun {
        values: states.into_iter().map(|s| s.features).collect(),
        elapsed: start.elapsed(),
        counters,
        iterations: iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native;
    use graphmat_io::bipartite::{self, BipartiteConfig};
    use graphmat_io::uniform::{self, UniformConfig};

    fn graph() -> EdgeList {
        uniform::generate(&UniformConfig::new(64, 512).with_weights(1, 9).with_seed(8))
    }

    #[test]
    fn gas_pagerank_matches_native() {
        let el = graph();
        let a = pagerank(&el, 0.15, 10, 2);
        let b = native::pagerank(&el, 0.15, 10, 2);
        for (v, (x, y)) in a.values.iter().zip(b.values.iter()).enumerate() {
            // GAS applies only to vertices with in-edges; native updates all.
            if el.in_degrees()[v] == 0 {
                continue;
            }
            assert!((x - y).abs() < 1e-9, "vertex {v}: {x} vs {y}");
        }
        assert!(a.counters.overhead_ops > 0);
    }

    #[test]
    fn gas_bfs_matches_native() {
        let el = graph();
        assert_eq!(bfs(&el, 0, 2).values, native::bfs(&el, 0, 2).values);
    }

    #[test]
    fn gas_sssp_matches_native() {
        let el = graph();
        let a = sssp(&el, 2, 2);
        let b = native::sssp(&el, 2, 2);
        for (x, y) in a.values.iter().zip(b.values.iter()) {
            if *x == f32::MAX || *y == f32::MAX {
                assert_eq!(x, y);
            } else {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gas_triangles_match_native() {
        let el = graph();
        assert_eq!(
            triangle_count(&el, 2).values.iter().sum::<u64>(),
            native::triangle_count(&el, 2).values.iter().sum::<u64>()
        );
    }

    #[test]
    fn gas_cf_matches_native() {
        let ratings = bipartite::generate(&BipartiteConfig {
            num_users: 40,
            num_items: 8,
            num_ratings: 300,
            ..Default::default()
        });
        let a = collaborative_filtering(&ratings, 4, 0.05, 0.002, 5, 7, 2);
        let b = native::collaborative_filtering(&ratings, 4, 0.05, 0.002, 5, 7, 1);
        for (x, y) in a.values.iter().zip(b.values.iter()) {
            for (p, q) in x.iter().zip(y.iter()) {
                assert!((p - q).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gas_engine_reports_more_overhead_than_comb() {
        // GraphLab-like executes the most bookkeeping per edge of all engines
        let el = graph();
        let gas = pagerank(&el, 0.15, 5, 2);
        let comb = crate::comb::pagerank(&el, 0.15, 5, 2);
        assert!(gas.counters.total_ops() > 0 && comb.counters.total_ops() > 0);
    }
}
