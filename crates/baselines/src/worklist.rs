//! Galois-style asynchronous worklist engine.
//!
//! Galois executes graph algorithms as a dynamically scheduled bag of
//! per-vertex tasks with speculative/atomic updates: a task relaxing vertex
//! `v` sees the *freshest* values of its neighbours rather than the values
//! from the previous bulk-synchronous round. The paper reports that this pays
//! off exactly where asynchrony removes rounds — SSSP (1.35× over GraphMat)
//! and ties on BFS — while PageRank/CF/TC gain nothing (§5.3). This engine
//! reproduces that profile: SSSP and BFS use an asynchronous chunked worklist
//! with atomic min updates, while PageRank, CF and triangle counting are
//! round-based like everyone else but pay a per-task scheduling overhead.

use crate::native::{self, atomic_min_f32};
use crate::BaselineRun;
use graphmat_io::bipartite::RatingsGraph;
use graphmat_io::edgelist::{EdgeList, EdgeWeight};
use graphmat_perf::CostCounters;
use graphmat_sparse::csr::Csr;
use graphmat_sparse::parallel::Executor;
use graphmat_sparse::Index;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Work chunk size: Galois schedules work in chunks to amortise queue
/// overheads; 64 mirrors its default chunked FIFO.
const CHUNK: usize = 64;

/// Asynchronous SSSP: chunked Bellman-Ford worklist with atomic distance
/// updates (reads fresh values written earlier in the same round). Accepts
/// any scalar-readable edge weight type.
pub fn sssp<E: EdgeWeight>(
    edges: &EdgeList<E>,
    source: Index,
    nthreads: usize,
) -> BaselineRun<f32> {
    let adj = Csr::from_coo(&edges.to_adjacency_coo());
    let n = edges.num_vertices() as usize;
    let executor = Executor::new(nthreads.max(1));
    let edge_ops = AtomicU64::new(0);
    let task_ops = AtomicU64::new(0);

    let start = Instant::now();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(f32::MAX.to_bits())).collect();
    dist[source as usize].store(0.0f32.to_bits(), Ordering::Relaxed);

    let mut worklist: Vec<Index> = vec![source];
    let mut rounds = 0usize;
    while !worklist.is_empty() {
        rounds += 1;
        let chunks: Vec<&[Index]> = worklist.chunks(CHUNK).collect();
        let next = Mutex::new(Vec::<Index>::new());
        executor.run_dynamic(chunks.len(), |c| {
            let mut local_next = Vec::new();
            for &u in chunks[c] {
                task_ops.fetch_add(1, Ordering::Relaxed);
                // asynchronous read: the freshest distance of u
                let du = f32::from_bits(dist[u as usize].load(Ordering::Relaxed));
                let (neighbors, weights) = adj.row(u);
                edge_ops.fetch_add(neighbors.len() as u64, Ordering::Relaxed);
                for (&v, w) in neighbors.iter().zip(weights) {
                    let candidate = du + w.weight();
                    if atomic_min_f32(&dist[v as usize], candidate) {
                        local_next.push(v);
                    }
                }
            }
            next.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .extend(local_next);
        });
        let mut next = next
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        next.sort_unstable();
        next.dedup();
        worklist = next;
    }

    let values: Vec<f32> = dist
        .iter()
        .map(|d| f32::from_bits(d.load(Ordering::Relaxed)))
        .collect();
    let mut counters = CostCounters::new();
    counters.add_edge_ops(edge_ops.load(Ordering::Relaxed));
    counters.add_vertex_ops(task_ops.load(Ordering::Relaxed));
    counters.add_overhead(task_ops.load(Ordering::Relaxed)); // worklist pushes/pops
    counters.add_bytes_read(edge_ops.load(Ordering::Relaxed) * 12);
    BaselineRun {
        values,
        elapsed: start.elapsed(),
        counters,
        iterations: rounds,
    }
}

/// Asynchronous BFS over the symmetrized graph with atomic level updates.
/// Any edge type works, including the unweighted `()`.
pub fn bfs<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    root: Index,
    nthreads: usize,
) -> BaselineRun<u32> {
    let sym = edges.symmetrized();
    let adj = Csr::from_coo(&sym.to_adjacency_coo());
    let n = sym.num_vertices() as usize;
    let executor = Executor::new(nthreads.max(1));
    let edge_ops = AtomicU64::new(0);
    let task_ops = AtomicU64::new(0);

    let start = Instant::now();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    dist[root as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![root];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let chunks: Vec<&[Index]> = frontier.chunks(CHUNK).collect();
        let next = Mutex::new(Vec::<Index>::new());
        executor.run_dynamic(chunks.len(), |c| {
            let mut local = Vec::new();
            for &u in chunks[c] {
                task_ops.fetch_add(1, Ordering::Relaxed);
                let (neighbors, _) = adj.row(u);
                edge_ops.fetch_add(neighbors.len() as u64, Ordering::Relaxed);
                for &v in neighbors {
                    if dist[v as usize]
                        .compare_exchange(u32::MAX, level, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        local.push(v);
                    }
                }
            }
            next.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .extend(local);
        });
        frontier = next
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }

    let values: Vec<u32> = dist.iter().map(|d| d.load(Ordering::Relaxed)).collect();
    let mut counters = CostCounters::new();
    counters.add_edge_ops(edge_ops.load(Ordering::Relaxed));
    counters.add_vertex_ops(task_ops.load(Ordering::Relaxed));
    counters.add_overhead(task_ops.load(Ordering::Relaxed));
    counters.add_bytes_read(edge_ops.load(Ordering::Relaxed) * 8);
    BaselineRun {
        values,
        elapsed: start.elapsed(),
        counters,
        iterations: level as usize,
    }
}

/// Round-based PageRank with per-task scheduling overhead (asynchrony does
/// not help PageRank, so Galois runs it much like native code plus the
/// worklist machinery).
pub fn pagerank<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    random_surf: f64,
    iterations: usize,
    nthreads: usize,
) -> BaselineRun<f64> {
    let mut run = native::pagerank(edges, random_surf, iterations, nthreads);
    // per-vertex task scheduling overhead on every iteration
    let tasks = edges.num_vertices() as u64 * iterations as u64;
    run.counters.add_overhead(tasks);
    run
}

/// Triangle counting (Galois is slightly ahead of GraphMat here in the paper
/// thanks to better IPC; structurally it is the native intersection count
/// plus task overhead).
pub fn triangle_count<E: Clone + Send + Sync>(
    edges: &EdgeList<E>,
    nthreads: usize,
) -> BaselineRun<u64> {
    let mut run = native::triangle_count(edges, nthreads);
    run.counters.add_overhead(edges.num_vertices() as u64);
    run
}

/// Collaborative filtering (round-based GD plus task overhead).
pub fn collaborative_filtering(
    ratings: &RatingsGraph,
    latent_dims: usize,
    lambda: f64,
    gamma: f64,
    iterations: usize,
    seed: u64,
    nthreads: usize,
) -> BaselineRun<Vec<f64>> {
    let mut run = native::collaborative_filtering(
        ratings,
        latent_dims,
        lambda,
        gamma,
        iterations,
        seed,
        nthreads,
    );
    run.counters
        .add_overhead(ratings.edges.num_vertices() as u64 * iterations as u64);
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmat_io::grid::{self, GridConfig};
    use graphmat_io::uniform::{self, UniformConfig};

    fn graph() -> EdgeList {
        uniform::generate(
            &UniformConfig::new(128, 1024)
                .with_weights(1, 9)
                .with_seed(6),
        )
    }

    #[test]
    fn worklist_sssp_matches_native() {
        let el = graph();
        let a = sssp(&el, 0, 4);
        let b = native::sssp(&el, 0, 1);
        for (x, y) in a.values.iter().zip(b.values.iter()) {
            if *x == f32::MAX || *y == f32::MAX {
                assert_eq!(x, y);
            } else {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn worklist_bfs_matches_native() {
        let el = graph();
        assert_eq!(bfs(&el, 5, 4).values, native::bfs(&el, 5, 1).values);
    }

    #[test]
    fn worklist_sssp_on_grid_uses_fewer_rounds_than_diameter() {
        // asynchrony lets distances propagate further than one hop per round
        let el = grid::generate(&GridConfig {
            removal_fraction: 0.0,
            ..GridConfig::square(24)
        });
        let run = sssp(&el, 0, 4);
        let native_run = native::sssp(&el, 0, 1);
        assert!(run.iterations <= native_run.iterations);
        for (x, y) in run.values.iter().zip(native_run.values.iter()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn worklist_pagerank_equals_native_values_with_extra_overhead() {
        let el = graph();
        let a = pagerank(&el, 0.15, 5, 2);
        let b = native::pagerank(&el, 0.15, 5, 2);
        assert_eq!(a.values, b.values);
        assert!(a.counters.overhead_ops > b.counters.overhead_ops);
    }

    #[test]
    fn worklist_triangles_match_native() {
        let el = graph();
        assert_eq!(
            triangle_count(&el, 2).values.iter().sum::<u64>(),
            native::triangle_count(&el, 2).values.iter().sum::<u64>()
        );
    }
}
