//! Figure 4d: Collaborative Filtering time per iteration across frameworks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmat_baselines::Framework;
use graphmat_bench::harness::run_cf;
use graphmat_io::datasets::{load_ratings, DatasetId, DatasetScale};

fn bench(c: &mut Criterion) {
    let ratings = load_ratings(DatasetId::NetflixLike, DatasetScale::Tiny);
    let mut group = c.benchmark_group("fig4d_cf");
    group.sample_size(10);
    for &fw in Framework::figure4() {
        group.bench_with_input(
            BenchmarkId::new(fw.name(), "netflix-like"),
            &fw,
            |b, &fw| b.iter(|| run_cf(fw, "netflix-like", &ratings, 0)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
