//! Figure 4a: PageRank time per iteration across frameworks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmat_baselines::Framework;
use graphmat_bench::harness::{run_graph_algorithm, Algorithm};
use graphmat_io::datasets::{load, DatasetId, DatasetScale};

fn bench(c: &mut Criterion) {
    let edges = load(DatasetId::FacebookLike, DatasetScale::Tiny);
    let mut group = c.benchmark_group("fig4a_pagerank");
    group.sample_size(10);
    for &fw in Framework::figure4() {
        group.bench_with_input(
            BenchmarkId::new(fw.name(), "facebook-like"),
            &fw,
            |b, &fw| {
                b.iter(|| run_graph_algorithm(fw, Algorithm::PageRank, "facebook-like", &edges, 0))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
