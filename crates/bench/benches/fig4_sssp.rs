//! Figure 4e: SSSP total time across frameworks (including the road-network
//! case where per-iteration overhead dominates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmat_baselines::Framework;
use graphmat_bench::harness::{run_graph_algorithm, Algorithm};
use graphmat_io::datasets::{load, DatasetId, DatasetScale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4e_sssp");
    group.sample_size(10);
    for (label, id) in [
        ("flickr-like", DatasetId::FlickrLike),
        ("usa-road-like", DatasetId::UsaRoadLike),
    ] {
        let edges = load(id, DatasetScale::Tiny);
        for &fw in Framework::figure4() {
            group.bench_with_input(BenchmarkId::new(fw.name(), label), &fw, |b, &fw| {
                b.iter(|| run_graph_algorithm(fw, Algorithm::Sssp, label, &edges, 0))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
