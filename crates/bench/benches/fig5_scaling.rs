//! Figure 5: multicore scaling of GraphMat vs the other frameworks
//! (PageRank on the facebook-like graph, SSSP on the flickr-like graph).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmat_baselines::Framework;
use graphmat_bench::harness::{run_graph_algorithm, Algorithm};
use graphmat_io::datasets::{load, DatasetId, DatasetScale};
use graphmat_sparse::parallel::available_threads;

fn bench(c: &mut Criterion) {
    let edges = load(DatasetId::FacebookLike, DatasetScale::Tiny);
    let mut group = c.benchmark_group("fig5_scaling_pagerank");
    group.sample_size(10);
    let max = available_threads();
    let mut threads = vec![1usize];
    let mut t = 2;
    while t <= max {
        threads.push(t);
        t *= 2;
    }
    for &fw in &[Framework::GraphMat, Framework::GraphLabLike] {
        for &t in &threads {
            group.bench_with_input(
                BenchmarkId::new(fw.name(), format!("{t}threads")),
                &(fw, t),
                |b, &(fw, t)| {
                    b.iter(|| {
                        run_graph_algorithm(fw, Algorithm::PageRank, "facebook-like", &edges, t)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
