//! Figure 7: cumulative effect of the backend optimizations (bitvector,
//! inlining, parallelism, load balancing) on PageRank and SSSP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmat_algorithms::pagerank::{pagerank, PageRankConfig};
use graphmat_core::{DispatchMode, GraphBuildOptions, RunOptions, VectorKind};
use graphmat_io::datasets::{load, DatasetId, DatasetScale};
use graphmat_sparse::parallel::available_threads;

fn bench(c: &mut Criterion) {
    let edges = load(DatasetId::FacebookLike, DatasetScale::Tiny);
    let max = available_threads();
    let configs: Vec<(&str, usize, DispatchMode, VectorKind, usize, bool)> = vec![
        (
            "naive",
            1,
            DispatchMode::Dynamic,
            VectorKind::Sorted,
            1,
            false,
        ),
        (
            "bitvector",
            1,
            DispatchMode::Dynamic,
            VectorKind::Bitvector,
            1,
            false,
        ),
        (
            "ipo",
            1,
            DispatchMode::Static,
            VectorKind::Bitvector,
            1,
            false,
        ),
        (
            "parallel",
            max,
            DispatchMode::Static,
            VectorKind::Bitvector,
            1,
            false,
        ),
        (
            "load_balance",
            max,
            DispatchMode::Static,
            VectorKind::Bitvector,
            8,
            true,
        ),
    ];
    let mut group = c.benchmark_group("fig7_ablation_pagerank");
    group.sample_size(10);
    for (label, threads, dispatch, vector, ppt, balanced) in configs {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let cfg = PageRankConfig {
                    iterations: 3,
                    build: GraphBuildOptions::default()
                        .with_partitions(ppt * threads)
                        .with_balancing(balanced)
                        .with_in_edges(false),
                    ..Default::default()
                };
                let opts = RunOptions::default()
                    .with_threads(threads)
                    .with_dispatch(dispatch)
                    .with_vector(vector);
                pagerank(&edges, &cfg, &opts)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
