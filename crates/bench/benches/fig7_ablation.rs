//! Figure 7: cumulative effect of the backend optimizations (bitvector,
//! inlining, parallelism, load balancing) on PageRank — extended with the
//! direction-optimization rows: push-only vs pull-only vs auto, so the
//! ablation covers the dense-pull backend and the per-superstep selector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmat_algorithms::pagerank::{pagerank, PageRankConfig};
use graphmat_bench::harness::{figure7_configs, figure7_needs_pull};
use graphmat_core::{GraphBuildOptions, RunOptions};
use graphmat_io::datasets::{load, DatasetId, DatasetScale};
use graphmat_sparse::parallel::available_threads;

fn bench(c: &mut Criterion) {
    let edges = load(DatasetId::FacebookLike, DatasetScale::Tiny);
    let max = available_threads();
    let mut group = c.benchmark_group("fig7_ablation_pagerank");
    group.sample_size(10);
    for (label, threads, dispatch, vector, ppt, balanced) in figure7_configs(max) {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let cfg = PageRankConfig {
                    iterations: 3,
                    build: GraphBuildOptions::default()
                        .with_partitions(ppt * threads)
                        .with_balancing(balanced)
                        .with_in_edges(false)
                        .with_pull_mirrors(figure7_needs_pull(vector)),
                    ..Default::default()
                };
                let opts = RunOptions::default()
                    .with_threads(threads)
                    .with_dispatch(dispatch)
                    .with_vector(vector);
                pagerank(&edges, &cfg, &opts)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
