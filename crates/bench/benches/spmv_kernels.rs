//! Microbenchmarks of the sparse backend itself: generalized SpMV throughput
//! for the bitvector vs sorted sparse-vector representations, for different
//! partition counts, and — the generic-edge payoff — for weighted (`f32`)
//! versus unweighted (`()`) matrices of the same topology, and for the
//! sparse-push versus dense-pull kernels at different frontier densities
//! (the direction-optimization tradeoff). These support the §4.5
//! optimization discussion rather than a specific figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphmat_io::rmat::{self, RmatConfig};
use graphmat_sparse::parallel::{available_threads, Executor};
use graphmat_sparse::partition::PartitionedDcsc;
use graphmat_sparse::pull::CsrMirror;
use graphmat_sparse::spmv::{gspmv, gspmv_csr_pull_into, gspmv_into};
use graphmat_sparse::spvec::{DenseVector, SortedSparseVector, SparseVector};
use graphmat_sparse::Index;

fn bench(c: &mut Criterion) {
    let el = rmat::generate(&RmatConfig::graph500(12).with_seed(5));
    let coo = el.to_transpose_coo();
    let n = el.num_vertices() as usize;
    let threads = available_threads();

    let mut group = c.benchmark_group("spmv_kernels");
    group.sample_size(10);

    // dense frontier, bitvector vs sorted representation
    let matrix = PartitionedDcsc::from_coo_balanced(&coo, threads * 8);
    let executor = Executor::new(threads);
    let mut bitvec_frontier: SparseVector<f32> = SparseVector::new(n);
    let mut sorted_frontier: SortedSparseVector<f32> = SortedSparseVector::new(n);
    for v in (0..n as u32).step_by(2) {
        bitvec_frontier.set(v, 1.0);
        sorted_frontier.set(v, 1.0);
    }
    group.bench_function("bitvector_frontier", |b| {
        b.iter(|| {
            gspmv(
                &matrix,
                &bitvec_frontier,
                &|m: &f32, e: &f32, _k: Index| m + e,
                &|acc: &mut f32, v: f32| *acc = acc.min(v),
                &executor,
            )
        })
    });
    // Steady-state engine configuration: output vector reused across calls
    // (what the superstep workspace does) — the allocation-free hot path.
    let mut reused_output: SparseVector<f32> = SparseVector::new(n);
    group.bench_function("bitvector_frontier_reused_output", |b| {
        b.iter(|| {
            gspmv_into(
                &matrix,
                &bitvec_frontier,
                &|m: &f32, e: &f32, _k: Index| m + e,
                &|acc: &mut f32, v: f32| *acc = acc.min(v),
                &executor,
                &mut reused_output,
            );
            reused_output.nnz()
        })
    });
    group.bench_function("sorted_frontier", |b| {
        b.iter(|| {
            gspmv(
                &matrix,
                &sorted_frontier,
                &|m: &f32, e: &f32, _k: Index| m + e,
                &|acc: &mut f32, v: f32| *acc = acc.min(v),
                &executor,
            )
        })
    });

    // Weighted vs unweighted SpMV over the SAME topology: the `()`-edge
    // matrix stores no value array (zero bytes/edge vs 4 bytes/edge), so a
    // bandwidth-bound traversal — BFS-style level expansion here — has
    // strictly less memory traffic to move.
    let unweighted_matrix =
        PartitionedDcsc::from_coo_balanced(&el.topology().to_transpose_coo(), threads * 8);
    println!(
        "matrix bytes: weighted (f32 edges) = {}, unweighted (() edges) = {} ({} bytes/edge saved)",
        matrix.bytes(),
        unweighted_matrix.bytes(),
        (matrix.bytes() - unweighted_matrix.bytes()) / matrix.nnz().max(1)
    );
    let mut level_frontier: SparseVector<u32> = SparseVector::new(n);
    for v in (0..n as u32).step_by(2) {
        level_frontier.set(v, 1);
    }
    group.bench_function("weighted_edges_f32", |b| {
        b.iter(|| {
            gspmv(
                &matrix,
                &level_frontier,
                &|level: &u32, _e: &f32, _k: Index| level + 1,
                &|acc: &mut u32, v: u32| *acc = (*acc).min(v),
                &executor,
            )
        })
    });
    group.bench_function("unweighted_edges_unit", |b| {
        b.iter(|| {
            gspmv(
                &unweighted_matrix,
                &level_frontier,
                &|level: &u32, _e: &(), _k: Index| level + 1,
                &|acc: &mut u32, v: u32| *acc = (*acc).min(v),
                &executor,
            )
        })
    });

    // Push vs pull at different frontier densities: the pull kernel reads
    // every stored edge, so it should win only on dense frontiers — exactly
    // the regime the Auto selector sends it.
    let mirror = CsrMirror::from_partitioned(&matrix);
    for (label, stride) in [("dense_1_of_2", 2usize), ("sparse_1_of_64", 64)] {
        let mut push_x: SparseVector<f32> = SparseVector::new(n);
        let mut pull_x: DenseVector<f32> = DenseVector::new(n);
        for v in (0..n as u32).step_by(stride) {
            push_x.set(v, 1.0);
            pull_x.set(v, 1.0);
        }
        let mut y: SparseVector<f32> = SparseVector::new(n);
        group.bench_with_input(BenchmarkId::new("push", label), &push_x, |b, x| {
            b.iter(|| {
                gspmv_into(
                    &matrix,
                    x,
                    &|m: &f32, e: &f32, _k: Index| m + e,
                    &|acc: &mut f32, v: f32| *acc = acc.min(v),
                    &executor,
                    &mut y,
                );
                y.nnz()
            })
        });
        group.bench_with_input(BenchmarkId::new("pull", label), &pull_x, |b, x| {
            b.iter(|| {
                gspmv_csr_pull_into(
                    &mirror,
                    x,
                    &|m: &f32, e: &f32, _k: Index| m + e,
                    &|acc: &mut f32, v: f32| *acc = acc.min(v),
                    &executor,
                    &mut y,
                );
                y.nnz()
            })
        });
    }

    // partition-count sweep (load balancing)
    for parts in [1usize, threads, threads * 8] {
        let pd = PartitionedDcsc::from_coo_balanced(&coo, parts);
        group.bench_with_input(BenchmarkId::new("partitions", parts), &pd, |b, pd| {
            b.iter(|| {
                gspmv(
                    pd,
                    &bitvec_frontier,
                    &|m: &f32, e: &f32, _k: Index| m + e,
                    &|acc: &mut f32, v: f32| *acc = acc.min(v),
                    &executor,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
