//! Regenerate every table and figure of the GraphMat paper as text output.
//!
//! ```text
//! cargo run -p graphmat-bench --release --bin figures -- --all
//! cargo run -p graphmat-bench --release --bin figures -- --fig4a --scale small
//! ```
//!
//! Flags: `--table1 --fig4a --fig4b --fig4c --fig4d --fig4e --table2 --table3
//! --fig5 --fig6 --fig7 --all`, `--scale tiny|small|medium`, `--threads N`,
//! `--json PATH` (dump every Figure 4/Table 2 measurement as JSON, with
//! per-superstep `backend` + `frontier_density` fields so push/pull
//! direction flips are visible in the perf trajectory).

use graphmat_baselines::Framework;
use graphmat_bench::harness::{self, Algorithm, Measurement};
use graphmat_io::datasets::{self, DatasetId, DatasetScale};
use graphmat_sparse::parallel::available_threads;

struct Options {
    scale: DatasetScale,
    threads: usize,
    sections: Vec<String>,
    json_path: Option<String>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = DatasetScale::Small;
    let mut threads = available_threads();
    let mut sections = Vec::new();
    let mut json_path = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => json_path = Some(path.clone()),
                    None => eprintln!("--json needs a file path, ignoring"),
                }
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(|s| s.as_str()) {
                    Some("tiny") => DatasetScale::Tiny,
                    Some("small") => DatasetScale::Small,
                    Some("medium") => DatasetScale::Medium,
                    Some("paper") => DatasetScale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}, using small");
                        DatasetScale::Small
                    }
                };
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(available_threads());
            }
            "--all" => sections.push("all".to_string()),
            flag if flag.starts_with("--") => sections.push(flag[2..].to_string()),
            other => eprintln!("ignoring argument {other}"),
        }
        i += 1;
    }
    if sections.is_empty() {
        sections.push("all".to_string());
    }
    Options {
        scale,
        threads,
        sections,
        json_path,
    }
}

fn wants(opts: &Options, name: &str) -> bool {
    opts.sections.iter().any(|s| s == name || s == "all")
}

fn main() {
    let opts = parse_args();
    println!(
        "GraphMat-RS figure harness  (scale = {:?}, threads = {})",
        opts.scale, opts.threads
    );
    println!("=================================================================\n");

    if wants(&opts, "table1") {
        table1(&opts);
    }
    let mut all_measurements: Vec<Measurement> = Vec::new();
    let fig4 = [
        (
            "fig4a",
            Algorithm::PageRank,
            "Figure 4a: PageRank (time per iteration, seconds)",
        ),
        ("fig4b", Algorithm::Bfs, "Figure 4b: BFS (total seconds)"),
        (
            "fig4c",
            Algorithm::TriangleCount,
            "Figure 4c: Triangle Counting (total seconds)",
        ),
        (
            "fig4d",
            Algorithm::CollaborativeFiltering,
            "Figure 4d: Collaborative Filtering (time per iteration, seconds)",
        ),
        ("fig4e", Algorithm::Sssp, "Figure 4e: SSSP (total seconds)"),
    ];
    for (flag, alg, title) in fig4 {
        if wants(&opts, flag)
            || wants(&opts, "table2")
            || wants(&opts, "fig6")
            || opts.json_path.is_some()
        {
            let measurements = harness::figure4(alg, opts.scale, opts.threads);
            if wants(&opts, flag) {
                print_figure4(title, &measurements);
            }
            all_measurements.extend(measurements);
        }
    }
    if wants(&opts, "table2") {
        table2(&all_measurements);
    }
    if wants(&opts, "table3") {
        table3(&opts);
    }
    if wants(&opts, "fig5") {
        figure5(&opts);
    }
    if wants(&opts, "fig6") {
        figure6(&all_measurements);
    }
    if wants(&opts, "fig7") {
        figure7(&opts);
    }
    if let Some(path) = &opts.json_path {
        // Alongside the paper-faithful push measurements, record the
        // direction-optimized engine (the Session default) on the
        // direction-sensitive workloads — its superstep trajectories are
        // where push→pull backend flips show up.
        for alg in [Algorithm::PageRank, Algorithm::Bfs, Algorithm::Sssp] {
            for &id in &harness::figure4_datasets(alg) {
                let edges = datasets::load(id, opts.scale);
                all_measurements.push(harness::run_graphmat_auto(
                    alg,
                    id.name(),
                    &edges,
                    opts.threads,
                ));
            }
        }
        let json = harness::measurements_to_json(&all_measurements);
        match std::fs::write(path, &json) {
            Ok(()) => println!(
                "\nWrote {} measurements ({} bytes) to {path} — each GraphMat entry carries \
                 per-superstep backend (push/pull) and frontier_density.",
                all_measurements.len(),
                json.len()
            ),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

fn table1(opts: &Options) {
    println!(
        "Table 1: datasets (synthetic stand-ins at {:?} scale)\n",
        opts.scale
    );
    let headers = vec![
        "dataset".to_string(),
        "stands in for".to_string(),
        "#vertices".to_string(),
        "#edges".to_string(),
        "max out-degree".to_string(),
        "algorithms".to_string(),
    ];
    let mut rows = Vec::new();
    for &id in DatasetId::all() {
        let (nv, ne, maxd) = if matches!(id, DatasetId::NetflixLike | DatasetId::SyntheticCf) {
            let r = datasets::load_ratings(id, opts.scale);
            let st = r.edges.stats();
            (st.num_vertices, st.num_edges, st.max_out_degree)
        } else {
            let el = datasets::load(id, opts.scale);
            let st = el.stats();
            (st.num_vertices, st.num_edges, st.max_out_degree)
        };
        rows.push(vec![
            id.name().to_string(),
            id.paper_dataset().to_string(),
            nv.to_string(),
            ne.to_string(),
            maxd.to_string(),
            id.algorithms().to_string(),
        ]);
    }
    println!("{}", harness::render_table(&headers, &rows));
}

fn print_figure4(title: &str, measurements: &[Measurement]) {
    println!("{title}\n");
    let mut datasets_order: Vec<String> = Vec::new();
    for m in measurements {
        if !datasets_order.contains(&m.dataset) {
            datasets_order.push(m.dataset.clone());
        }
    }
    let headers: Vec<String> = std::iter::once("framework".to_string())
        .chain(datasets_order.iter().cloned())
        .collect();
    let mut rows = Vec::new();
    for &fw in Framework::figure4() {
        let mut row = vec![fw.name().to_string()];
        for ds in &datasets_order {
            let cell = measurements
                .iter()
                .find(|m| m.framework == fw && &m.dataset == ds)
                .map(|m| format!("{:.4}", m.seconds))
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        rows.push(row);
    }
    println!("{}", harness::render_table(&headers, &rows));
}

fn table2(measurements: &[Measurement]) {
    println!("Table 2: geometric-mean speedup of GraphMat over other frameworks\n");
    let algorithms = [
        Algorithm::PageRank,
        Algorithm::Bfs,
        Algorithm::TriangleCount,
        Algorithm::CollaborativeFiltering,
        Algorithm::Sssp,
    ];
    let headers: Vec<String> = std::iter::once("framework".to_string())
        .chain(algorithms.iter().map(|a| a.name().to_string()))
        .chain(std::iter::once("Overall".to_string()))
        .collect();
    let mut rows = Vec::new();
    for fw in [
        Framework::GraphLabLike,
        Framework::CombBlasLike,
        Framework::GaloisLike,
    ] {
        let mut row = vec![fw.name().to_string()];
        let mut all_ratios = Vec::new();
        for alg in algorithms {
            let subset: Vec<Measurement> = measurements
                .iter()
                .filter(|m| m.algorithm == alg)
                .cloned()
                .collect();
            let speedups = harness::table2_speedups(&subset);
            let value = speedups
                .iter()
                .find(|(f, _)| *f == fw)
                .map(|(_, s)| *s)
                .unwrap_or(0.0);
            if value > 0.0 {
                all_ratios.push(value);
            }
            row.push(if value > 0.0 {
                format!("{value:.1}")
            } else {
                "-".to_string()
            });
        }
        row.push(format!("{:.1}", harness::geomean(&all_ratios)));
        rows.push(row);
    }
    println!("{}", harness::render_table(&headers, &rows));
}

fn table3(opts: &Options) {
    println!("Table 3: GraphMat slowdown vs native, hand-optimized code (geomean per algorithm)\n");
    let rows_data = harness::table3_slowdowns(opts.scale, opts.threads);
    let headers = vec!["algorithm".to_string(), "slowdown vs native".to_string()];
    let mut rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|(alg, s)| vec![alg.name().to_string(), format!("{s:.2}")])
        .collect();
    let overall = harness::geomean(&rows_data.iter().map(|(_, s)| *s).collect::<Vec<_>>());
    rows.push(vec![
        "Overall (geomean)".to_string(),
        format!("{overall:.2}"),
    ]);
    println!("{}", harness::render_table(&headers, &rows));
}

fn figure5(opts: &Options) {
    println!("Figure 5: multicore scaling (speedup over each framework's own 1-thread run)\n");
    let max_threads = opts.threads.max(2);
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t <= max_threads {
        thread_counts.push(t);
        t *= 2;
    }
    if *thread_counts.last().unwrap() != max_threads {
        thread_counts.push(max_threads);
    }

    for (title, alg, dataset) in [
        (
            "Figure 5a: PageRank on facebook-like",
            Algorithm::PageRank,
            DatasetId::FacebookLike,
        ),
        (
            "Figure 5b: SSSP on flickr-like",
            Algorithm::Sssp,
            DatasetId::FlickrLike,
        ),
    ] {
        println!("{title}");
        let edges = datasets::load(dataset, opts.scale);
        let headers: Vec<String> = std::iter::once("framework".to_string())
            .chain(thread_counts.iter().map(|t| format!("{t} thr")))
            .collect();
        let mut rows = Vec::new();
        for &fw in Framework::figure4() {
            let series = harness::figure5_scaling(fw, alg, &edges, &thread_counts);
            let base = series[0].1;
            let mut row = vec![fw.name().to_string()];
            for (_, seconds) in &series {
                row.push(format!("{:.2}x", base / seconds.max(1e-12)));
            }
            rows.push(row);
        }
        println!("{}", harness::render_table(&headers, &rows));
    }
}

fn figure6(measurements: &[Measurement]) {
    println!("Figure 6: cost-model counters normalized to GraphMat (instructions / stalls lower is better; bandwidth / IPC higher is better)\n");
    for alg in [
        Algorithm::PageRank,
        Algorithm::TriangleCount,
        Algorithm::CollaborativeFiltering,
        Algorithm::Sssp,
    ] {
        let subset: Vec<&Measurement> =
            measurements.iter().filter(|m| m.algorithm == alg).collect();
        if subset.is_empty() {
            continue;
        }
        println!("Figure 6 ({})", alg.name());
        let headers = vec![
            "framework".to_string(),
            "instructions".to_string(),
            "stall cycles".to_string(),
            "read bandwidth".to_string(),
            "IPC".to_string(),
        ];
        let mut rows = Vec::new();
        for &fw in Framework::figure4() {
            // average the normalized values over datasets
            let mut inst = Vec::new();
            let mut stall = Vec::new();
            let mut bw = Vec::new();
            let mut ipc = Vec::new();
            for m in subset.iter().filter(|m| m.framework == fw) {
                if let Some(gm) = subset
                    .iter()
                    .find(|g| g.framework == Framework::GraphMat && g.dataset == m.dataset)
                {
                    let n = m.perf_report().normalized_to(&gm.perf_report());
                    inst.push(n.instructions);
                    stall.push(n.stall_cycles);
                    bw.push(n.read_bandwidth);
                    ipc.push(n.ipc);
                }
            }
            rows.push(vec![
                fw.name().to_string(),
                format!("{:.2}", harness::geomean(&inst)),
                format!("{:.2}", harness::geomean(&stall)),
                format!("{:.2}", harness::geomean(&bw)),
                format!("{:.2}", harness::geomean(&ipc)),
            ]);
        }
        println!("{}", harness::render_table(&headers, &rows));
    }
}

fn figure7(opts: &Options) {
    println!("Figure 7: cumulative effect of the backend optimizations\n");
    for (title, alg, dataset) in [
        (
            "PageRank / facebook-like",
            Algorithm::PageRank,
            DatasetId::FacebookLike,
        ),
        ("SSSP / flickr-like", Algorithm::Sssp, DatasetId::FlickrLike),
    ] {
        println!("{title}");
        let edges = datasets::load(dataset, opts.scale);
        let steps = harness::figure7_ablation(alg, &edges, opts.threads);
        let headers = vec![
            "configuration".to_string(),
            "seconds".to_string(),
            "cumulative speedup".to_string(),
            "pull supersteps".to_string(),
        ];
        let rows: Vec<Vec<String>> = steps
            .iter()
            .map(|s| {
                vec![
                    s.label.to_string(),
                    format!("{:.4}", s.seconds),
                    format!("{:.1}x", s.speedup),
                    format!("{}/{}", s.pull_supersteps, s.iterations),
                ]
            })
            .collect();
        println!("{}", harness::render_table(&headers, &rows));
    }
}
