//! Shared machinery for the figure/table reproductions.

use graphmat_algorithms::bfs::{bfs, BfsConfig};
use graphmat_algorithms::collaborative_filtering::{collaborative_filtering, CfConfig};
use graphmat_algorithms::pagerank::{pagerank, PageRankConfig};
use graphmat_algorithms::sssp::{sssp, SsspConfig};
use graphmat_algorithms::triangle_count::{triangle_count, TriangleCountConfig};
use graphmat_baselines::{comb, native, vertexpull, worklist, Framework};
use graphmat_core::{GraphBuildOptions, RunOptions, SuperstepStats};
use graphmat_io::bipartite::RatingsGraph;
use graphmat_io::datasets::{self, DatasetId, DatasetScale};
use graphmat_io::edgelist::EdgeList;
use graphmat_perf::{CostCounters, PerfReport};
use std::time::Duration;

/// The five algorithms of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// PageRank (Figure 4a) — reported per iteration.
    PageRank,
    /// Breadth-first search (Figure 4b) — total time.
    Bfs,
    /// Triangle counting (Figure 4c) — total time.
    TriangleCount,
    /// Collaborative filtering (Figure 4d) — reported per iteration.
    CollaborativeFiltering,
    /// Single-source shortest paths (Figure 4e) — total time.
    Sssp,
}

impl Algorithm {
    /// Short name used in table headers.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::PageRank => "PR",
            Algorithm::Bfs => "BFS",
            Algorithm::TriangleCount => "TC",
            Algorithm::CollaborativeFiltering => "CF",
            Algorithm::Sssp => "SSSP",
        }
    }

    /// `true` if the paper reports time per iteration for this algorithm.
    pub fn per_iteration(&self) -> bool {
        matches!(
            self,
            Algorithm::PageRank | Algorithm::CollaborativeFiltering
        )
    }
}

/// Iteration counts used for the timed runs (kept small so the whole suite
/// finishes quickly; per-iteration numbers are unaffected).
pub const PR_ITERATIONS: usize = 5;
/// Gradient-descent iterations for the collaborative-filtering runs.
pub const CF_ITERATIONS: usize = 3;
/// Latent dimensions for collaborative filtering.
pub const CF_DIMS: usize = 20;

/// Result of one (framework, algorithm, dataset) measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Which engine ran.
    pub framework: Framework,
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Dataset name.
    pub dataset: String,
    /// Reported time in seconds — per iteration for PR/CF, total otherwise.
    pub seconds: f64,
    /// Abstract cost counters for the Figure 6 model.
    pub counters: CostCounters,
    /// Wall-clock time of the whole run (not divided by iterations).
    pub total: Duration,
    /// Per-superstep engine detail (GraphMat runs only; empty for the
    /// baseline frameworks, which have no superstep structure). Carries the
    /// chosen push/pull backend and frontier density per superstep, which
    /// the `--json` output surfaces so direction flips are visible in the
    /// perf trajectory.
    pub supersteps: Vec<SuperstepStats>,
}

impl Measurement {
    /// Derived Figure 6 report for this measurement.
    pub fn perf_report(&self) -> PerfReport {
        PerfReport::from_counters(&self.counters, self.total)
    }
}

/// Which datasets Figure 4 uses for each algorithm (paper Table 1, reduced to
/// the synthetic stand-ins).
pub fn figure4_datasets(algorithm: Algorithm) -> Vec<DatasetId> {
    match algorithm {
        Algorithm::PageRank | Algorithm::Bfs => vec![
            DatasetId::LiveJournalLike,
            DatasetId::FacebookLike,
            DatasetId::WikipediaLike,
            DatasetId::RmatGraph500,
        ],
        Algorithm::TriangleCount => vec![
            DatasetId::LiveJournalLike,
            DatasetId::FacebookLike,
            DatasetId::WikipediaLike,
            DatasetId::RmatTriangle,
        ],
        Algorithm::CollaborativeFiltering => {
            vec![DatasetId::NetflixLike, DatasetId::SyntheticCf]
        }
        Algorithm::Sssp => vec![
            DatasetId::FlickrLike,
            DatasetId::UsaRoadLike,
            DatasetId::RmatSssp,
            DatasetId::RmatGraph500,
        ],
    }
}

/// Run one algorithm under one framework on an already-loaded graph.
pub fn run_graph_algorithm(
    framework: Framework,
    algorithm: Algorithm,
    dataset_name: &str,
    edges: &EdgeList,
    nthreads: usize,
) -> Measurement {
    assert!(
        algorithm != Algorithm::CollaborativeFiltering,
        "use run_cf for collaborative filtering"
    );
    let (seconds, counters, total, supersteps) = match framework {
        Framework::GraphMat => {
            // Paper-faithful configuration for the cross-framework figures:
            // always-push (the paper's engine had no pull backend) over the
            // legacy build defaults, which carry no pull mirrors. The
            // direction-optimized engine is measured by the Figure 7 rows
            // and by `run_graphmat_auto`.
            run_graphmat(
                algorithm,
                edges,
                GraphBuildOptions::default(),
                RunOptions::default().with_threads(nthreads),
            )
        }
        Framework::Native => run_native(algorithm, edges, nthreads),
        Framework::CombBlasLike => run_comb(algorithm, edges, nthreads),
        Framework::GraphLabLike => run_vertexpull(algorithm, edges, nthreads),
        Framework::GaloisLike => run_worklist(algorithm, edges, nthreads),
    };
    Measurement {
        framework,
        algorithm,
        dataset: dataset_name.to_string(),
        seconds,
        counters,
        total,
        supersteps,
    }
}

/// Run collaborative filtering under one framework.
pub fn run_cf(
    framework: Framework,
    dataset_name: &str,
    ratings: &RatingsGraph,
    nthreads: usize,
) -> Measurement {
    let (counters, total, iterations, supersteps) = match framework {
        Framework::GraphMat => {
            let cfg = CfConfig {
                latent_dims: CF_DIMS,
                iterations: CF_ITERATIONS,
                ..Default::default()
            };
            let out = collaborative_filtering(
                ratings,
                &cfg,
                &RunOptions::default().with_threads(nthreads),
            );
            (
                out.stats.to_cost_counters(CF_DIMS * 8),
                out.stats.total_time,
                out.stats.iterations.max(1),
                out.stats.supersteps,
            )
        }
        Framework::Native => {
            let run = native::collaborative_filtering(
                ratings,
                CF_DIMS,
                0.05,
                0.002,
                CF_ITERATIONS,
                7,
                nthreads,
            );
            (run.counters, run.elapsed, run.iterations.max(1), Vec::new())
        }
        Framework::CombBlasLike => {
            let run = comb::collaborative_filtering(
                ratings,
                CF_DIMS,
                0.05,
                0.002,
                CF_ITERATIONS,
                7,
                nthreads,
            );
            (run.counters, run.elapsed, run.iterations.max(1), Vec::new())
        }
        Framework::GraphLabLike => {
            let run = vertexpull::collaborative_filtering(
                ratings,
                CF_DIMS,
                0.05,
                0.002,
                CF_ITERATIONS,
                7,
                nthreads,
            );
            (run.counters, run.elapsed, run.iterations.max(1), Vec::new())
        }
        Framework::GaloisLike => {
            let run = worklist::collaborative_filtering(
                ratings,
                CF_DIMS,
                0.05,
                0.002,
                CF_ITERATIONS,
                7,
                nthreads,
            );
            (run.counters, run.elapsed, run.iterations.max(1), Vec::new())
        }
    };
    Measurement {
        framework,
        algorithm: Algorithm::CollaborativeFiltering,
        dataset: dataset_name.to_string(),
        seconds: total.as_secs_f64() / iterations as f64,
        counters,
        total,
        supersteps,
    }
}

/// Run the direction-optimized engine configuration — `VectorKind::Auto`
/// over a pull-enabled topology, the `Session` default — and label the
/// dataset `"<name>+auto"` so JSON consumers can tell it apart from the
/// paper-faithful push run of [`run_graph_algorithm`]. Its superstep
/// trajectory is where push→pull direction flips show up.
pub fn run_graphmat_auto(
    algorithm: Algorithm,
    dataset_name: &str,
    edges: &EdgeList,
    nthreads: usize,
) -> Measurement {
    use graphmat_core::VectorKind;
    let (seconds, counters, total, supersteps) = run_graphmat(
        algorithm,
        edges,
        // Out-direction workloads only (PR/BFS/SSSP): no in-edge matrix,
        // and the pull mirror of G^T the Auto selector switches to.
        GraphBuildOptions::default()
            .with_in_edges(false)
            .with_pull_mirrors(true),
        RunOptions::default()
            .with_threads(nthreads)
            .with_vector(VectorKind::Auto),
    );
    Measurement {
        framework: Framework::GraphMat,
        algorithm,
        dataset: format!("{dataset_name}+auto"),
        seconds,
        counters,
        total,
        supersteps,
    }
}

fn run_graphmat(
    algorithm: Algorithm,
    edges: &EdgeList,
    build: GraphBuildOptions,
    options: RunOptions,
) -> (f64, CostCounters, Duration, Vec<SuperstepStats>) {
    match algorithm {
        Algorithm::PageRank => {
            let cfg = PageRankConfig {
                iterations: PR_ITERATIONS,
                build,
                ..Default::default()
            };
            let out = pagerank(edges, &cfg, &options);
            let total = out.stats.total_time;
            (
                total.as_secs_f64() / out.stats.iterations.max(1) as f64,
                out.stats.to_cost_counters(12),
                total,
                out.stats.supersteps,
            )
        }
        Algorithm::Bfs => {
            let cfg = BfsConfig {
                build,
                ..BfsConfig::from_root(0)
            };
            let out = bfs(edges, &cfg, &options);
            let total = out.stats.total_time;
            (
                total.as_secs_f64(),
                out.stats.to_cost_counters(4),
                total,
                out.stats.supersteps,
            )
        }
        Algorithm::TriangleCount => {
            let cfg = TriangleCountConfig {
                build,
                ..Default::default()
            };
            let out = triangle_count(edges, &cfg, &options);
            let total = out.stats.total_time;
            (
                total.as_secs_f64(),
                out.stats.to_cost_counters(24),
                total,
                out.stats.supersteps,
            )
        }
        Algorithm::Sssp => {
            let cfg = SsspConfig {
                build,
                ..SsspConfig::from_source(0)
            };
            let out = sssp(edges, &cfg, &options);
            let total = out.stats.total_time;
            (
                total.as_secs_f64(),
                out.stats.to_cost_counters(4),
                total,
                out.stats.supersteps,
            )
        }
        Algorithm::CollaborativeFiltering => unreachable!("handled by run_cf"),
    }
}

fn per_iteration_seconds(elapsed: Duration, iterations: usize, per_iter: bool) -> f64 {
    if per_iter {
        elapsed.as_secs_f64() / iterations.max(1) as f64
    } else {
        elapsed.as_secs_f64()
    }
}

fn run_native(
    algorithm: Algorithm,
    edges: &EdgeList,
    nthreads: usize,
) -> (f64, CostCounters, Duration, Vec<SuperstepStats>) {
    match algorithm {
        Algorithm::PageRank => {
            let run = native::pagerank(edges, 0.15, PR_ITERATIONS, nthreads);
            (
                per_iteration_seconds(run.elapsed, run.iterations, true),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::Bfs => {
            let run = native::bfs(edges, 0, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::TriangleCount => {
            let run = native::triangle_count(edges, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::Sssp => {
            let run = native::sssp(edges, 0, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::CollaborativeFiltering => unreachable!(),
    }
}

fn run_comb(
    algorithm: Algorithm,
    edges: &EdgeList,
    nthreads: usize,
) -> (f64, CostCounters, Duration, Vec<SuperstepStats>) {
    match algorithm {
        Algorithm::PageRank => {
            let run = comb::pagerank(edges, 0.15, PR_ITERATIONS, nthreads);
            (
                per_iteration_seconds(run.elapsed, run.iterations, true),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::Bfs => {
            let run = comb::bfs(edges, 0, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::TriangleCount => {
            let run = comb::triangle_count(edges, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::Sssp => {
            let run = comb::sssp(edges, 0, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::CollaborativeFiltering => unreachable!(),
    }
}

fn run_vertexpull(
    algorithm: Algorithm,
    edges: &EdgeList,
    nthreads: usize,
) -> (f64, CostCounters, Duration, Vec<SuperstepStats>) {
    match algorithm {
        Algorithm::PageRank => {
            let run = vertexpull::pagerank(edges, 0.15, PR_ITERATIONS, nthreads);
            (
                per_iteration_seconds(run.elapsed, run.iterations, true),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::Bfs => {
            let run = vertexpull::bfs(edges, 0, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::TriangleCount => {
            let run = vertexpull::triangle_count(edges, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::Sssp => {
            let run = vertexpull::sssp(edges, 0, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::CollaborativeFiltering => unreachable!(),
    }
}

fn run_worklist(
    algorithm: Algorithm,
    edges: &EdgeList,
    nthreads: usize,
) -> (f64, CostCounters, Duration, Vec<SuperstepStats>) {
    match algorithm {
        Algorithm::PageRank => {
            let run = worklist::pagerank(edges, 0.15, PR_ITERATIONS, nthreads);
            (
                per_iteration_seconds(run.elapsed, run.iterations, true),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::Bfs => {
            let run = worklist::bfs(edges, 0, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::TriangleCount => {
            let run = worklist::triangle_count(edges, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::Sssp => {
            let run = worklist::sssp(edges, 0, nthreads);
            (
                run.elapsed.as_secs_f64(),
                run.counters,
                run.elapsed,
                Vec::new(),
            )
        }
        Algorithm::CollaborativeFiltering => unreachable!(),
    }
}

/// Run Figure 4 for one algorithm: every framework on every dataset.
pub fn figure4(algorithm: Algorithm, scale: DatasetScale, nthreads: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &id in &figure4_datasets(algorithm) {
        if algorithm == Algorithm::CollaborativeFiltering {
            let ratings = datasets::load_ratings(id, scale);
            for &fw in Framework::figure4() {
                out.push(run_cf(fw, id.name(), &ratings, nthreads));
            }
        } else {
            let edges = datasets::load(id, scale);
            for &fw in Framework::figure4() {
                out.push(run_graph_algorithm(
                    fw,
                    algorithm,
                    id.name(),
                    &edges,
                    nthreads,
                ));
            }
        }
    }
    out
}

/// Geometric mean of a slice of positive numbers.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Table 2: geometric-mean speedup of GraphMat over each other framework,
/// computed from a set of Figure 4 measurements.
pub fn table2_speedups(measurements: &[Measurement]) -> Vec<(Framework, f64)> {
    let others = [
        Framework::GraphLabLike,
        Framework::CombBlasLike,
        Framework::GaloisLike,
    ];
    others
        .iter()
        .map(|&fw| {
            let ratios: Vec<f64> = measurements
                .iter()
                .filter(|m| m.framework == Framework::GraphMat)
                .filter_map(|gm| {
                    measurements
                        .iter()
                        .find(|m| {
                            m.framework == fw
                                && m.algorithm == gm.algorithm
                                && m.dataset == gm.dataset
                        })
                        .map(|other| other.seconds / gm.seconds.max(1e-12))
                })
                .collect();
            (fw, geomean(&ratios))
        })
        .collect()
}

/// Table 3: geometric-mean slowdown of GraphMat with respect to native code
/// per algorithm (values > 1 mean GraphMat is slower).
pub fn table3_slowdowns(scale: DatasetScale, nthreads: usize) -> Vec<(Algorithm, f64)> {
    let algorithms = [
        Algorithm::PageRank,
        Algorithm::Bfs,
        Algorithm::TriangleCount,
        Algorithm::CollaborativeFiltering,
        Algorithm::Sssp,
    ];
    let mut rows = Vec::new();
    for &alg in &algorithms {
        let mut ratios = Vec::new();
        for &id in &figure4_datasets(alg) {
            if alg == Algorithm::CollaborativeFiltering {
                let ratings = datasets::load_ratings(id, scale);
                let gm = run_cf(Framework::GraphMat, id.name(), &ratings, nthreads);
                let nat = run_cf(Framework::Native, id.name(), &ratings, nthreads);
                ratios.push(gm.seconds / nat.seconds.max(1e-12));
            } else {
                let edges = datasets::load(id, scale);
                let gm = run_graph_algorithm(Framework::GraphMat, alg, id.name(), &edges, nthreads);
                let nat = run_graph_algorithm(Framework::Native, alg, id.name(), &edges, nthreads);
                ratios.push(gm.seconds / nat.seconds.max(1e-12));
            }
        }
        rows.push((alg, geomean(&ratios)));
    }
    rows
}

/// One row of the Figure 7 ablation.
#[derive(Clone, Debug)]
pub struct AblationStep {
    /// Configuration label ("naive", "+bitvector", ...).
    pub label: &'static str,
    /// Measured time in seconds.
    pub seconds: f64,
    /// Cumulative speedup over the naive configuration.
    pub speedup: f64,
    /// Supersteps that ran on the pull backend (0 for the push-only rows;
    /// equals `iterations` for the forced-pull row).
    pub pull_supersteps: usize,
    /// Total supersteps of the run.
    pub iterations: usize,
}

/// The Figure 7 configurations: the paper's five cumulative optimization
/// steps plus this reproduction's direction-optimization comparison rows
/// (push-only, pull-only, auto). Shared by the harness and the
/// `fig7_ablation` criterion bench so the two cannot drift apart.
///
/// Fields: `(label, threads, dispatch, vector, partitions per thread,
/// balanced)`. Pull mirrors are built exactly for the configurations whose
/// vector kind can pull, so the paper-faithful push rows carry no extra
/// build cost or memory.
pub fn figure7_configs(
    nthreads: usize,
) -> Vec<(
    &'static str,
    usize,
    graphmat_core::DispatchMode,
    graphmat_core::VectorKind,
    usize,
    bool,
)> {
    use graphmat_core::{DispatchMode, VectorKind};
    vec![
        (
            "naive (scalar)",
            1,
            DispatchMode::Dynamic,
            VectorKind::Sorted,
            1,
            false,
        ),
        (
            "+bitvector",
            1,
            DispatchMode::Dynamic,
            VectorKind::Bitvector,
            1,
            false,
        ),
        (
            "+ipo (inlined)",
            1,
            DispatchMode::Static,
            VectorKind::Bitvector,
            1,
            false,
        ),
        (
            "+parallel",
            nthreads,
            DispatchMode::Static,
            VectorKind::Bitvector,
            1,
            false,
        ),
        (
            "+load balance (push only)",
            nthreads,
            DispatchMode::Static,
            VectorKind::Bitvector,
            8,
            true,
        ),
        // Direction-optimization rows: same fully-optimized configuration,
        // varying only the backend. "pull only" is expected to *lose* on
        // sparse-frontier workloads (SSSP) and win on dense ones
        // (PageRank); "auto" should track the better of the two.
        (
            "pull only (dense)",
            nthreads,
            DispatchMode::Static,
            VectorKind::Dense,
            8,
            true,
        ),
        (
            "auto (direction-opt)",
            nthreads,
            DispatchMode::Static,
            VectorKind::Auto,
            8,
            true,
        ),
    ]
}

/// Whether a Figure 7 configuration needs the pull mirrors built.
pub fn figure7_needs_pull(vector: graphmat_core::VectorKind) -> bool {
    use graphmat_core::VectorKind;
    matches!(vector, VectorKind::Dense | VectorKind::Auto)
}

/// Figure 7: cumulative effect of the paper's optimizations — plus the
/// push-only / pull-only / auto direction-optimization comparison — on
/// PageRank and SSSP. Returns the per-step results for the given
/// algorithm/dataset; each step also reports how many of its supersteps ran
/// on the pull backend.
pub fn figure7_ablation(
    algorithm: Algorithm,
    edges: &EdgeList,
    nthreads: usize,
) -> Vec<AblationStep> {
    assert!(matches!(algorithm, Algorithm::PageRank | Algorithm::Sssp));
    let mut out = Vec::new();
    let mut naive_seconds = None;
    for (label, threads, dispatch, vector, ppt, balanced) in figure7_configs(nthreads) {
        let build = GraphBuildOptions::default()
            .with_partitions(ppt * threads)
            .with_balancing(balanced)
            .with_in_edges(false)
            .with_pull_mirrors(figure7_needs_pull(vector));
        let options = RunOptions::default()
            .with_threads(threads)
            .with_dispatch(dispatch)
            .with_vector(vector);
        let (seconds, stats) = match algorithm {
            Algorithm::PageRank => {
                let cfg = PageRankConfig {
                    iterations: PR_ITERATIONS,
                    build,
                    ..Default::default()
                };
                let run = pagerank(edges, &cfg, &options);
                (
                    run.stats.total_time.as_secs_f64() / run.stats.iterations.max(1) as f64,
                    run.stats,
                )
            }
            Algorithm::Sssp => {
                let cfg = SsspConfig {
                    build,
                    ..SsspConfig::from_source(0)
                };
                let run = sssp(edges, &cfg, &options);
                (run.stats.total_time.as_secs_f64(), run.stats)
            }
            _ => unreachable!(),
        };
        let naive = *naive_seconds.get_or_insert(seconds);
        out.push(AblationStep {
            label,
            seconds,
            speedup: naive / seconds.max(1e-12),
            pull_supersteps: stats.pull_supersteps,
            iterations: stats.iterations,
        });
    }
    out
}

/// Figure 5: thread-scaling sweep for one framework/algorithm/dataset.
/// Returns `(threads, seconds)` pairs.
pub fn figure5_scaling(
    framework: Framework,
    algorithm: Algorithm,
    edges: &EdgeList,
    thread_counts: &[usize],
) -> Vec<(usize, f64)> {
    thread_counts
        .iter()
        .map(|&t| {
            let m = run_graph_algorithm(framework, algorithm, "scaling", edges, t);
            (t, m.seconds)
        })
        .collect()
}

/// Serialize measurements as a JSON array (hand-rolled — the build is
/// offline, so no serde). Every GraphMat measurement carries its
/// per-superstep trajectory, including the **backend** ("push"/"pull") the
/// direction-optimized engine chose and the **frontier_density** it chose it
/// on, so a plot over `supersteps` shows exactly where a run flipped
/// direction.
pub fn measurements_to_json(measurements: &[Measurement]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn finite(v: f64) -> f64 {
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }
    let mut out = String::from("[\n");
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"framework\": \"{}\", \"algorithm\": \"{}\", \"dataset\": \"{}\", \
             \"seconds\": {:.9}, \"total_seconds\": {:.9}, \"supersteps\": [",
            esc(m.framework.name()),
            esc(m.algorithm.name()),
            esc(&m.dataset),
            finite(m.seconds),
            m.total.as_secs_f64(),
        ));
        for (j, s) in m.supersteps.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"iteration\": {}, \"backend\": \"{}\", \"frontier_density\": {:.9}, \
                 \"active_vertices\": {}, \"messages_sent\": {}, \"edges_processed\": {}, \
                 \"vertices_updated\": {}, \"vertices_changed\": {}, \
                 \"send_seconds\": {:.9}, \"spmv_seconds\": {:.9}, \"apply_seconds\": {:.9}}}",
                s.iteration,
                s.backend.name(),
                finite(s.frontier_density),
                s.active_vertices,
                s.messages_sent,
                s.edges_processed,
                s.vertices_updated,
                s.vertices_changed,
                s.send_time.as_secs_f64(),
                s.spmv_time.as_secs_f64(),
                s.apply_time.as_secs_f64(),
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n]\n");
    out
}

/// Render a simple ASCII table.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:width$} | ", cell, width = widths[i]));
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&render_row(headers, &widths));
    out.push_str(&format!(
        "|{}|\n",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    ));
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn figure4_datasets_cover_all_algorithms() {
        for alg in [
            Algorithm::PageRank,
            Algorithm::Bfs,
            Algorithm::TriangleCount,
            Algorithm::CollaborativeFiltering,
            Algorithm::Sssp,
        ] {
            assert!(!figure4_datasets(alg).is_empty());
        }
    }

    #[test]
    fn run_all_frameworks_on_tiny_bfs() {
        let edges = datasets::load(DatasetId::FacebookLike, DatasetScale::Tiny);
        for &fw in Framework::figure4() {
            let m = run_graph_algorithm(fw, Algorithm::Bfs, "tiny", &edges, 2);
            assert!(m.seconds >= 0.0);
            assert!(m.counters.total_ops() > 0, "{fw:?} reported no work");
        }
    }

    #[test]
    fn run_cf_all_frameworks_tiny() {
        let ratings = datasets::load_ratings(DatasetId::NetflixLike, DatasetScale::Tiny);
        for &fw in Framework::figure4() {
            let m = run_cf(fw, "tiny-cf", &ratings, 2);
            assert!(m.seconds > 0.0);
        }
    }

    #[test]
    fn table2_produces_three_rows() {
        let edges = datasets::load(DatasetId::FacebookLike, DatasetScale::Tiny);
        let mut measurements = Vec::new();
        for &fw in Framework::figure4() {
            measurements.push(run_graph_algorithm(fw, Algorithm::Bfs, "tiny", &edges, 2));
        }
        let speedups = table2_speedups(&measurements);
        assert_eq!(speedups.len(), 3);
        assert!(speedups.iter().all(|(_, s)| *s > 0.0));
    }

    #[test]
    fn ablation_has_direction_rows_and_naive_is_baseline() {
        let edges = datasets::load(DatasetId::FacebookLike, DatasetScale::Tiny);
        let steps = figure7_ablation(Algorithm::PageRank, &edges, 2);
        assert_eq!(steps.len(), 7);
        assert!((steps[0].speedup - 1.0).abs() < 1e-9);
        // The push-only rows never pull; the forced-pull row always pulls;
        // auto on PageRank (every vertex active every superstep) pulls every
        // superstep — the acceptance criterion of the direction PR.
        for push_row in &steps[..5] {
            assert_eq!(push_row.pull_supersteps, 0, "{}", push_row.label);
        }
        let pull_only = &steps[5];
        assert_eq!(pull_only.label, "pull only (dense)");
        assert_eq!(pull_only.pull_supersteps, pull_only.iterations);
        let auto = &steps[6];
        assert_eq!(auto.label, "auto (direction-opt)");
        assert_eq!(
            auto.pull_supersteps, auto.iterations,
            "dense-frontier PageRank supersteps must select the pull backend"
        );
    }

    #[test]
    fn sssp_ablation_auto_tracks_the_sparse_frontier() {
        // SSSP's frontier starts from one source: auto must not pull every
        // superstep (most are sparse), while forced dense always pulls.
        let edges = datasets::load(DatasetId::FlickrLike, DatasetScale::Tiny);
        let steps = figure7_ablation(Algorithm::Sssp, &edges, 2);
        let pull_only = &steps[5];
        assert_eq!(pull_only.pull_supersteps, pull_only.iterations);
        let auto = &steps[6];
        assert!(
            auto.pull_supersteps < auto.iterations,
            "auto pulled {}/{} supersteps on a frontier-driven SSSP",
            auto.pull_supersteps,
            auto.iterations
        );
    }

    #[test]
    fn json_output_carries_backend_and_density_per_superstep() {
        let edges = datasets::load(DatasetId::FacebookLike, DatasetScale::Tiny);
        let m = run_graph_algorithm(Framework::GraphMat, Algorithm::Bfs, "tiny", &edges, 2);
        assert!(!m.supersteps.is_empty());
        let json = measurements_to_json(&[m]);
        assert!(json.contains("\"backend\": \"push\""), "{json}");
        assert!(json.contains("\"frontier_density\": "), "{json}");
        assert!(json.contains("\"dataset\": \"tiny\""), "{json}");
        // Baselines serialize with an empty superstep list.
        let nat = run_graph_algorithm(Framework::Native, Algorithm::Bfs, "tiny", &edges, 2);
        let json = measurements_to_json(&[nat]);
        assert!(json.contains("\"supersteps\": []"), "{json}");
    }

    #[test]
    fn render_table_aligns_columns() {
        let table = render_table(
            &["a".to_string(), "bbb".to_string()],
            &[vec!["1".to_string(), "2".to_string()]],
        );
        assert!(table.contains("| a"));
        assert!(table.lines().count() == 3);
    }
}
