//! Benchmark harness regenerating every table and figure of the GraphMat
//! paper.
//!
//! The [`harness`] module contains the shared machinery: running one
//! algorithm under one framework ([`harness::run_graph_algorithm`]), collecting
//! wall time and cost counters, and formatting the paper's tables. The
//! `figures` binary (`cargo run -p graphmat-bench --bin figures --release`)
//! drives it to print text versions of Table 1–3 and Figures 4–7; the
//! Criterion benches under `benches/` time the same workloads with
//! statistical rigour.

pub mod harness;
