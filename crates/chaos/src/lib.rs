//! Deterministic fault injection: named failpoints for chaos-testing the
//! serving path.
//!
//! The serving stack (`crates/server` + `GraphStore`) claims it survives the
//! bad day — a worker panicking mid-run, a compaction thread dying, a flaky
//! frame write. Those claims are only testable if the faults can be *made to
//! happen*, deterministically, at the exact hazard the recovery code guards.
//! This crate is that switchboard: instrumented crates plant named
//! [`fire`] calls at their hazards, and tests (or the
//! [`GRAPHMAT_FAILPOINTS`](ENV_VAR) environment variable) arm them with a
//! deterministic trigger.
//!
//! # Cost when disabled
//!
//! Everything here is gated on the `chaos` cargo feature, exactly like the
//! `shard-check` race detector: with the feature off (the default),
//! [`fire`] is an empty `#[inline(always)]` function returning `None` and
//! the registry does not exist — default builds compile the failpoints out
//! to nothing, which the per-PR `BENCH_<n>.json` A/B run confirms.
//!
//! # Arming a failpoint
//!
//! A failpoint is armed with an **action** and a **trigger**:
//!
//! * actions — `panic` (unwind at the callsite with a diagnostic message) or
//!   `error` (the callsite receives [`InjectedFault::Error`] and maps it to
//!   its own typed error);
//! * triggers — `always` (every hit), `n<K>` (exactly the K-th hit, 1-based;
//!   deterministic single-shot), or `p<F>[,s<SEED>]` (seeded probability:
//!   each hit fires independently with probability F, driven by a
//!   per-failpoint SplitMix64 stream so a given seed reproduces the same
//!   fault schedule).
//!
//! In-process (tests):
//!
//! ```
//! # #[cfg(feature = "chaos")] {
//! graphmat_chaos::configure("store.apply.publish", "panic@n2").unwrap();
//! graphmat_chaos::configure("server.frame.read", "error@p0.05,s42").unwrap();
//! graphmat_chaos::reset(); // disarm everything, zero the counters
//! # }
//! ```
//!
//! From outside (CI smoke legs, loadgen runs), the same specs via the
//! environment, `;`-separated:
//!
//! ```text
//! GRAPHMAT_FAILPOINTS='server.worker.execute=panic@p0.01,s7;store.apply.admit=error@n3'
//! ```
//!
//! The environment is read once, on the first [`fire`] anywhere in the
//! process; `configure`/`reset` calls override it.
//!
//! # Adding a failpoint
//!
//! Plant `graphmat_chaos::fire("crate.site.hazard")` at the hazard and
//! handle both variants: `Panic` never returns (the call panics inside
//! [`fire`]), `Error` must be mapped to the caller's error path. Names are
//! dotted `area.site.hazard` strings; the registry is open — firing an
//! unarmed name just counts the hit, so tests can assert coverage with
//! `hits`. See `crates/chaos/README.md` for the currently planted set.

/// Name of the environment variable holding `;`-separated failpoint specs.
pub const ENV_VAR: &str = "GRAPHMAT_FAILPOINTS";

/// What an armed failpoint injected at a callsite.
///
/// `Panic` is listed for completeness but is never *returned*: [`fire`]
/// panics directly so the unwind originates at the instrumented line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// The callsite should fail its fallible path with an injected error.
    Error,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chaos-injected fault")
    }
}

#[cfg(not(feature = "chaos"))]
mod imp {
    /// Chaos disabled: hit the failpoint and do nothing (compiles to
    /// nothing — the name literal is dead and the branch folds away).
    #[inline(always)]
    pub fn fire(_name: &'static str) -> Option<super::InjectedFault> {
        None
    }
}

#[cfg(feature = "chaos")]
mod imp {
    use super::InjectedFault;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// When an armed failpoint goes off.
    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Trigger {
        /// Every hit fires.
        Always,
        /// Exactly the K-th hit (1-based) fires; all others pass.
        Nth(u64),
        /// Each hit fires independently with this probability, scaled to
        /// parts-per-million and driven by the per-failpoint rng stream.
        ProbPpm(u64),
    }

    /// What firing does to the callsite.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Action {
        Panic,
        Error,
    }

    #[derive(Debug)]
    struct Failpoint {
        armed: Option<(Action, Trigger)>,
        /// SplitMix64 state for probabilistic triggers.
        rng: u64,
        hits: u64,
        fires: u64,
    }

    impl Default for Failpoint {
        fn default() -> Self {
            Failpoint {
                armed: None,
                rng: 0x9e37_79b9_7f4a_7c15,
                hits: 0,
                fires: 0,
            }
        }
    }

    struct Registry {
        points: HashMap<String, Failpoint>,
        env_loaded: bool,
    }

    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

    /// The registry mutex recovers from poisoning: a chaos `panic` action
    /// unwinds *after* the guard is dropped (the panic happens in `fire`'s
    /// caller frame below, outside the lock), but a test harness thread can
    /// still die while holding it — the map of counters is always
    /// consistent between statements.
    fn registry() -> MutexGuard<'static, Registry> {
        let lock = REGISTRY.get_or_init(|| {
            Mutex::new(Registry {
                points: HashMap::new(),
                env_loaded: false,
            })
        });
        match lock.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Parse one `action[@trigger]` spec (see crate docs for the grammar).
    fn parse_spec(spec: &str) -> Result<Option<(Action, Trigger, Option<u64>)>, String> {
        let spec = spec.trim();
        if spec == "off" {
            return Ok(None);
        }
        let (action, trigger) = match spec.split_once('@') {
            Some((a, t)) => (a.trim(), t.trim()),
            None => (spec, "always"),
        };
        let action = match action {
            "panic" => Action::Panic,
            "error" => Action::Error,
            other => {
                return Err(format!(
                    "unknown failpoint action {other:?} (panic|error|off)"
                ))
            }
        };
        if trigger == "always" {
            return Ok(Some((action, Trigger::Always, None)));
        }
        if let Some(n) = trigger.strip_prefix('n') {
            let n: u64 = n
                .parse()
                .map_err(|e| format!("failpoint trigger {trigger:?}: {e}"))?;
            if n == 0 {
                return Err("failpoint trigger n0: hits are 1-based".into());
            }
            return Ok(Some((action, Trigger::Nth(n), None)));
        }
        if let Some(rest) = trigger.strip_prefix('p') {
            let (p, seed) = match rest.split_once(",s") {
                Some((p, s)) => (
                    p,
                    Some(
                        s.parse::<u64>()
                            .map_err(|e| format!("failpoint seed {s:?}: {e}"))?,
                    ),
                ),
                None => (rest, None),
            };
            let p: f64 = p
                .parse()
                .map_err(|e| format!("failpoint probability {p:?}: {e}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("failpoint probability {p} outside [0, 1]"));
            }
            return Ok(Some((action, Trigger::ProbPpm((p * 1e6) as u64), seed)));
        }
        Err(format!(
            "unknown failpoint trigger {trigger:?} (always|n<K>|p<F>[,s<SEED>])"
        ))
    }

    fn configure_locked(reg: &mut Registry, name: &str, spec: &str) -> Result<(), String> {
        let armed = parse_spec(spec)?;
        let point = reg.points.entry(name.to_string()).or_default();
        match armed {
            Some((action, trigger, seed)) => {
                point.armed = Some((action, trigger));
                // Arming restarts the counters so triggers are relative to
                // the arming, not to process history: `n3` means "the 3rd
                // hit from now", regardless of earlier (unarmed) traffic.
                point.hits = 0;
                point.fires = 0;
                if let Some(seed) = seed {
                    point.rng = seed;
                }
            }
            None => point.armed = None,
        }
        Ok(())
    }

    fn load_env_locked(reg: &mut Registry) {
        if reg.env_loaded {
            return;
        }
        reg.env_loaded = true;
        let Ok(var) = std::env::var(super::ENV_VAR) else {
            return;
        };
        for entry in var.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, spec)) = entry.split_once('=') else {
                // audit:allow(no-println): env parsing happens before any
                // logging exists; stderr is the only channel for a bad spec.
                eprintln!(
                    "[graphmat-chaos] ignoring malformed {}: {entry:?}",
                    super::ENV_VAR
                );
                continue;
            };
            if let Err(err) = configure_locked(reg, name.trim(), spec) {
                // audit:allow(no-println): same as above — warn and continue.
                eprintln!("[graphmat-chaos] ignoring {entry:?}: {err}");
            }
        }
    }

    /// Hit the named failpoint: count the hit, and if the point is armed
    /// and its trigger says so, inject the configured fault. `panic`
    /// actions unwind from here (so the panic's origin is the instrumented
    /// callsite); `error` actions return [`InjectedFault::Error`].
    pub fn fire(name: &'static str) -> Option<InjectedFault> {
        let fired = {
            let mut reg = registry();
            load_env_locked(&mut reg);
            let point = reg.points.entry(name.to_string()).or_default();
            point.hits += 1;
            let hit = point.hits;
            let go = match point.armed {
                None => None,
                Some((action, trigger)) => {
                    let fires = match trigger {
                        Trigger::Always => true,
                        Trigger::Nth(k) => hit == k,
                        Trigger::ProbPpm(ppm) => splitmix64(&mut point.rng) % 1_000_000 < ppm,
                    };
                    fires.then_some((action, hit))
                }
            };
            if go.is_some() {
                point.fires += 1;
            }
            go
            // guard drops here, BEFORE any panic, so the registry is never
            // poisoned by its own injected faults
        };
        match fired {
            None => None,
            Some((Action::Error, _)) => Some(InjectedFault::Error),
            Some((Action::Panic, hit)) => {
                // audit:allow(no-unwrap): this panic IS the injected fault —
                // the whole point of the `panic` action. It unwinds from the
                // instrumented callsite into that site's recovery path.
                panic!("chaos: injected panic at failpoint `{name}` (hit {hit})")
            }
        }
    }

    /// Arm (or, with `"off"`, disarm) one failpoint from a spec string.
    pub fn configure(name: &str, spec: &str) -> Result<(), String> {
        let mut reg = registry();
        load_env_locked(&mut reg);
        configure_locked(&mut reg, name, spec)
    }

    /// Disarm every failpoint and zero all hit/fire counters. Also marks
    /// the environment as consumed so a reset test run is hermetic.
    pub fn reset() {
        let mut reg = registry();
        reg.env_loaded = true;
        reg.points.clear();
    }

    /// Times the named failpoint has been hit (armed or not).
    pub fn hits(name: &str) -> u64 {
        registry().points.get(name).map_or(0, |p| p.hits)
    }

    /// Times the named failpoint actually injected a fault.
    pub fn fires(name: &str) -> u64 {
        registry().points.get(name).map_or(0, |p| p.fires)
    }

    /// Every failpoint the process has seen: `(name, hits, fires)`.
    pub fn snapshot() -> Vec<(String, u64, u64)> {
        let reg = registry();
        let mut out: Vec<(String, u64, u64)> = reg
            .points
            .iter()
            .map(|(name, p)| (name.clone(), p.hits, p.fires))
            .collect();
        out.sort();
        out
    }
}

pub use imp::fire;
#[cfg(feature = "chaos")]
pub use imp::{configure, fires, hits, reset, snapshot};

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The registry is process-global; serialize the tests that mutate it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn unarmed_failpoints_count_hits_but_never_fire() {
        let _g = guard();
        reset();
        for _ in 0..5 {
            assert_eq!(fire("test.unarmed"), None);
        }
        assert_eq!(hits("test.unarmed"), 5);
        assert_eq!(fires("test.unarmed"), 0);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = guard();
        reset();
        configure("test.nth", "error@n3").unwrap();
        let outcomes: Vec<_> = (0..5).map(|_| fire("test.nth")).collect();
        assert_eq!(
            outcomes,
            vec![None, None, Some(InjectedFault::Error), None, None]
        );
        assert_eq!(fires("test.nth"), 1);
    }

    #[test]
    fn always_trigger_fires_every_hit_until_disarmed() {
        let _g = guard();
        reset();
        configure("test.always", "error").unwrap();
        assert_eq!(fire("test.always"), Some(InjectedFault::Error));
        assert_eq!(fire("test.always"), Some(InjectedFault::Error));
        configure("test.always", "off").unwrap();
        assert_eq!(fire("test.always"), None);
        assert_eq!(hits("test.always"), 3);
        assert_eq!(fires("test.always"), 2);
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let _g = guard();
        let schedule = |seed: u64| -> Vec<bool> {
            reset();
            configure("test.prob", &format!("error@p0.5,s{seed}")).unwrap();
            (0..64).map(|_| fire("test.prob").is_some()).collect()
        };
        let a = schedule(42);
        let b = schedule(42);
        let c = schedule(43);
        assert_eq!(a, b, "same seed must replay the same fault schedule");
        assert_ne!(a, c, "different seeds must differ (p=0.5 over 64 draws)");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
    }

    #[test]
    fn panic_action_unwinds_with_the_failpoint_name() {
        let _g = guard();
        reset();
        configure("test.panic", "panic@n1").unwrap();
        let err = std::panic::catch_unwind(|| fire("test.panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("test.panic"), "panic message was {msg:?}");
        // The registry survived its own injected panic un-poisoned.
        assert_eq!(fire("test.panic"), None);
        assert_eq!(hits("test.panic"), 2);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _g = guard();
        for bad in [
            "explode",
            "panic@n0",
            "error@p1.5",
            "error@pxyz",
            "error@q7",
            "panic@p0.1,sboom",
        ] {
            assert!(
                configure("test.bad", bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
        // `off` and bare actions parse.
        configure("test.bad", "off").unwrap();
        configure("test.bad", "panic").unwrap();
        configure("test.bad", "off").unwrap();
    }
}
