//! One superstep: SEND_MESSAGE → generalized SpMV, allocation-free.
//!
//! This module is the bridge between the vertex-program frontend and the
//! sparse backend (the right-hand column of the paper's Figure 2):
//!
//! * `SEND_MESSAGE` over the active vertices **creates the sparse input
//!   vector**;
//! * `PROCESS_MESSAGE` becomes the generalized SpMV **multiply**, with the
//!   destination row index used to look up the destination vertex's property
//!   (the GraphMat extension over pure semiring frameworks, §4.2);
//! * `REDUCE` becomes the generalized SpMV **add**.
//!
//! The APPLY phase lives in [`crate::runner`], because it mutates vertex
//! state and drives the convergence loop.
//!
//! # Topology / state split
//!
//! A superstep **reads** the immutable [`Topology`] (matrices + degrees) and
//! the current [`VertexState`] (properties + active set), and **writes** only
//! into the [`Workspace`]. Nothing here mutates the topology, which is what
//! makes one `Arc<Topology>` safe to share between concurrent runs — each
//! run brings its own state and workspace.
//!
//! # The workspace: zero allocation per superstep
//!
//! GraphMat's SSSP/BFS advantage comes from tiny per-iteration overheads
//! (§5.2.1). To honour that, all per-superstep buffers — the message vector,
//! the reduced-output vector, the optional second output for
//! [`EdgeDirection::Both`], the APPLY `updated` list and the next-active bit
//! vector — live in a [`Workspace`] owned by the runner and are **cleared
//! and reused** every iteration, never reallocated. [`superstep_into`] runs
//! SEND + SpMV into that workspace and returns only scalar
//! [`SuperstepMetrics`]; [`superstep`] is the convenience wrapper that
//! allocates a one-shot workspace and hands back an owned
//! [`SuperstepOutput`].
//!
//! # Parallel SEND
//!
//! With a multi-lane executor and a large enough frontier, SEND is chunked
//! over the **words** of the active-vertex bit vector
//! ([`graphmat_sparse::spvec::SparseVector::fill_words_parallel`]): each lane
//! scans its word range and inserts messages for its own vertices. Chunks
//! never share a 64-bit validity word, so all writes are plain stores — no
//! locks, no atomics on the value path, no allocation. Per
//! [`GraphProgram::direction`], SEND reads only the degree array the
//! direction actually needs (out-degrees for `Out`, in-degrees for `In`,
//! both for `Both`) when accounting the edges a superstep will traverse.
//!
//! # Direction optimization: push vs pull
//!
//! The paper's engine always *pushes*: SEND builds a sparse message vector
//! and the column-wise DCSC SpMV scatters it — ideal when few vertices are
//! active, wasteful when most are (PageRank every superstep, the middle of
//! a BFS). This reproduction adds the dense *pull* backend
//! direction-optimized frameworks (Beamer's bottom-up BFS, GraphBLAST) get
//! their biggest win from: SEND fills a [`DenseVector`] instead, and the
//! row-parallel [`gspmv_csr_pull_into`] kernel walks destination rows of
//! the topology's CSR mirror, gathering messages by index — no sharded
//! writers, no atomics, perfect write locality.
//!
//! [`VectorKind::Auto`] (the `Session` default) makes the choice per
//! superstep with [`choose_backend`], Beamer's rule: pull when the
//! frontier's out-edges exceed `unexplored_edges / α` and the frontier is
//! not tiny. Forced kinds pin the backend (`Bitvector`/`Sorted` → push,
//! `Dense` → pull). Every representation reduces each destination's
//! incoming products in ascending source order, so **all four produce
//! bit-for-bit identical results** — the selector can never change an
//! answer, only its speed. The superstep records the chosen
//! [`Backend`] in its metrics so runs expose their push/pull trajectory.

use crate::error::{GraphMatError, Result};
use crate::options::{DispatchMode, RunOptions, VectorKind};
use crate::program::{EdgeDirection, GraphProgram, VertexId};
use crate::state::VertexState;
use crate::stats::Backend;
use crate::topology::Topology;
use crate::view::GraphView;
use graphmat_sparse::bitvec::AtomicBitVec;
use graphmat_sparse::overlay::{gspmv_overlay_into, Overlay};
use graphmat_sparse::parallel::{chunks, Executor};
use graphmat_sparse::partition::PartitionedDcsc;
use graphmat_sparse::pull::CsrMirror;
use graphmat_sparse::spmv::{gspmv_csr_pull_into, gspmv_into};
use graphmat_sparse::spvec::{
    DenseVector, MessageVector, SortedSparseVector, SparseVector, WordRangeWriter,
};
use graphmat_sparse::Index;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Work lists smaller than this run a phase sequentially: waking the pool
/// costs more than scanning a short list on one lane — exactly the "small
/// per-iteration overhead" property the paper credits for GraphMat's SSSP
/// advantage (§5.2.1). Shared by SEND (here) and APPLY (the runner) so the
/// two cutoffs cannot drift apart.
pub(crate) const PARALLEL_PHASE_MIN_WORK: usize = 2048;

/// The β guard of the direction selector: never pull while fewer than
/// `1/β` of all vertices are active, no matter how few edges remain
/// unexplored. This is Beamer's bottom-up→top-down switch-back condition —
/// without it a BFS tail (tiny frontier, everything already explored) would
/// stay on the pull backend and pay a full row sweep to deliver a handful of
/// messages.
pub const PULL_BETA: f64 = 24.0;

/// The Beamer-style direction rule used by [`VectorKind::Auto`]: pull when
/// the frontier's outgoing edges outnumber `unexplored_edges / alpha`
/// (the frontier is about to touch a large share of what is left, so a
/// row-major sweep that reads each destination's sources beats scattering)
/// **and** at least `num_vertices / β` vertices are active (see
/// [`PULL_BETA`]).
///
/// `frontier_edges` is the out-edge count of the current active set in the
/// program's scatter direction; `unexplored_edges` is the direction's total
/// edge count minus everything already traversed this run (saturating at
/// zero — fixed-iteration algorithms like PageRank re-traverse every edge
/// each superstep, exhaust the estimate after one superstep and settle on
/// pull, which is exactly the desired behaviour).
pub fn choose_backend(
    frontier_edges: u64,
    unexplored_edges: u64,
    active_count: usize,
    num_vertices: usize,
    alpha: f64,
) -> Backend {
    let frontier_is_heavy = frontier_edges as f64 > unexplored_edges as f64 / alpha;
    let frontier_is_broad = active_count as f64 * PULL_BETA >= num_vertices as f64;
    if frontier_is_heavy && frontier_is_broad {
        Backend::Pull
    } else {
        Backend::Push
    }
}

/// The output of one superstep's SEND + SpMV phases (owned variant, produced
/// by [`superstep`]; the runner's hot loop uses [`superstep_into`] instead).
#[derive(Debug)]
pub struct SuperstepOutput<R> {
    /// Reduced values per destination vertex (the `y` of Algorithm 1).
    pub reduced: SparseVector<R>,
    /// Number of messages generated by SEND_MESSAGE.
    pub messages_sent: usize,
    /// Number of edges traversed by the SpMV.
    pub edges_processed: u64,
    /// Which SpMV backend ran (push, or pull when the frontier was dense).
    pub backend: Backend,
    /// Time spent building the message vector.
    pub send_time: Duration,
    /// Time spent in the SpMV.
    pub spmv_time: Duration,
}

/// Scalar measurements of one superstep's SEND + SpMV phases; the reduced
/// values themselves land in the [`Workspace`].
pub struct SuperstepMetrics {
    /// Number of messages generated by SEND_MESSAGE.
    pub messages_sent: usize,
    /// Number of edges traversed by the SpMV.
    pub edges_processed: u64,
    /// Which SpMV backend ran (push, or pull when the frontier was dense).
    pub backend: Backend,
    /// Time spent building the message vector.
    pub send_time: Duration,
    /// Time spent in the SpMV.
    pub spmv_time: Duration,
}

/// The message vector in the representation [`RunOptions::vector`] selected.
enum MessageStore<M> {
    /// Bit vector + dense value array, always pushed (the paper's choice,
    /// §4.4.2).
    Bitvector(SparseVector<M>),
    /// Sorted tuples (the Figure 7 ablation baseline; SEND stays sequential
    /// here because sorted insertion cannot be sharded).
    Sorted(SortedSparseVector<M>),
    /// Dense value array + validity bitmap, always pulled through the CSR
    /// mirror.
    Dense(DenseVector<M>),
    /// Direction-optimized: both representations live in the workspace and
    /// the selector fills exactly one per superstep. Costs one extra O(n)
    /// value array over the forced kinds — the price of switching without
    /// per-superstep allocation.
    Auto {
        push: SparseVector<M>,
        pull: DenseVector<M>,
    },
}

/// Reusable per-run scratch state: every buffer a superstep needs, allocated
/// once in [`Workspace::new`] and recycled (cleared, never freed) across all
/// supersteps of a run — or across **runs**, when the workspace rides in a
/// pooled [`VertexState`] via
/// [`crate::session::RunBuilder::execute_with`].
pub struct Workspace<P: GraphProgram> {
    messages: MessageStore<P::Message>,
    pub(crate) reduced: SparseVector<P::Reduced>,
    /// Second SpMV target for [`EdgeDirection::Both`]; built lazily on first
    /// use so unidirectional programs never pay for it.
    scratch: Option<SparseVector<P::Reduced>>,
    /// Vertex ids with a reduced value this superstep (APPLY's work list).
    pub(crate) updated: Vec<Index>,
    /// Active set being built for the next superstep.
    pub(crate) next_active: AtomicBitVec,
}

impl<P: GraphProgram> Workspace<P> {
    /// Allocate a workspace for a graph of `n` vertices.
    pub fn new(n: usize, options: &RunOptions) -> Self {
        let messages = match options.vector {
            VectorKind::Bitvector => MessageStore::Bitvector(SparseVector::new(n)),
            VectorKind::Sorted => MessageStore::Sorted(SortedSparseVector::new(n)),
            VectorKind::Dense => MessageStore::Dense(DenseVector::new(n)),
            VectorKind::Auto => MessageStore::Auto {
                push: SparseVector::new(n),
                pull: DenseVector::new(n),
            },
        };
        Workspace {
            messages,
            reduced: SparseVector::new(n),
            scratch: None,
            updated: Vec::new(),
            next_active: AtomicBitVec::new(n),
        }
    }

    /// The reduced values produced by the most recent superstep.
    pub fn reduced(&self) -> &SparseVector<P::Reduced> {
        &self.reduced
    }

    /// Whether this workspace can serve a run over `n` vertices with the
    /// given options (used when recycling a cached workspace from a pooled
    /// [`VertexState`] — a mismatch means "allocate fresh", never an error).
    pub fn is_compatible(&self, n: usize, options: &RunOptions) -> bool {
        let kind_matches = matches!(
            (&self.messages, options.vector),
            (MessageStore::Bitvector(_), VectorKind::Bitvector)
                | (MessageStore::Sorted(_), VectorKind::Sorted)
                | (MessageStore::Dense(_), VectorKind::Dense)
                | (MessageStore::Auto { .. }, VectorKind::Auto)
        );
        kind_matches && self.reduced.len() == n
    }
}

/// Execute the SEND_MESSAGE and SpMV phases of one superstep into a fresh,
/// one-shot workspace and return the owned output. Convenience API for tests
/// and single-superstep callers; the runner's loop uses [`superstep_into`]
/// with a persistent [`Workspace`].
///
/// # Errors
///
/// [`GraphMatError::MissingInMatrix`] /
/// [`GraphMatError::MissingPullMirror`] when the topology lacks a matrix the
/// program's direction or the selected backend needs (see
/// [`superstep_into`]).
pub fn superstep<P: GraphProgram>(
    topology: &Topology<P::Edge>,
    state: &VertexState<P::VertexProp>,
    program: &P,
    options: &RunOptions,
    executor: &Executor,
) -> Result<SuperstepOutput<P::Reduced>> {
    let mut ws = Workspace::<P>::new(topology.num_vertices() as usize, options);
    let metrics = superstep_into(
        topology,
        state,
        program,
        options,
        executor,
        state.active_count(),
        0,
        &mut ws,
    )?;
    Ok(SuperstepOutput {
        reduced: ws.reduced,
        messages_sent: metrics.messages_sent,
        edges_processed: metrics.edges_processed,
        backend: metrics.backend,
        send_time: metrics.send_time,
        spmv_time: metrics.spmv_time,
    })
}

/// Execute the SEND_MESSAGE and SpMV phases of one superstep, reusing the
/// buffers in `ws`. Allocation-free in the steady state.
///
/// `active_count` is the current number of active vertices — the caller (the
/// runner's convergence check) already has it in hand, and passing it in
/// spares SEND a second full popcount of the active bit vector per
/// superstep. It gates the sequential-vs-parallel SEND choice and feeds the
/// direction selector's β guard.
///
/// `explored_edges` is the number of edges already traversed by earlier
/// supersteps of this run (the runner's cumulative
/// `RunStats::edges_processed`); the [`VectorKind::Auto`] selector uses it
/// to estimate the unexplored remainder. Callers not running `Auto` can pass
/// `0` — the value is read by nothing else.
///
/// # Errors
///
/// * [`GraphMatError::MissingInMatrix`] if the program scatters along
///   in-edges (`In`/`Both`) but the topology was built with
///   `build_in_edges = false`;
/// * [`GraphMatError::MissingPullMirror`] if the workspace forces the pull
///   backend (`VectorKind::Dense`) but the topology was built with
///   `build_pull_mirrors = false`. (`Auto` silently pushes instead.)
///
/// Both are checked **before** any phase runs, so an error leaves the
/// workspace's previous contents intact. The deprecated
/// [`crate::graph::Graph`] facade is the only place these still surface as
/// panics.
#[allow(clippy::too_many_arguments)]
pub fn superstep_into<P: GraphProgram>(
    topology: &Topology<P::Edge>,
    state: &VertexState<P::VertexProp>,
    program: &P,
    options: &RunOptions,
    executor: &Executor,
    active_count: usize,
    explored_edges: u64,
    ws: &mut Workspace<P>,
) -> Result<SuperstepMetrics> {
    superstep_view_into(
        GraphView::base(topology),
        state,
        program,
        options,
        executor,
        active_count,
        explored_edges,
        ws,
    )
}

/// [`superstep_into`] over a `(base ⊕ delta)` [`GraphView`] — the core every
/// superstep entry point reduces to. With no overlay the behaviour (and the
/// machine code path) is identical to the plain topology superstep; with a
/// pending overlay the push SpMV runs the merged
/// [`gspmv_overlay_into`] column walk and SEND accounts the **merged**
/// degree arrays, so metrics describe the edited graph.
///
/// Overlay-specific semantics:
///
/// * [`VectorKind::Auto`] always selects the push backend while edits are
///   pending — the pull mirrors describe the unedited base and are only
///   refreshed by compaction;
/// * a forced [`VectorKind::Dense`] run over a pending overlay is rejected
///   with [`GraphMatError::InvalidParameter`] (checked before any phase
///   runs);
/// * an `In`/`Both` program additionally requires the overlay to have been
///   compiled against the in matrix (the store always does this when the
///   base has one).
#[allow(clippy::too_many_arguments)]
pub fn superstep_view_into<P: GraphProgram>(
    view: GraphView<'_, P::Edge>,
    state: &VertexState<P::VertexProp>,
    program: &P,
    options: &RunOptions,
    executor: &Executor,
    active_count: usize,
    explored_edges: u64,
    ws: &mut Workspace<P>,
) -> Result<SuperstepMetrics> {
    // Release-mode checks, not debug_asserts: the Topology/VertexState
    // split makes a mismatched pairing expressible, and without this the
    // failure is a bare slice-index panic deep in SEND/SpMV. Two usize
    // compares per superstep is free next to the SpMV.
    let topology = view.topology();
    let n = topology.num_vertices() as usize;
    assert_eq!(
        state.num_vertices(),
        n,
        "vertex state sized for {} vertices used with a topology of {} vertices",
        state.num_vertices(),
        n
    );
    assert_eq!(
        ws.reduced.len(),
        n,
        "workspace sized for {} vertices used with a topology of {} vertices",
        ws.reduced.len(),
        n
    );
    let direction = program.direction();
    if direction != EdgeDirection::Out {
        if !topology.has_in_edges() {
            return Err(GraphMatError::MissingInMatrix);
        }
        if view.has_overlay() && view.in_kernel_overlay().is_none() {
            // The store compiles overlays against every matrix the base
            // built, so this only trips on a hand-assembled mismatch.
            return Err(GraphMatError::MissingInMatrix);
        }
    }

    // --- Backend selection (before SEND: the two backends fill different
    // message representations). Pending overlays pin the push backend: the
    // pull mirrors describe the unedited base.
    let overlay_pending = view.has_overlay();
    let backend = match &ws.messages {
        MessageStore::Bitvector(_) | MessageStore::Sorted(_) => Backend::Push,
        MessageStore::Dense(_) => {
            if overlay_pending {
                return Err(GraphMatError::InvalidParameter(
                    "VectorKind::Dense forces the pull backend, which cannot traverse a \
                     snapshot with pending deltas; use Auto (or a push kind) until the \
                     store compacts",
                ));
            }
            if !topology.has_pull_mirrors() {
                return Err(GraphMatError::MissingPullMirror);
            }
            Backend::Pull
        }
        MessageStore::Auto { .. } => {
            if !overlay_pending && topology.has_pull_mirrors() {
                let frontier_edges =
                    frontier_out_edges(view, state, direction, active_count, executor);
                let unexplored =
                    direction_edge_total(view, direction).saturating_sub(explored_edges);
                choose_backend(
                    frontier_edges,
                    unexplored,
                    active_count,
                    n,
                    options.pull_alpha,
                )
            } else {
                Backend::Push
            }
        }
    };

    // --- SEND_MESSAGE: build the message vector from active vertices, in
    // the representation the chosen backend reads.
    let send_start = Instant::now();
    let (messages_sent, edges_processed) = match (&mut ws.messages, backend) {
        (MessageStore::Bitvector(mv), _) => {
            send_frontier(view, state, program, direction, executor, active_count, mv)
        }
        (MessageStore::Sorted(sv), _) => {
            sv.clear();
            send_sequential(view, state, program, direction, sv)
        }
        (MessageStore::Dense(dv), _) | (MessageStore::Auto { pull: dv, .. }, Backend::Pull) => {
            send_frontier(view, state, program, direction, executor, active_count, dv)
        }
        (MessageStore::Auto { push: mv, .. }, Backend::Push) => {
            send_frontier(view, state, program, direction, executor, active_count, mv)
        }
    };
    let send_time = send_start.elapsed();

    // --- Generalized SpMV (Algorithm 1): sparse push or dense pull.
    let spmv_start = Instant::now();
    let Workspace {
        messages,
        reduced,
        scratch,
        ..
    } = ws;
    match (&*messages, backend) {
        (MessageStore::Bitvector(mv), _) => spmv_phase(
            view, state, program, options, executor, mv, reduced, scratch,
        )?,
        (MessageStore::Sorted(sv), _) => spmv_phase(
            view, state, program, options, executor, sv, reduced, scratch,
        )?,
        (MessageStore::Dense(dv), _) | (MessageStore::Auto { pull: dv, .. }, Backend::Pull) => {
            pull_spmv_phase(
                topology, state, program, options, executor, dv, reduced, scratch,
            )?
        }
        (MessageStore::Auto { push: mv, .. }, Backend::Push) => spmv_phase(
            view, state, program, options, executor, mv, reduced, scratch,
        )?,
    }
    let spmv_time = spmv_start.elapsed();

    Ok(SuperstepMetrics {
        messages_sent,
        edges_processed,
        backend,
        send_time,
        spmv_time,
    })
}

/// Total edges a program of the given direction could ever traverse — the
/// denominator of the selector's unexplored-edge estimate. Reads the view's
/// merged edge count, so pending deltas are counted.
fn direction_edge_total<E>(view: GraphView<'_, E>, direction: EdgeDirection) -> u64 {
    match direction {
        EdgeDirection::Out | EdgeDirection::In => view.num_edges() as u64,
        EdgeDirection::Both => 2 * view.num_edges() as u64,
    }
}

/// Out-edge count of the current active set in the scatter direction —
/// Beamer's `m_f`. One degree-array read per active vertex; skipped entirely
/// when every vertex is active (then it is just the direction's edge total,
/// the PageRank-every-superstep case). Large frontiers are scanned in
/// parallel over active-bitvector words with the same cutoff SEND uses, so
/// the selector's pre-scan can never dominate the phase it is sizing.
fn frontier_out_edges<E: Sync, V: Sync>(
    view: GraphView<'_, E>,
    state: &VertexState<V>,
    direction: EdgeDirection,
    active_count: usize,
    executor: &Executor,
) -> u64 {
    if active_count == view.num_vertices() as usize {
        return direction_edge_total(view, direction);
    }
    let active = state.active_bits();
    if executor.nthreads() == 1 || active_count < PARALLEL_PHASE_MIN_WORK {
        return active
            .iter_ones()
            .map(|v| edges_for(view, direction, v as VertexId))
            .sum();
    }
    let ch = chunks(active.words().len(), executor.nthreads() * 4);
    let total = AtomicU64::new(0);
    executor.for_each_dynamic(ch.count(), |chunk_idx| {
        let (word_start, word_end) = ch.bounds(chunk_idx);
        let mut local = 0u64;
        for v in active.iter_ones_in_words(word_start, word_end) {
            local += edges_for(view, direction, v as VertexId);
        }
        total.fetch_add(local, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed)
}

/// How many edges a message from `v` will traverse, given the scatter
/// direction — the SEND loop reads only the degree array(s) the direction
/// requires. The view resolves to the merged degrees when deltas are
/// pending, so `edges_processed` metrics always describe the edited graph.
#[inline(always)]
fn edges_for<E>(view: GraphView<'_, E>, direction: EdgeDirection, v: VertexId) -> u64 {
    match direction {
        EdgeDirection::Out => view.out_degrees()[v as usize] as u64,
        EdgeDirection::In => view.in_degrees()[v as usize] as u64,
        EdgeDirection::Both => {
            view.out_degrees()[v as usize] as u64 + view.in_degrees()[v as usize] as u64
        }
    }
}

/// A sparse vector the engine can build messages into sequentially.
trait BuildableVector<T>: MessageVector<T> + Sync {
    fn insert(&mut self, i: Index, value: T);
}

impl<T: Clone + Default + Sync> BuildableVector<T> for SparseVector<T> {
    fn insert(&mut self, i: Index, value: T) {
        self.set(i, value);
    }
}

impl<T: Clone + Sync> BuildableVector<T> for SortedSparseVector<T> {
    fn insert(&mut self, i: Index, value: T) {
        self.set(i, value);
    }
}

impl<T: Clone + Default + Sync> BuildableVector<T> for DenseVector<T> {
    fn insert(&mut self, i: Index, value: T) {
        self.set(i, value);
    }
}

/// A message vector SEND can additionally populate in parallel over
/// word-aligned chunks of the active bit vector — the bitvector-backed push
/// store and the dense pull store share this shape, so one SEND
/// implementation serves both backends.
trait FrontierVector<T>: BuildableVector<T> {
    fn clear(&mut self);
    fn fill_words_parallel<F>(&mut self, executor: &Executor, f: F)
    where
        T: Send,
        F: Fn(&mut WordRangeWriter<'_, T>) + Sync;
}

impl<T: Clone + Default + Sync> FrontierVector<T> for SparseVector<T> {
    fn clear(&mut self) {
        SparseVector::clear(self);
    }

    fn fill_words_parallel<F>(&mut self, executor: &Executor, f: F)
    where
        T: Send,
        F: Fn(&mut WordRangeWriter<'_, T>) + Sync,
    {
        SparseVector::fill_words_parallel(self, executor, f)
    }
}

impl<T: Clone + Default + Sync> FrontierVector<T> for DenseVector<T> {
    fn clear(&mut self) {
        DenseVector::clear(self);
    }

    fn fill_words_parallel<F>(&mut self, executor: &Executor, f: F)
    where
        T: Send,
        F: Fn(&mut WordRangeWriter<'_, T>) + Sync,
    {
        DenseVector::fill_words_parallel(self, executor, f)
    }
}

/// Sequential SEND over the active set (already-cleared message vector).
fn send_sequential<P: GraphProgram, MV: BuildableVector<P::Message>>(
    view: GraphView<'_, P::Edge>,
    state: &VertexState<P::VertexProp>,
    program: &P,
    direction: EdgeDirection,
    messages: &mut MV,
) -> (usize, u64) {
    let props = state.properties();
    let mut sent = 0usize;
    let mut edges = 0u64;
    for v in state.active_bits().iter_ones() {
        let v = v as VertexId;
        if let Some(msg) = program.send_message(v, &props[v as usize]) {
            messages.insert(v, msg);
            sent += 1;
            edges += edges_for(view, direction, v);
        }
    }
    (sent, edges)
}

/// SEND into a word-fillable message vector (bitvector push store or dense
/// pull store): sequential for small frontiers, otherwise chunked over
/// active-bitvector words across the executor's lanes.
fn send_frontier<P: GraphProgram, MV: FrontierVector<P::Message>>(
    view: GraphView<'_, P::Edge>,
    state: &VertexState<P::VertexProp>,
    program: &P,
    direction: EdgeDirection,
    executor: &Executor,
    active_count: usize,
    messages: &mut MV,
) -> (usize, u64) {
    messages.clear();
    if executor.nthreads() == 1 || active_count < PARALLEL_PHASE_MIN_WORK {
        return send_sequential(view, state, program, direction, messages);
    }

    let props = state.properties();
    let active = state.active_bits();
    let sent = AtomicUsize::new(0);
    let edges = AtomicU64::new(0);
    messages.fill_words_parallel(executor, |writer| {
        let (word_start, word_end) = writer.word_range();
        let mut local_sent = 0usize;
        let mut local_edges = 0u64;
        for v in active.iter_ones_in_words(word_start, word_end) {
            let v = v as VertexId;
            if let Some(msg) = program.send_message(v, &props[v as usize]) {
                writer.set(v, msg);
                local_sent += 1;
                local_edges += edges_for(view, direction, v);
            }
        }
        sent.fetch_add(local_sent, Ordering::Relaxed);
        edges.fetch_add(local_edges, Ordering::Relaxed);
    });
    (sent.load(Ordering::Relaxed), edges.load(Ordering::Relaxed))
}

/// Run the push SpMV for the program's direction into the workspace buffers.
/// When the view carries a pending overlay, each direction's sweep runs the
/// merged `base ⊕ overlay` kernel against the overlay compiled for that
/// matrix — the `Both`-direction out-then-in merge through the scratch
/// vector is unchanged, so reduction order (and therefore bits) match a
/// from-scratch rebuild.
#[allow(clippy::too_many_arguments)]
fn spmv_phase<P, MV>(
    view: GraphView<'_, P::Edge>,
    state: &VertexState<P::VertexProp>,
    program: &P,
    options: &RunOptions,
    executor: &Executor,
    messages: &MV,
    reduced: &mut SparseVector<P::Reduced>,
    scratch: &mut Option<SparseVector<P::Reduced>>,
) -> Result<()>
where
    P: GraphProgram,
    MV: MessageVector<P::Message> + Sync,
{
    let topology = view.topology();
    let props = state.properties();
    match program.direction() {
        EdgeDirection::Out => run_spmv_into(
            topology.out_matrix(),
            view.out_kernel_overlay(),
            messages,
            program,
            props,
            options.dispatch,
            executor,
            reduced,
        ),
        EdgeDirection::In => run_spmv_into(
            in_matrix(topology)?,
            view.in_kernel_overlay(),
            messages,
            program,
            props,
            options.dispatch,
            executor,
            reduced,
        ),
        EdgeDirection::Both => {
            run_spmv_into(
                topology.out_matrix(),
                view.out_kernel_overlay(),
                messages,
                program,
                props,
                options.dispatch,
                executor,
                reduced,
            );
            let scratch =
                scratch.get_or_insert_with(|| SparseVector::new(topology.num_vertices() as usize));
            run_spmv_into(
                in_matrix(topology)?,
                view.in_kernel_overlay(),
                messages,
                program,
                props,
                options.dispatch,
                executor,
                scratch,
            );
            merge_scratch(program, scratch, reduced);
        }
    }
    Ok(())
}

/// Run the dense-pull SpMV for the program's direction into the workspace
/// buffers. Phase structure (and therefore reduction order) matches
/// [`spmv_phase`] exactly — including the `Both`-direction out-then-in merge
/// through the scratch vector — so push and pull stay bit-for-bit identical.
#[allow(clippy::too_many_arguments)]
fn pull_spmv_phase<P>(
    topology: &Topology<P::Edge>,
    state: &VertexState<P::VertexProp>,
    program: &P,
    options: &RunOptions,
    executor: &Executor,
    messages: &DenseVector<P::Message>,
    reduced: &mut SparseVector<P::Reduced>,
    scratch: &mut Option<SparseVector<P::Reduced>>,
) -> Result<()>
where
    P: GraphProgram,
{
    let props = state.properties();
    match program.direction() {
        EdgeDirection::Out => run_pull_into(
            out_pull_mirror(topology)?,
            messages,
            program,
            props,
            options.dispatch,
            executor,
            reduced,
        ),
        EdgeDirection::In => run_pull_into(
            in_pull_mirror(topology)?,
            messages,
            program,
            props,
            options.dispatch,
            executor,
            reduced,
        ),
        EdgeDirection::Both => {
            run_pull_into(
                out_pull_mirror(topology)?,
                messages,
                program,
                props,
                options.dispatch,
                executor,
                reduced,
            );
            let scratch =
                scratch.get_or_insert_with(|| SparseVector::new(topology.num_vertices() as usize));
            run_pull_into(
                in_pull_mirror(topology)?,
                messages,
                program,
                props,
                options.dispatch,
                executor,
                scratch,
            );
            merge_scratch(program, scratch, reduced);
        }
    }
    Ok(())
}

/// Fold the `Both`-direction second output (in-edge traversal) into the
/// primary reduced vector with the program's REDUCE.
fn merge_scratch<P: GraphProgram>(
    program: &P,
    scratch: &SparseVector<P::Reduced>,
    reduced: &mut SparseVector<P::Reduced>,
) {
    for (k, v) in scratch.iter() {
        reduced.merge(k, v.clone(), |acc, value| program.reduce(acc, value));
    }
}

fn in_matrix<E>(topology: &Topology<E>) -> Result<&PartitionedDcsc<E>> {
    topology.in_matrix().ok_or(GraphMatError::MissingInMatrix)
}

fn out_pull_mirror<E>(topology: &Topology<E>) -> Result<&CsrMirror<E>> {
    topology
        .out_pull_mirror()
        .ok_or(GraphMatError::MissingPullMirror)
}

fn in_pull_mirror<E>(topology: &Topology<E>) -> Result<&CsrMirror<E>> {
    // An In/Both program needs the in-edge matrix before a mirror of it can
    // even exist; report the more fundamental problem first.
    if topology.in_matrix().is_none() {
        return Err(GraphMatError::MissingInMatrix);
    }
    topology
        .in_pull_mirror()
        .ok_or(GraphMatError::MissingPullMirror)
}

/// Run the generalized SpMV with either static (monomorphised, inlinable)
/// dispatch of the user callbacks or dynamic (`dyn Fn`) dispatch, the latter
/// modelling the paper's "without -ipo" configuration for Figure 7. With an
/// overlay present the merged `base ⊕ overlay` kernel runs instead of the
/// plain one — same multiply/add closures, same per-destination reduction
/// order.
#[allow(clippy::too_many_arguments)]
fn run_spmv_into<P, MV>(
    matrix: &PartitionedDcsc<P::Edge>,
    overlay: Option<&Overlay<P::Edge>>,
    messages: &MV,
    program: &P,
    props: &[P::VertexProp],
    dispatch: DispatchMode,
    executor: &Executor,
    reduced: &mut SparseVector<P::Reduced>,
) where
    P: GraphProgram,
    MV: MessageVector<P::Message> + Sync,
{
    match dispatch {
        DispatchMode::Static => {
            let multiply = |msg: &P::Message, edge: &P::Edge, dst: Index| {
                program.process_message(msg, edge, &props[dst as usize])
            };
            let add = |acc: &mut P::Reduced, value: P::Reduced| program.reduce(acc, value);
            match overlay {
                None => gspmv_into(matrix, messages, &multiply, &add, executor, reduced),
                Some(ov) => {
                    gspmv_overlay_into(matrix, ov, messages, &multiply, &add, executor, reduced)
                }
            }
        }
        DispatchMode::Dynamic => {
            // Route every callback invocation through a trait object so the
            // optimiser cannot inline the user code into the SpMV kernel.
            #[allow(clippy::type_complexity)]
            let process: &(dyn Fn(&P::Message, &P::Edge, &P::VertexProp) -> P::Reduced
                  + Sync) = &|m, e, d| program.process_message(m, e, d);
            let reduce: &(dyn Fn(&mut P::Reduced, P::Reduced) + Sync) =
                &|acc, v| program.reduce(acc, v);
            let multiply = |msg: &P::Message, edge: &P::Edge, dst: Index| {
                process(msg, edge, &props[dst as usize])
            };
            let add = |acc: &mut P::Reduced, value: P::Reduced| reduce(acc, value);
            match overlay {
                None => gspmv_into(matrix, messages, &multiply, &add, executor, reduced),
                Some(ov) => {
                    gspmv_overlay_into(matrix, ov, messages, &multiply, &add, executor, reduced)
                }
            }
        }
    }
}

/// Run the dense-pull SpMV with static or dynamic dispatch of the user
/// callbacks (same Figure 7 ablation semantics as [`run_spmv_into`]).
fn run_pull_into<P>(
    mirror: &CsrMirror<P::Edge>,
    messages: &DenseVector<P::Message>,
    program: &P,
    props: &[P::VertexProp],
    dispatch: DispatchMode,
    executor: &Executor,
    reduced: &mut SparseVector<P::Reduced>,
) where
    P: GraphProgram,
{
    match dispatch {
        DispatchMode::Static => gspmv_csr_pull_into(
            mirror,
            messages,
            &|msg: &P::Message, edge: &P::Edge, dst: Index| {
                program.process_message(msg, edge, &props[dst as usize])
            },
            &|acc: &mut P::Reduced, value: P::Reduced| program.reduce(acc, value),
            executor,
            reduced,
        ),
        DispatchMode::Dynamic => {
            #[allow(clippy::type_complexity)]
            let process: &(dyn Fn(&P::Message, &P::Edge, &P::VertexProp) -> P::Reduced
                  + Sync) = &|m, e, d| program.process_message(m, e, d);
            let reduce: &(dyn Fn(&mut P::Reduced, P::Reduced) + Sync) =
                &|acc, v| program.reduce(acc, v);
            gspmv_csr_pull_into(
                mirror,
                messages,
                &|msg: &P::Message, edge: &P::Edge, dst: Index| {
                    process(msg, edge, &props[dst as usize])
                },
                &|acc: &mut P::Reduced, value: P::Reduced| reduce(acc, value),
                executor,
                reduced,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, GraphBuildOptions};
    use graphmat_io::edgelist::EdgeList;

    /// SSSP as in the paper's Figure 3 / appendix.
    struct Sssp;

    impl GraphProgram for Sssp {
        type VertexProp = f32;
        type Message = f32;
        type Reduced = f32;
        type Edge = f32;

        fn send_message(&self, _v: VertexId, dist: &f32) -> Option<f32> {
            Some(*dist)
        }

        fn process_message(&self, msg: &f32, edge: &f32, _dst: &f32) -> f32 {
            msg + edge
        }

        fn reduce(&self, acc: &mut f32, value: f32) {
            if value < *acc {
                *acc = value;
            }
        }

        fn apply(&self, reduced: &f32, dist: &mut f32) {
            if *reduced < *dist {
                *dist = *reduced;
            }
        }
    }

    fn figure3_graph() -> Graph<f32> {
        // Figure 3(a): A=0,B=1,C=2,D=3,E=4. Pull mirrors on, so the same
        // graph serves the push and pull backend tests.
        let el = EdgeList::from_tuples(
            5,
            vec![
                (0, 1, 1.0),
                (0, 2, 3.0),
                (0, 3, 2.0),
                (1, 2, 1.0),
                (2, 3, 2.0),
                (3, 4, 2.0),
                (4, 0, 4.0),
            ],
        );
        Graph::from_edge_list(
            &el,
            GraphBuildOptions::default()
                .with_partitions(2)
                .with_pull_mirrors(true),
        )
    }

    #[test]
    fn figure3_first_superstep() {
        let mut g = figure3_graph();
        g.set_all_properties(f32::MAX);
        g.set_property(0, 0.0);
        g.set_active(0);
        let out = superstep(
            g.topology(),
            g.state(),
            &Sssp,
            &RunOptions::sequential(),
            &Executor::sequential(),
        )
        .unwrap();
        assert_eq!(out.messages_sent, 1);
        assert_eq!(out.edges_processed, 3);
        assert_eq!(out.backend, Backend::Push);
        assert_eq!(out.reduced.to_entries(), vec![(1, 1.0), (2, 3.0), (3, 2.0)]);
    }

    #[test]
    fn dispatch_modes_agree() {
        let mut g = figure3_graph();
        g.set_all_properties(f32::MAX);
        g.set_property(0, 0.0);
        g.set_all_active();
        let executor = Executor::new(2);
        let fast = superstep(
            g.topology(),
            g.state(),
            &Sssp,
            &RunOptions::default().with_dispatch(DispatchMode::Static),
            &executor,
        )
        .unwrap();
        let slow = superstep(
            g.topology(),
            g.state(),
            &Sssp,
            &RunOptions::default().with_dispatch(DispatchMode::Dynamic),
            &executor,
        )
        .unwrap();
        assert_eq!(fast.reduced.to_entries(), slow.reduced.to_entries());

        // The same ablation must hold on the pull backend.
        let pull_fast = superstep(
            g.topology(),
            g.state(),
            &Sssp,
            &RunOptions::default()
                .with_vector(VectorKind::Dense)
                .with_dispatch(DispatchMode::Static),
            &executor,
        )
        .unwrap();
        let pull_slow = superstep(
            g.topology(),
            g.state(),
            &Sssp,
            &RunOptions::default()
                .with_vector(VectorKind::Dense)
                .with_dispatch(DispatchMode::Dynamic),
            &executor,
        )
        .unwrap();
        assert_eq!(pull_fast.backend, Backend::Pull);
        assert_eq!(pull_fast.reduced.to_entries(), fast.reduced.to_entries());
        assert_eq!(pull_slow.reduced.to_entries(), fast.reduced.to_entries());
    }

    #[test]
    fn vector_kinds_agree() {
        let mut g = figure3_graph();
        g.set_all_properties(f32::MAX);
        g.set_property(0, 0.0);
        g.set_all_active();
        let executor = Executor::sequential();
        let run = |kind: VectorKind| {
            superstep(
                g.topology(),
                g.state(),
                &Sssp,
                &RunOptions::default().with_vector(kind),
                &executor,
            )
            .unwrap()
        };
        let bitvec = run(VectorKind::Bitvector);
        let sorted = run(VectorKind::Sorted);
        let dense = run(VectorKind::Dense);
        let auto = run(VectorKind::Auto);
        assert_eq!(bitvec.reduced.to_entries(), sorted.reduced.to_entries());
        assert_eq!(bitvec.reduced.to_entries(), dense.reduced.to_entries());
        assert_eq!(bitvec.reduced.to_entries(), auto.reduced.to_entries());
        assert_eq!(dense.backend, Backend::Pull);
    }

    #[test]
    fn forced_dense_without_mirrors_is_an_error() {
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let mut g: Graph<f32> = Graph::from_edge_list(
            &el,
            GraphBuildOptions::default()
                .with_pull_mirrors(false)
                .with_partitions(1),
        );
        g.set_all_active();
        let err = superstep(
            g.topology(),
            g.state(),
            &Sssp,
            &RunOptions::sequential().with_vector(VectorKind::Dense),
            &Executor::sequential(),
        )
        .unwrap_err();
        assert_eq!(err, crate::error::GraphMatError::MissingPullMirror);
    }

    #[test]
    fn auto_without_mirrors_degrades_to_push() {
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let mut g: Graph<f32> = Graph::from_edge_list(
            &el,
            GraphBuildOptions::default()
                .with_pull_mirrors(false)
                .with_partitions(1),
        );
        g.set_all_properties(0.0);
        g.set_all_active();
        let out = superstep(
            g.topology(),
            g.state(),
            &Sssp,
            &RunOptions::sequential().with_vector(VectorKind::Auto),
            &Executor::sequential(),
        )
        .unwrap();
        // A fully-dense frontier would normally pull; without mirrors the
        // selector must settle for push and still produce the right answer.
        assert_eq!(out.backend, Backend::Push);
        assert_eq!(out.reduced.to_entries(), vec![(1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn selector_follows_the_beamer_rule() {
        // Heavy frontier + broad frontier → pull.
        assert_eq!(choose_backend(1000, 1000, 500, 1000, 14.0), Backend::Pull);
        // Heavy frontier but tiny active set (BFS tail) → push (β guard).
        assert_eq!(choose_backend(1000, 0, 10, 1000, 14.0), Backend::Push);
        // Light frontier (BFS start) → push.
        assert_eq!(choose_backend(3, 10_000, 500, 1000, 14.0), Backend::Push);
        // α tunes the switch point: the same frontier pulls with a large α
        // and pushes with a small one.
        assert_eq!(choose_backend(100, 10_000, 500, 1000, 200.0), Backend::Pull);
        assert_eq!(choose_backend(100, 10_000, 500, 1000, 2.0), Backend::Push);
    }

    #[test]
    fn workspace_reuse_across_supersteps_matches_fresh_outputs() {
        let mut g = figure3_graph();
        g.set_all_properties(f32::MAX);
        g.set_property(0, 0.0);
        g.set_all_active();
        let options = RunOptions::default();
        let executor = Executor::new(2);
        let mut ws = Workspace::<Sssp>::new(g.num_vertices() as usize, &options);
        for _ in 0..3 {
            let fresh = superstep(g.topology(), g.state(), &Sssp, &options, &executor).unwrap();
            let metrics = superstep_into(
                g.topology(),
                g.state(),
                &Sssp,
                &options,
                &executor,
                g.active_count(),
                0,
                &mut ws,
            )
            .unwrap();
            assert_eq!(metrics.messages_sent, fresh.messages_sent);
            assert_eq!(metrics.edges_processed, fresh.edges_processed);
            assert_eq!(ws.reduced().to_entries(), fresh.reduced.to_entries());
        }
    }

    #[test]
    fn workspace_compatibility_checks_length_and_kind() {
        let bitvec_opts = RunOptions::default();
        let sorted_opts = RunOptions::default().with_vector(VectorKind::Sorted);
        let dense_opts = RunOptions::default().with_vector(VectorKind::Dense);
        let auto_opts = RunOptions::default().with_vector(VectorKind::Auto);
        let ws = Workspace::<Sssp>::new(16, &bitvec_opts);
        assert!(ws.is_compatible(16, &bitvec_opts));
        assert!(!ws.is_compatible(17, &bitvec_opts));
        assert!(!ws.is_compatible(16, &sorted_opts));
        assert!(!ws.is_compatible(16, &dense_opts));
        assert!(!ws.is_compatible(16, &auto_opts));
        let ws2 = Workspace::<Sssp>::new(16, &sorted_opts);
        assert!(ws2.is_compatible(16, &sorted_opts));
        let ws3 = Workspace::<Sssp>::new(16, &dense_opts);
        assert!(ws3.is_compatible(16, &dense_opts));
        assert!(!ws3.is_compatible(16, &auto_opts));
        let ws4 = Workspace::<Sssp>::new(16, &auto_opts);
        assert!(ws4.is_compatible(16, &auto_opts));
        assert!(!ws4.is_compatible(16, &bitvec_opts));
    }

    /// A program that scatters along in-edges: each vertex tells its
    /// *in-neighbours* (sources of its incoming edges) its id.
    struct InDegreeLike;

    impl GraphProgram for InDegreeLike {
        type VertexProp = u32;
        type Message = u32;
        type Reduced = u32;
        type Edge = f32;

        fn direction(&self) -> EdgeDirection {
            EdgeDirection::In
        }

        fn send_message(&self, v: VertexId, _p: &u32) -> Option<u32> {
            Some(v)
        }

        fn process_message(&self, _m: &u32, _e: &f32, _d: &u32) -> u32 {
            1
        }

        fn reduce(&self, acc: &mut u32, v: u32) {
            *acc += v;
        }

        fn apply(&self, r: &u32, p: &mut u32) {
            *p = *r;
        }
    }

    #[test]
    fn in_direction_counts_out_degrees() {
        // Scattering along in-edges delivers, to each vertex, one message per
        // out-edge it has (y = G·x with x = all ones).
        let mut g: Graph<u32> = {
            let el =
                EdgeList::from_tuples(4, vec![(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
            Graph::from_edge_list(&el, GraphBuildOptions::default().with_partitions(2))
        };
        g.set_all_active();
        let out = superstep(
            g.topology(),
            g.state(),
            &InDegreeLike,
            &RunOptions::sequential(),
            &Executor::sequential(),
        )
        .unwrap();
        assert_eq!(out.reduced.get(0), Some(&2)); // vertex 0 has 2 out-edges
        assert_eq!(out.reduced.get(1), Some(&1));
        assert_eq!(out.reduced.get(2), Some(&1));
        assert_eq!(out.reduced.get(3), None); // no out-edges
    }

    #[test]
    fn in_direction_counts_only_in_degrees_for_edges_processed() {
        // Satellite bugfix: SEND must account only the degree array the
        // direction requires. Vertex 0 here has 2 out-edges and 0 in-edges;
        // an In-direction program sending from {0} therefore processes 0
        // edges (the old code read both arrays and, for Out, still did two
        // degree lookups per sender).
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let mut g: Graph<u32> =
            Graph::from_edge_list(&el, GraphBuildOptions::default().with_partitions(1));
        g.set_all_active();
        let out = superstep(
            g.topology(),
            g.state(),
            &InDegreeLike,
            &RunOptions::sequential(),
            &Executor::sequential(),
        )
        .unwrap();
        // in-degrees: v0=0, v1=1, v2=2 → total 3 edges for an In program
        assert_eq!(out.edges_processed, 3);
    }

    #[test]
    fn in_direction_without_in_matrix_is_an_error_not_a_panic() {
        // Satellite bugfix: the engine used to hit an `expect` here even
        // though the runner's entry point returns Result — the missing
        // matrix is now a typed error on every core path, before SEND does
        // any work (only the deprecated Graph facade still panics).
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0)]);
        let mut g: Graph<u32> = Graph::from_edge_list(
            &el,
            GraphBuildOptions::default()
                .with_in_edges(false)
                .with_partitions(1),
        );
        g.set_all_active();
        let err = superstep(
            g.topology(),
            g.state(),
            &InDegreeLike,
            &RunOptions::sequential(),
            &Executor::sequential(),
        )
        .unwrap_err();
        assert_eq!(err, crate::error::GraphMatError::MissingInMatrix);
    }

    #[test]
    #[should_panic(expected = "used with a topology of")]
    fn mismatched_state_is_rejected_with_diagnostics_in_release_too() {
        // A plain assert (not debug_assert): the split API makes this
        // pairing expressible, and it must not surface as a bare
        // slice-index panic inside SEND.
        let g = figure3_graph();
        let wrong: crate::state::VertexState<f32> = crate::state::VertexState::new(3);
        let _ = superstep(
            g.topology(),
            &wrong,
            &Sssp,
            &RunOptions::sequential(),
            &Executor::sequential(),
        );
    }

    #[test]
    fn inactive_graph_produces_no_work() {
        let g = figure3_graph();
        let out = superstep(
            g.topology(),
            g.state(),
            &Sssp,
            &RunOptions::sequential(),
            &Executor::sequential(),
        )
        .unwrap();
        assert_eq!(out.messages_sent, 0);
        assert_eq!(out.edges_processed, 0);
        assert_eq!(out.reduced.nnz(), 0);
    }
}
