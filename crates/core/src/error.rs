//! Error type for the fallible `Session`/`Topology`/`VertexState` frontend.
//!
//! The original seed API panicked on misuse — an out-of-range vertex id died
//! deep inside `Vec` indexing, an in-edge program on an out-only graph hit an
//! `expect`. The redesigned frontend returns [`GraphMatError`] from every
//! fallible path instead, so a serving layer embedding the engine can turn
//! bad queries into error responses rather than crashed workers. The
//! deprecated [`crate::graph::Graph`] facade keeps the panicking behaviour
//! for compatibility, but its panic messages now carry the same diagnostic
//! payload (vertex id and vertex count) as the typed errors.

use crate::program::VertexId;

/// Convenience alias used across the `Session` frontend.
pub type Result<T> = std::result::Result<T, GraphMatError>;

/// Everything that can go wrong when building a [`crate::topology::Topology`]
/// or running a vertex program through a [`crate::session::Session`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphMatError {
    /// A vertex id was outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the graph the id was used against.
        num_vertices: VertexId,
    },
    /// A thread count of zero was requested (e.g.
    /// `SessionOptions::threads == 0` passed explicitly).
    ZeroThreads,
    /// An iteration limit of zero supersteps was requested on a run builder.
    ZeroIterations,
    /// A topology build was attempted from an edge list with no edges.
    EmptyEdgeList,
    /// A [`crate::state::VertexState`] was used with a
    /// [`crate::topology::Topology`] of a different vertex count.
    StateLengthMismatch {
        /// Vertices the state was allocated for.
        state_vertices: usize,
        /// Vertices in the topology it was paired with.
        topology_vertices: usize,
    },
    /// The program scatters along in-edges but the topology was built with
    /// `build_in_edges = false`, so there is no `G` matrix to traverse.
    MissingInMatrix,
    /// A run forced the pull backend (`VectorKind::Dense`) but the topology
    /// was built with `build_pull_mirrors = false`, so there is no row-major
    /// CSR mirror to traverse. (`VectorKind::Auto` never reports this — it
    /// degrades to push when the mirrors are absent.)
    MissingPullMirror,
    /// An algorithm configuration value cannot drive a run (e.g. zero
    /// latent dimensions for collaborative filtering, a non-positive
    /// delta-PageRank tolerance). The payload names the parameter and the
    /// constraint it violated.
    InvalidParameter(&'static str),
    /// The store's pending-delta high-watermark
    /// ([`crate::store::StoreOptions::overload_watermark`]) was reached:
    /// compaction is not keeping up with ingest, so the write was rejected
    /// to shed load instead of growing the overlay without bound. Reads are
    /// unaffected — the last published snapshot keeps serving — and writes
    /// succeed again once compaction drains the backlog.
    Overloaded {
        /// Effective pending ops in the published overlay when the write
        /// arrived.
        pending: usize,
        /// The configured high-watermark that was hit.
        watermark: usize,
    },
    /// An internal invariant failed mid-operation (today: only
    /// chaos-injected faults from `graphmat-chaos` failpoints). The
    /// operation had no effect; the payload names the failure site.
    Internal(&'static str),
    /// The run's deadline ([`crate::options::RunOptions::deadline`]) passed
    /// before the program converged or hit its iteration limit. The deadline
    /// is checked between supersteps, so the overrun is at most one
    /// superstep long; the vertex state holds the partial results of the
    /// supersteps that did complete. A serving layer maps this to a
    /// per-request timeout response.
    DeadlineExceeded,
}

impl std::fmt::Display for GraphMatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphMatError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range: the graph has {num_vertices} vertices \
                 (valid ids are 0..{num_vertices})"
            ),
            GraphMatError::ZeroThreads => {
                write!(f, "a session needs at least one thread (got 0)")
            }
            GraphMatError::ZeroIterations => write!(
                f,
                "max_iterations must be at least 1 (use an unseeded run or skip the run \
                 entirely for zero supersteps)"
            ),
            GraphMatError::EmptyEdgeList => {
                write!(f, "cannot build a topology from an edge list with no edges")
            }
            GraphMatError::StateLengthMismatch {
                state_vertices,
                topology_vertices,
            } => write!(
                f,
                "vertex state sized for {state_vertices} vertices used with a topology \
                 of {topology_vertices} vertices"
            ),
            GraphMatError::MissingInMatrix => write!(
                f,
                "program scatters along in-edges but the topology was built with \
                 build_in_edges = false"
            ),
            GraphMatError::MissingPullMirror => write!(
                f,
                "run forces the pull backend (VectorKind::Dense) but the topology was \
                 built with build_pull_mirrors = false (use VectorKind::Auto to fall \
                 back to push, or rebuild the topology with pull mirrors)"
            ),
            GraphMatError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            GraphMatError::Overloaded { pending, watermark } => write!(
                f,
                "store overloaded: {pending} pending delta ops at or past the write \
                 high-watermark of {watermark}; the write was rejected (reads keep \
                 serving; retry after compaction drains the backlog)"
            ),
            GraphMatError::Internal(site) => write!(f, "internal error: {site}"),
            GraphMatError::DeadlineExceeded => write!(
                f,
                "run deadline exceeded before the program finished (the deadline is \
                 checked between supersteps; partial results remain in the vertex state)"
            ),
        }
    }
}

impl std::error::Error for GraphMatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_vertex_id_and_count() {
        let msg = GraphMatError::VertexOutOfRange {
            vertex: 99,
            num_vertices: 6,
        }
        .to_string();
        assert!(msg.contains("99"), "{msg}");
        assert!(msg.contains('6'), "{msg}");
    }

    #[test]
    fn display_includes_state_and_topology_lengths() {
        let msg = GraphMatError::StateLengthMismatch {
            state_vertices: 4,
            topology_vertices: 8,
        }
        .to_string();
        assert!(msg.contains('4') && msg.contains('8'), "{msg}");
    }

    #[test]
    fn errors_are_comparable_and_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(GraphMatError::ZeroThreads);
        assert!(!e.to_string().is_empty());
        assert_eq!(GraphMatError::EmptyEdgeList, GraphMatError::EmptyEdgeList);
        assert_ne!(GraphMatError::ZeroThreads, GraphMatError::ZeroIterations);
    }
}
