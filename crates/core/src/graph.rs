//! The graph container: vertex properties, active set, and the partitioned
//! adjacency matrices.
//!
//! A [`Graph`] owns
//!
//! * the transposed adjacency matrix `Gᵀ` split into 1-D row partitions of
//!   DCSC (paper §4.4.1) — this is what out-edge message scattering multiplies
//!   against, because `y = Gᵀ·x` delivers each source's message to the rows
//!   (destinations) of its out-edges;
//! * optionally the non-transposed matrix `G` for in-edge scattering;
//! * one user-defined property value per vertex;
//! * the active-vertex bit vector (paper §4.3: "the set of active vertices is
//!   maintained using a boolean array for performance reasons").
//!
//! The number of partitions defaults to `8 × available threads`, matching the
//! `nthreads * 8` choice in the paper's appendix listing, and partitions are
//! balanced by edge count to keep the skewed RMAT/social graphs from
//! serialising on one heavy partition.

use crate::program::VertexId;
use graphmat_io::edgelist::EdgeList;
use graphmat_sparse::bitvec::{AtomicBitVec, BitVec};
use graphmat_sparse::parallel::available_threads;
use graphmat_sparse::partition::{PartitionedDcsc, RowPartitioner};

/// Options controlling graph construction.
#[derive(Clone, Copy, Debug)]
pub struct GraphBuildOptions {
    /// Number of matrix partitions; `0` picks `partition_factor × threads`.
    pub num_partitions: usize,
    /// Multiplier applied to the thread count when `num_partitions == 0`
    /// (the paper uses 8).
    pub partition_factor: usize,
    /// Balance partitions by edge count (`true`, the paper's load-balancing
    /// optimization) or split rows evenly (`false`, the naive layout used as
    /// the Figure 7 baseline).
    pub balance_partitions: bool,
    /// Also build the non-transposed matrix so programs can scatter along
    /// in-edges ([`crate::program::EdgeDirection::In`] / `Both`).
    pub build_in_edges: bool,
}

impl Default for GraphBuildOptions {
    fn default() -> Self {
        GraphBuildOptions {
            num_partitions: 0,
            partition_factor: 8,
            balance_partitions: true,
            build_in_edges: true,
        }
    }
}

impl GraphBuildOptions {
    /// Explicitly set the number of partitions.
    pub fn with_partitions(mut self, n: usize) -> Self {
        self.num_partitions = n;
        self
    }

    /// Enable or disable nnz-balanced partitioning.
    pub fn with_balancing(mut self, balance: bool) -> Self {
        self.balance_partitions = balance;
        self
    }

    /// Enable or disable construction of the in-edge matrix.
    pub fn with_in_edges(mut self, build: bool) -> Self {
        self.build_in_edges = build;
        self
    }

    fn effective_partitions(&self) -> usize {
        if self.num_partitions == 0 {
            (self.partition_factor.max(1)) * available_threads()
        } else {
            self.num_partitions
        }
    }
}

/// A graph prepared for GraphMat execution, with vertex properties of type
/// `V` and edge values of type `E` (`f32` by default; `()` for unweighted
/// graphs, whose matrices then store no edge value bytes at all).
#[derive(Clone, Debug)]
pub struct Graph<V, E = f32> {
    nvertices: VertexId,
    nedges: usize,
    /// `Gᵀ`: row = destination, column = source. Used for out-edge scatter.
    out_matrix: PartitionedDcsc<E>,
    /// `G`: row = source, column = destination. Used for in-edge scatter.
    in_matrix: Option<PartitionedDcsc<E>>,
    out_degrees: Vec<u32>,
    in_degrees: Vec<u32>,
    properties: Vec<V>,
    active: BitVec,
}

impl<V: Clone + Default, E: Clone> Graph<V, E> {
    /// Build a graph from an edge list, initialising every vertex property to
    /// `V::default()` and every vertex to inactive. The edge value type of
    /// the edge list carries over into the DCSC matrices unchanged.
    pub fn from_edge_list(edges: &EdgeList<E>, options: GraphBuildOptions) -> Self {
        let n = edges.num_vertices();
        let nparts = options.effective_partitions().max(1);

        let transpose_coo = edges.to_transpose_coo();
        let out_matrix = if options.balance_partitions {
            let ranges = RowPartitioner::balanced_nnz(&transpose_coo.row_counts(), nparts);
            PartitionedDcsc::from_coo(&transpose_coo, &ranges)
        } else {
            PartitionedDcsc::from_coo_even(&transpose_coo, nparts)
        };

        let in_matrix = if options.build_in_edges {
            let adj_coo = edges.to_adjacency_coo();
            Some(if options.balance_partitions {
                let ranges = RowPartitioner::balanced_nnz(&adj_coo.row_counts(), nparts);
                PartitionedDcsc::from_coo(&adj_coo, &ranges)
            } else {
                PartitionedDcsc::from_coo_even(&adj_coo, nparts)
            })
        } else {
            None
        };

        let out_degrees: Vec<u32> = edges.out_degrees().into_iter().map(|d| d as u32).collect();
        let in_degrees: Vec<u32> = edges.in_degrees().into_iter().map(|d| d as u32).collect();

        Graph {
            nvertices: n,
            nedges: edges.num_edges(),
            out_matrix,
            in_matrix,
            out_degrees,
            in_degrees,
            properties: vec![V::default(); n as usize],
            active: BitVec::new(n as usize),
        }
    }
}

impl<V, E> Graph<V, E> {
    /// Number of vertices.
    pub fn num_vertices(&self) -> VertexId {
        self.nvertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.nedges
    }

    /// Out-degree of vertex `v`.
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.out_degrees[v as usize]
    }

    /// In-degree of vertex `v`.
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.in_degrees[v as usize]
    }

    /// All out-degrees (indexed by vertex id).
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }

    /// All in-degrees (indexed by vertex id).
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degrees
    }

    /// The partitioned `Gᵀ` used for out-edge traversal.
    pub fn out_matrix(&self) -> &PartitionedDcsc<E> {
        &self.out_matrix
    }

    /// The partitioned `G` used for in-edge traversal, if it was built.
    pub fn in_matrix(&self) -> Option<&PartitionedDcsc<E>> {
        self.in_matrix.as_ref()
    }

    /// Number of matrix partitions.
    pub fn num_partitions(&self) -> usize {
        self.out_matrix.n_partitions()
    }

    /// Total in-memory footprint of the adjacency matrices in bytes,
    /// including stored edge values. For `E = ()` this is pure index cost —
    /// the visible payoff of the unweighted fast path.
    pub fn matrix_bytes(&self) -> usize {
        self.out_matrix.bytes() + self.in_matrix.as_ref().map_or(0, |m| m.bytes())
    }

    // ---- vertex properties -------------------------------------------------

    /// Read the property of vertex `v`.
    pub fn property(&self, v: VertexId) -> &V {
        &self.properties[v as usize]
    }

    /// Write the property of vertex `v`.
    pub fn set_property(&mut self, v: VertexId, value: V) {
        self.properties[v as usize] = value;
    }

    /// Set every vertex's property to `value`.
    pub fn set_all_properties(&mut self, value: V)
    where
        V: Clone,
    {
        self.properties.iter_mut().for_each(|p| *p = value.clone());
    }

    /// Initialise every vertex's property from a function of its id.
    pub fn init_properties(&mut self, mut f: impl FnMut(VertexId) -> V) {
        for v in 0..self.nvertices {
            self.properties[v as usize] = f(v);
        }
    }

    /// Read-only view of all vertex properties (indexed by vertex id).
    pub fn properties(&self) -> &[V] {
        &self.properties
    }

    /// Mutable view of all vertex properties.
    pub fn properties_mut(&mut self) -> &mut [V] {
        &mut self.properties
    }

    // ---- active set ---------------------------------------------------------

    /// Mark vertex `v` active for the next superstep.
    pub fn set_active(&mut self, v: VertexId) {
        self.active.set(v as usize);
    }

    /// Mark vertex `v` inactive.
    pub fn set_inactive(&mut self, v: VertexId) {
        self.active.clear(v as usize);
    }

    /// Mark every vertex active (e.g. PageRank's first iteration).
    pub fn set_all_active(&mut self) {
        self.active.set_all();
    }

    /// Mark every vertex inactive.
    pub fn clear_active(&mut self) {
        self.active.clear_all();
    }

    /// Is vertex `v` currently active?
    pub fn is_active(&self, v: VertexId) -> bool {
        self.active.get(v as usize)
    }

    /// Number of currently active vertices.
    pub fn active_count(&self) -> usize {
        self.active.count_ones()
    }

    /// The active-set bit vector.
    pub fn active_bits(&self) -> &BitVec {
        &self.active
    }

    /// Overwrite the active set from the concurrently-built next-superstep
    /// bit vector, reusing the existing storage (used by the runner between
    /// supersteps; no allocation).
    pub(crate) fn load_active_from(&mut self, src: &AtomicBitVec) {
        self.active.load_from(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> Graph<f32> {
        let el = EdgeList::from_tuples(
            4,
            vec![
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 2, 3.0),
                (2, 3, 4.0),
                (3, 0, 5.0),
            ],
        );
        Graph::from_edge_list(&el, GraphBuildOptions::default().with_partitions(2))
    }

    #[test]
    fn construction_counts() {
        let g = small_graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.num_partitions(), 2);
        assert_eq!(g.out_matrix().nnz(), 5);
        assert_eq!(g.in_matrix().unwrap().nnz(), 5);
    }

    #[test]
    fn degrees_match_edge_list() {
        let g = small_graph();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.in_degree(1), 1);
        assert_eq!(g.out_degrees().len(), 4);
    }

    #[test]
    fn transpose_orientation_is_correct() {
        let g = small_graph();
        // edge 0 -> 1 must appear in Gᵀ as (row=1, col=0)
        assert!(g.out_matrix().iter().any(|(r, c, _)| r == 1 && c == 0));
        // and in G as (row=0, col=1)
        assert!(g
            .in_matrix()
            .unwrap()
            .iter()
            .any(|(r, c, _)| r == 0 && c == 1));
    }

    #[test]
    fn properties_lifecycle() {
        let mut g = small_graph();
        assert_eq!(*g.property(0), 0.0);
        g.set_all_properties(7.0);
        assert!(g.properties().iter().all(|&p| p == 7.0));
        g.set_property(2, 1.5);
        assert_eq!(*g.property(2), 1.5);
        g.init_properties(|v| v as f32);
        assert_eq!(*g.property(3), 3.0);
        g.properties_mut()[1] = 9.0;
        assert_eq!(*g.property(1), 9.0);
    }

    #[test]
    fn active_set_lifecycle() {
        let mut g = small_graph();
        assert_eq!(g.active_count(), 0);
        g.set_active(1);
        g.set_active(3);
        assert!(g.is_active(1));
        assert!(!g.is_active(0));
        assert_eq!(g.active_count(), 2);
        g.set_inactive(1);
        assert_eq!(g.active_count(), 1);
        g.set_all_active();
        assert_eq!(g.active_count(), 4);
        g.clear_active();
        assert_eq!(g.active_count(), 0);
    }

    #[test]
    fn in_edges_can_be_skipped() {
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let g: Graph<u32> =
            Graph::from_edge_list(&el, GraphBuildOptions::default().with_in_edges(false));
        assert!(g.in_matrix().is_none());
    }

    #[test]
    fn default_partition_count_scales_with_threads() {
        // a graph with plenty of rows so the balanced partitioner can hit the
        // requested 8 × threads partition count
        let n = 4096u32;
        let el = EdgeList::from_pairs(n, (0..n - 1).map(|v| (v, v + 1)));
        let g: Graph<u32, ()> = Graph::from_edge_list(&el, GraphBuildOptions::default());
        assert!(g.num_partitions() >= 8);
        assert_eq!(
            g.num_partitions(),
            8 * graphmat_sparse::parallel::available_threads()
        );
    }

    #[test]
    fn unweighted_graph_sheds_edge_value_bytes() {
        let weighted = small_graph();
        let el = EdgeList::from_tuples(
            4,
            vec![
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 2, 3.0),
                (2, 3, 4.0),
                (3, 0, 5.0),
            ],
        );
        let unweighted: Graph<f32, ()> = Graph::from_edge_list(
            &el.topology(),
            GraphBuildOptions::default().with_partitions(2),
        );
        assert_eq!(unweighted.num_edges(), weighted.num_edges());
        assert_eq!(
            weighted.matrix_bytes() - unweighted.matrix_bytes(),
            2 * weighted.num_edges() * std::mem::size_of::<f32>(),
            "both matrices should drop exactly 4 bytes/edge of values"
        );
    }

    #[test]
    fn unbalanced_partitioning_is_supported() {
        let el = EdgeList::from_tuples(4, vec![(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]);
        let g: Graph<u32> = Graph::from_edge_list(
            &el,
            GraphBuildOptions::default()
                .with_partitions(4)
                .with_balancing(false),
        );
        assert_eq!(g.num_partitions(), 4);
        assert_eq!(g.out_matrix().nnz(), 3);
    }
}
