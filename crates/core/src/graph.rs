//! The legacy fused graph container, kept as a thin facade.
//!
//! **Soft-deprecated.** `Graph<V, E>` predates the
//! [`Topology`] / [`VertexState`] split: it fuses
//! the immutable adjacency matrices with the per-run mutable state (vertex
//! properties + active set) in one struct, which forces `&mut` access for
//! any run and therefore a full matrix clone for any second concurrent run.
//! New code should use [`crate::session::Session`] to build an
//! `Arc<Topology<E>>` once and run any number of programs against it, each
//! with its own `VertexState<V>` — see the crate-level migration table.
//!
//! The facade remains because the old API is convenient for single-query
//! scripts and because removing it would turn a migration into a rewrite:
//! every inherent method below delegates to the topology or state half, at
//! zero cost (the struct is literally the pair). `#[deprecated]` is not used
//! so existing `-D warnings` builds keep compiling; the docs are the
//! deprecation notice.

use crate::program::VertexId;
use crate::state::VertexState;
use crate::topology::Topology;
use graphmat_io::edgelist::EdgeList;
use graphmat_sparse::bitvec::BitVec;
use graphmat_sparse::partition::PartitionedDcsc;

pub use crate::topology::GraphBuildOptions;

/// A graph prepared for GraphMat execution, with vertex properties of type
/// `V` and edge values of type `E` (`f32` by default; `()` for unweighted
/// graphs, whose matrices then store no edge value bytes at all).
///
/// This is the pre-`Session` facade: exactly one [`Topology`] paired with
/// exactly one [`VertexState`]. Prefer building the two halves separately
/// through [`crate::session::Session`] — that is what allows concurrent runs
/// over one shared matrix.
#[derive(Clone, Debug)]
pub struct Graph<V, E = f32> {
    topology: Topology<E>,
    state: VertexState<V>,
}

impl<V: Clone + Default, E: Clone> Graph<V, E> {
    /// Build a graph from an edge list, initialising every vertex property to
    /// `V::default()` and every vertex to inactive. The edge value type of
    /// the edge list carries over into the DCSC matrices unchanged.
    pub fn from_edge_list(edges: &EdgeList<E>, options: GraphBuildOptions) -> Self {
        let topology = Topology::from_edge_list(edges, options);
        let state = VertexState::for_topology(&topology);
        Graph { topology, state }
    }
}

impl<V, E> Graph<V, E> {
    /// Pair an existing topology with an existing state. Panics if the two
    /// halves disagree on the vertex count — the panic message carries the
    /// same diagnostic payload as the typed error; use
    /// [`Graph::try_from_parts`] to get that error as a value instead.
    ///
    /// This panic stays (rather than changing the signature to `Result`)
    /// because the facade's contract is source compatibility for
    /// pre-`Session` callers; the typed path exists alongside it.
    pub fn from_parts(topology: Topology<E>, state: VertexState<V>) -> Self {
        match Self::try_from_parts(topology, state) {
            Ok(graph) => graph,
            // audit:allow(no-unwrap): documented panicking facade (see
            // above); `try_from_parts` is the fallible twin.
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Graph::from_parts`]:
    /// [`crate::error::GraphMatError::StateLengthMismatch`] instead of a
    /// panic when the halves disagree on the vertex count.
    pub fn try_from_parts(
        topology: Topology<E>,
        state: VertexState<V>,
    ) -> crate::error::Result<Self> {
        state.check_matches(&topology)?;
        Ok(Graph { topology, state })
    }

    /// The immutable structural half.
    pub fn topology(&self) -> &Topology<E> {
        &self.topology
    }

    /// The mutable per-run half.
    pub fn state(&self) -> &VertexState<V> {
        &self.state
    }

    /// Mutable access to the per-run half.
    pub fn state_mut(&mut self) -> &mut VertexState<V> {
        &mut self.state
    }

    /// Split-borrow both halves (what the runner uses: the superstep reads
    /// the topology while APPLY mutates the state).
    pub fn parts_mut(&mut self) -> (&Topology<E>, &mut VertexState<V>) {
        (&self.topology, &mut self.state)
    }

    /// Decompose into the two halves — the migration path from a fused
    /// `Graph` to an `Arc<Topology>` plus per-run states.
    pub fn into_parts(self) -> (Topology<E>, VertexState<V>) {
        (self.topology, self.state)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> VertexId {
        self.topology.num_vertices()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.topology.num_edges()
    }

    /// Out-degree of vertex `v`.
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.topology.out_degree(v)
    }

    /// In-degree of vertex `v`.
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.topology.in_degree(v)
    }

    /// All out-degrees (indexed by vertex id).
    pub fn out_degrees(&self) -> &[u32] {
        self.topology.out_degrees()
    }

    /// All in-degrees (indexed by vertex id).
    pub fn in_degrees(&self) -> &[u32] {
        self.topology.in_degrees()
    }

    /// The partitioned `Gᵀ` used for out-edge traversal.
    pub fn out_matrix(&self) -> &PartitionedDcsc<E> {
        self.topology.out_matrix()
    }

    /// The partitioned `G` used for in-edge traversal, if it was built.
    pub fn in_matrix(&self) -> Option<&PartitionedDcsc<E>> {
        self.topology.in_matrix()
    }

    /// Number of matrix partitions.
    pub fn num_partitions(&self) -> usize {
        self.topology.num_partitions()
    }

    /// Total in-memory footprint of the adjacency matrices in bytes,
    /// including stored edge values. For `E = ()` this is pure index cost —
    /// the visible payoff of the unweighted fast path.
    pub fn matrix_bytes(&self) -> usize {
        self.topology.matrix_bytes()
    }

    // ---- vertex properties -------------------------------------------------

    /// Read the property of vertex `v`. Panics with the vertex id and the
    /// vertex count if `v` is out of range.
    pub fn property(&self, v: VertexId) -> &V {
        self.state.property(v)
    }

    /// Write the property of vertex `v`. Panics with the vertex id and the
    /// vertex count if `v` is out of range.
    pub fn set_property(&mut self, v: VertexId, value: V) {
        self.state.set_property(v, value);
    }

    /// Set every vertex's property to `value`.
    pub fn set_all_properties(&mut self, value: V)
    where
        V: Clone,
    {
        self.state.set_all_properties(value);
    }

    /// Initialise every vertex's property from a function of its id.
    pub fn init_properties(&mut self, f: impl FnMut(VertexId) -> V) {
        self.state.init_properties(f);
    }

    /// Read-only view of all vertex properties (indexed by vertex id).
    pub fn properties(&self) -> &[V] {
        self.state.properties()
    }

    /// Mutable view of all vertex properties.
    pub fn properties_mut(&mut self) -> &mut [V] {
        self.state.properties_mut()
    }

    // ---- active set ---------------------------------------------------------

    /// Mark vertex `v` active for the next superstep. Panics with the vertex
    /// id and the vertex count if `v` is out of range.
    pub fn set_active(&mut self, v: VertexId) {
        self.state.set_active(v);
    }

    /// Mark vertex `v` inactive.
    pub fn set_inactive(&mut self, v: VertexId) {
        self.state.set_inactive(v);
    }

    /// Mark every vertex active (e.g. PageRank's first iteration).
    pub fn set_all_active(&mut self) {
        self.state.set_all_active();
    }

    /// Mark every vertex inactive.
    pub fn clear_active(&mut self) {
        self.state.clear_active();
    }

    /// Is vertex `v` currently active?
    pub fn is_active(&self, v: VertexId) -> bool {
        self.state.is_active(v)
    }

    /// Number of currently active vertices.
    pub fn active_count(&self) -> usize {
        self.state.active_count()
    }

    /// The active-set bit vector.
    pub fn active_bits(&self) -> &BitVec {
        self.state.active_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> Graph<f32> {
        let el = EdgeList::from_tuples(
            4,
            vec![
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 2, 3.0),
                (2, 3, 4.0),
                (3, 0, 5.0),
            ],
        );
        Graph::from_edge_list(&el, GraphBuildOptions::default().with_partitions(2))
    }

    #[test]
    fn construction_counts() {
        let g = small_graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.num_partitions(), 2);
        assert_eq!(g.out_matrix().nnz(), 5);
        assert_eq!(g.in_matrix().unwrap().nnz(), 5);
    }

    #[test]
    fn degrees_match_edge_list() {
        let g = small_graph();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.in_degree(1), 1);
        assert_eq!(g.out_degrees().len(), 4);
    }

    #[test]
    fn transpose_orientation_is_correct() {
        let g = small_graph();
        // edge 0 -> 1 must appear in Gᵀ as (row=1, col=0)
        assert!(g.out_matrix().iter().any(|(r, c, _)| r == 1 && c == 0));
        // and in G as (row=0, col=1)
        assert!(g
            .in_matrix()
            .unwrap()
            .iter()
            .any(|(r, c, _)| r == 0 && c == 1));
    }

    #[test]
    fn properties_lifecycle() {
        let mut g = small_graph();
        assert_eq!(*g.property(0), 0.0);
        g.set_all_properties(7.0);
        assert!(g.properties().iter().all(|&p| p == 7.0));
        g.set_property(2, 1.5);
        assert_eq!(*g.property(2), 1.5);
        g.init_properties(|v| v as f32);
        assert_eq!(*g.property(3), 3.0);
        g.properties_mut()[1] = 9.0;
        assert_eq!(*g.property(1), 9.0);
    }

    #[test]
    fn active_set_lifecycle() {
        let mut g = small_graph();
        assert_eq!(g.active_count(), 0);
        g.set_active(1);
        g.set_active(3);
        assert!(g.is_active(1));
        assert!(!g.is_active(0));
        assert_eq!(g.active_count(), 2);
        g.set_inactive(1);
        assert_eq!(g.active_count(), 1);
        g.set_all_active();
        assert_eq!(g.active_count(), 4);
        g.clear_active();
        assert_eq!(g.active_count(), 0);
    }

    #[test]
    fn in_edges_can_be_skipped() {
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let g: Graph<u32> =
            Graph::from_edge_list(&el, GraphBuildOptions::default().with_in_edges(false));
        assert!(g.in_matrix().is_none());
    }

    #[test]
    fn default_partition_count_scales_with_threads() {
        // a graph with plenty of rows so the balanced partitioner can hit the
        // requested 8 × threads partition count
        let n = 4096u32;
        let el = EdgeList::from_pairs(n, (0..n - 1).map(|v| (v, v + 1)));
        let g: Graph<u32, ()> = Graph::from_edge_list(&el, GraphBuildOptions::default());
        assert!(g.num_partitions() >= 8);
        assert_eq!(
            g.num_partitions(),
            8 * graphmat_sparse::parallel::available_threads()
        );
    }

    #[test]
    fn unweighted_graph_sheds_edge_value_bytes() {
        let weighted = small_graph();
        let el = EdgeList::from_tuples(
            4,
            vec![
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 2, 3.0),
                (2, 3, 4.0),
                (3, 0, 5.0),
            ],
        );
        let unweighted: Graph<f32, ()> = Graph::from_edge_list(
            &el.topology(),
            GraphBuildOptions::default().with_partitions(2),
        );
        assert_eq!(unweighted.num_edges(), weighted.num_edges());
        assert_eq!(
            weighted.matrix_bytes() - unweighted.matrix_bytes(),
            2 * weighted.num_edges() * std::mem::size_of::<f32>(),
            "both matrices should drop exactly 4 bytes/edge of values"
        );
    }

    #[test]
    fn unbalanced_partitioning_is_supported() {
        let el = EdgeList::from_tuples(4, vec![(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]);
        let g: Graph<u32> = Graph::from_edge_list(
            &el,
            GraphBuildOptions::default()
                .with_partitions(4)
                .with_balancing(false),
        );
        assert_eq!(g.num_partitions(), 4);
        assert_eq!(g.out_matrix().nnz(), 3);
    }

    #[test]
    fn facade_splits_and_reassembles() {
        let mut g = small_graph();
        g.set_property(1, 4.5);
        g.set_active(1);
        let (topo, state) = g.into_parts();
        assert_eq!(topo.num_vertices(), 4);
        assert_eq!(*state.property(1), 4.5);
        let g2 = Graph::from_parts(topo, state);
        assert!(g2.is_active(1));
        assert_eq!(g2.num_edges(), 5);
    }

    #[test]
    fn from_parts_rejects_mismatched_lengths() {
        let g = small_graph();
        let (topo, _) = g.into_parts();
        let wrong: VertexState<f32> = VertexState::new(9);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Graph::from_parts(topo, wrong)
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains('9') && msg.contains('4'), "{msg}");
    }

    #[test]
    fn try_from_parts_returns_the_typed_error() {
        let g = small_graph();
        let (topo, _) = g.into_parts();
        let wrong: VertexState<f32> = VertexState::new(9);
        let err = Graph::try_from_parts(topo, wrong).unwrap_err();
        assert_eq!(
            err,
            crate::error::GraphMatError::StateLengthMismatch {
                state_vertices: 9,
                topology_vertices: 4
            }
        );

        let g = small_graph();
        let (topo, state) = g.into_parts();
        assert!(Graph::try_from_parts(topo, state).is_ok());
    }

    #[test]
    fn out_of_range_property_panics_with_diagnostics() {
        // Satellite regression: the old code panicked deep inside Vec
        // indexing with no vertex id in the message.
        let g = small_graph();
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| *g.property(99))).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("99") && msg.contains('4'), "{msg}");
    }
}
