//! GraphMat core: the vertex-programming frontend executed as generalized
//! sparse matrix–sparse vector multiplication.
//!
//! This crate is the paper's primary contribution. Users describe a graph
//! algorithm as a [`program::GraphProgram`] — the familiar
//! `SEND_MESSAGE` / `PROCESS_MESSAGE` / `REDUCE` / `APPLY` vertex-programming
//! callbacks (§4.1) — and the runner executes it as a sequence of
//! bulk-synchronous supersteps, each of which is one generalized SpMV over
//! the DCSC-partitioned transposed adjacency matrix (Algorithms 1 and 2 of
//! the paper).
//!
//! # The three-layer API
//!
//! GraphMat's productivity claim is a frontend over a **fixed** sparse
//! matrix: build the matrix once, run many vertex programs against it. The
//! API is organised around exactly that split:
//!
//! 1. [`topology::Topology<E>`] — the immutable build product: partitioned
//!    DCSC out/in matrices, degree arrays. `Sync`, cheap to wrap in an
//!    `Arc`, queryable from many threads at once, never mutated by a run.
//! 2. [`state::VertexState<V>`] — the mutable per-run half: vertex
//!    properties plus the active bit vector (and a cached engine
//!    workspace). Created fresh per query, or pooled and reused across
//!    runs.
//! 3. [`session::Session`] — the owning handle: one persistent
//!    [`Executor`](graphmat_sparse::parallel::Executor) pool plus fluent
//!    builders for topologies ([`session::Session::build_graph`]) and runs
//!    ([`session::Session::run`]). Fallible paths return
//!    [`error::GraphMatError`] instead of panicking.
//!
//! ```
//! use graphmat_core::session::Session;
//! # use graphmat_core::program::{GraphProgram, VertexId};
//! # use graphmat_io::edgelist::EdgeList;
//! # struct Sssp;
//! # impl GraphProgram for Sssp {
//! #     type VertexProp = f32; type Message = f32; type Reduced = f32; type Edge = f32;
//! #     fn send_message(&self, _v: VertexId, d: &f32) -> Option<f32> { Some(*d) }
//! #     fn process_message(&self, m: &f32, e: &f32, _d: &f32) -> f32 { m + e }
//! #     fn reduce(&self, acc: &mut f32, v: f32) { if v < *acc { *acc = v; } }
//! #     fn apply(&self, r: &f32, d: &mut f32) { if *r < *d { *d = *r; } }
//! # }
//!
//! let session = Session::with_defaults()?;
//! # let edges = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
//! let topology = session.build_graph(&edges).partitions(16).finish()?;
//! let outcome = session
//!     .run(&topology, Sssp)
//!     .init_all(f32::MAX)
//!     .seed_with(0, 0.0)
//!     .max_iterations(50)
//!     .execute()?;
//! assert!(outcome.converged);
//! # Ok::<(), graphmat_core::error::GraphMatError>(())
//! ```
//!
//! Because the topology is shared by reference, N threads can run N
//! different programs against one graph **concurrently** through one
//! session — the matrix is never cloned. That separation is what a serving
//! frontend (many independent queries over one resident graph) needs.
//!
//! # Migrating from the fused `Graph` API
//!
//! [`graph::Graph<V, E>`] (one topology fused with one state) remains as a
//! thin delegating facade, but new code should use the session frontend:
//!
//! | old (fused `Graph`) | new (`Session`/`Topology`/`VertexState`) |
//! |---|---|
//! | `Graph::from_edge_list(&edges, opts)` | `session.build_graph(&edges).partitions(16).finish()?` |
//! | `GraphBuildOptions::default().with_in_edges(false)` | `.in_edges(false)` on the graph builder |
//! | `graph.set_all_properties(v)` | `.init_all(v)` on the run builder |
//! | `graph.init_properties(f)` | `.init_with(f)` on the run builder |
//! | `graph.set_property(src, 0.0); graph.set_active(src)` | `.seed_with(src, 0.0)` on the run builder |
//! | `graph.set_all_active()` | `.activate_all()` on the run builder |
//! | `RunOptions::default().with_max_iterations(50)` | `.max_iterations(50)` on the run builder |
//! | `run_graph_program(&prog, &mut graph, &opts)` | `session.run(&topo, prog)…execute()?` |
//! | `graph.properties()` after the run | `outcome.values` (moved, not cloned) |
//! | clone the whole `Graph` per concurrent run | share one `Arc<Topology>`, one `VertexState` per run |
//! | panics on misuse | typed [`error::GraphMatError`]s |
//! | always-push SpMV (`RunOptions::default()`, still `VectorKind::Bitvector`) | direction-optimized [`options::VectorKind::Auto`] — the session default; force with `.vector(Bitvector \| Sorted \| Dense)` |
//! | *(no equivalent)* | `.pull_alpha(α)` tunes when `Auto` switches to the pull backend |
//! | *(no equivalent)* | `.pull_enabled(false)` on the graph builder skips the CSR mirrors (≈ halves matrix memory, pins `Auto` to push) |
//!
//! Lower-level entry points remain for advanced embedding:
//! [`runner::run_program`] (explicit topology + state + executor +
//! workspace) is what both the session and the facades reduce to.
//!
//! # Direction optimization (PR-4)
//!
//! The paper's engine always runs column-wise sparse SpMV — a *push*
//! traversal, perfect for sparse frontiers, wasteful when most vertices are
//! active. This reproduction adds the *dense pull* backend (row-parallel
//! SpMV over a row-major CSR mirror of the partitioned matrix) and, with
//! [`options::VectorKind::Auto`] — the session default — picks push or pull
//! **per superstep** using Beamer's direction-switching rule
//! ([`engine::choose_backend`]): pull when the frontier's out-edges exceed
//! `unexplored_edges / α` and the frontier is not tiny. All backends reduce
//! each destination's messages in ascending source order, so results are
//! **bit-for-bit identical** — only speed changes. Costs and knobs:
//!
//! * the CSR mirrors roughly double adjacency-matrix memory
//!   ([`topology::Topology::pull_bytes`]; skip them with
//!   `.pull_enabled(false)` on the graph builder);
//! * `.vector(…)` on the run builder forces a backend
//!   (`Bitvector`/`Sorted` → push, `Dense` → pull, `Auto` → per-superstep);
//! * `.pull_alpha(α)` tunes the switch point
//!   ([`options::DEFAULT_PULL_ALPHA`] = 14);
//! * each superstep records the chosen [`stats::Backend`] and its frontier
//!   density in [`stats::SuperstepStats`].
//!
//! # Edge-type genericity (PR-1)
//!
//! The whole stack is generic over the **edge value type**: a program
//! declares [`program::GraphProgram::Edge`] and runs on matrices that store
//! exactly that type. `Edge = ()` is the zero-cost unweighted fast path —
//! `Vec<()>` stores nothing, so BFS, connected components, degree and
//! triangle counting traverse matrices with no edge value bytes at all.
//! See [`program`] for the PR-1 migration guide from the hardcoded-`f32`
//! API.
//!
//! Module map:
//!
//! * [`program`] — the `GraphProgram` trait and edge-direction selection.
//! * [`topology`] — the immutable, shareable matrix half.
//! * [`state`] — the mutable per-run half (bounds-checked accessors with
//!   descriptive diagnostics; `try_*` variants return errors).
//! * [`pool`] — [`pool::StatePool`]: per-worker `VertexState` recycling with
//!   growth counters, the allocation-free steady state for serving layers.
//! * [`session`] — the session frontend: executor pool + builders.
//! * [`error`] — [`error::GraphMatError`].
//! * [`graph`] — the legacy fused facade ([`graph::Graph`]).
//! * [`engine`] — one superstep: SEND + generalized SpMV into a reusable
//!   workspace.
//! * [`runner`] — the iteration loop with convergence detection and the
//!   APPLY phase (Algorithm 2).
//! * [`options`] — run-time knobs including the Figure 7 ablation toggles.
//! * [`stats`] — per-superstep and whole-run statistics.

pub mod engine;
pub mod error;
pub mod graph;
pub mod options;
pub mod pool;
pub mod program;
pub mod runner;
pub mod session;
pub mod state;
pub mod stats;
pub mod store;
pub mod topology;
pub mod view;

pub use engine::{choose_backend, PULL_BETA};
pub use error::GraphMatError;
pub use graph::{Graph, GraphBuildOptions};
pub use options::{ActivityPolicy, DispatchMode, RunOptions, VectorKind, DEFAULT_PULL_ALPHA};
pub use pool::StatePool;
pub use program::{EdgeDirection, GraphProgram, VertexId};
pub use runner::{
    run_graph_program, run_graph_program_with, run_program, run_program_view, RunResult,
};
pub use session::{GraphBuilder, RunBuilder, RunOutcome, Session, SessionOptions};
pub use state::VertexState;
pub use stats::{Backend, RunStats, SuperstepStats};
pub use store::{GraphSnapshot, GraphStore, StoreOptions, StoreStats};
pub use topology::Topology;
pub use view::GraphView;
