//! GraphMat core: the vertex-programming frontend executed as generalized
//! sparse matrix–sparse vector multiplication.
//!
//! This crate is the paper's primary contribution. Users describe a graph
//! algorithm as a [`program::GraphProgram`] — the familiar
//! `SEND_MESSAGE` / `PROCESS_MESSAGE` / `REDUCE` / `APPLY` vertex-programming
//! callbacks (§4.1) — and [`runner::run_graph_program`] executes it as a
//! sequence of bulk-synchronous supersteps, each of which is one generalized
//! SpMV over the DCSC-partitioned transposed adjacency matrix (Algorithms 1
//! and 2 of the paper).
//!
//! The whole stack is generic over the **edge value type**: a program
//! declares `GraphProgram::Edge` and runs on a `Graph<V, E>` whose DCSC
//! matrices store exactly that type. `Edge = ()` is the zero-cost unweighted
//! fast path — `Vec<()>` stores nothing, so BFS, connected components,
//! degree and triangle counting traverse matrices with no edge value bytes
//! at all.
//!
//! Module map:
//!
//! * [`program`] — the `GraphProgram` trait (including the `Edge` associated
//!   type and a migration guide from the old hardcoded-`f32` API) and
//!   edge-direction selection.
//! * [`graph`] — [`graph::Graph`]: vertex properties, the active set, and the
//!   partitioned adjacency matrices (`Gᵀ` for out-edge traversal, `G` for
//!   in-edge traversal), generic over the edge type.
//! * [`engine`] — one superstep: build the message vector from active
//!   vertices (in parallel over active-bitvector words for large frontiers),
//!   run the generalized SpMV into a reusable workspace.
//! * [`runner`] — the iteration loop with convergence detection and the
//!   APPLY phase (Algorithm 2). One persistent worker pool and one
//!   workspace serve the whole run: the superstep loop spawns no threads
//!   and is allocation-free in the steady state.
//! * [`options`] — run-time knobs (threads, dispatch mode, sparse-vector
//!   representation) including the ablation toggles for the paper's Figure 7.
//! * [`stats`] — per-superstep and whole-run statistics plus the cost-model
//!   counters consumed by the Figure 6 benchmark.

pub mod engine;
pub mod graph;
pub mod options;
pub mod program;
pub mod runner;
pub mod stats;

pub use graph::{Graph, GraphBuildOptions};
pub use options::{ActivityPolicy, DispatchMode, RunOptions, VectorKind};
pub use program::{EdgeDirection, GraphProgram, VertexId};
pub use runner::{run_graph_program, run_graph_program_with, RunResult};
pub use stats::{RunStats, SuperstepStats};
