//! Run-time configuration and the Figure 7 ablation toggles.
//!
//! The paper stresses that GraphMat leaves almost no tuning to the user: "the
//! only tunable ones are number of threads and number of desired matrix
//! partitions" (§5.4). [`RunOptions`] exposes exactly those two knobs plus
//! the iteration limit — and, additionally, the two *ablation* switches that
//! the Figure 7 experiment needs to reconstruct the naive baselines
//! (sorted-tuple sparse vectors instead of bitvector-backed ones, and dynamic
//! dispatch of the user callbacks instead of monomorphised/inlined calls,
//! standing in for compiling without `-ipo`) — plus the direction-
//! optimization knobs this reproduction adds beyond the paper:
//! [`VectorKind`] grew `Dense` (force the row-wise pull backend) and `Auto`
//! (per-superstep push/pull selection, the `Session` default), with
//! [`RunOptions::pull_alpha`] tuning when `Auto` switches.
//!
//! # Thread-count resolution
//!
//! `nthreads == 0` means "use every available hardware thread" and is
//! resolved in exactly one place: [`RunOptions::effective_threads`]. The
//! resolved value (always ≥ 1) is what gets passed to
//! [`Executor::new`], which since the `Session` redesign *asserts* on zero
//! instead of silently clamping — the old code clamped in both places, and
//! the two clamps could disagree about what `0` meant.

use crate::error::{GraphMatError, Result};
use graphmat_sparse::parallel::{available_threads, Executor};
use std::time::Instant;

/// How the user's `process_message`/`reduce` callbacks are dispatched inside
/// the SpMV inner loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Static dispatch: the engine is monomorphised over the program, so the
    /// callbacks inline into the SpMV kernel. This is the analogue of the
    /// paper's icc `-ipo` build (§4.5 optimization 2) and the default.
    #[default]
    Static,
    /// Dynamic dispatch: callbacks are invoked through trait objects,
    /// preventing inlining — the "before `-ipo`" configuration of Figure 7.
    Dynamic,
}

/// How the active set for the next superstep is determined after APPLY.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ActivityPolicy {
    /// Only vertices whose property changed become active (Algorithm 2
    /// lines 12–13) — the right semantics for frontier algorithms such as
    /// BFS, SSSP and label propagation.
    #[default]
    Changed,
    /// Every vertex is active every superstep — the right semantics for
    /// fixed-iteration algorithms such as PageRank and gradient-descent
    /// collaborative filtering, where every vertex must rebroadcast its
    /// state even if it happens not to have changed.
    AlwaysAll,
}

/// Which message-vector representation — and therefore which SpMV backend —
/// a superstep uses.
///
/// `Bitvector` and `Sorted` are *push* representations (column-wise sparse
/// SpMV over the DCSC); `Dense` is the *pull* representation (row-wise SpMV
/// over the CSR mirror); `Auto` switches between bitvector-push and
/// dense-pull per superstep based on frontier density. All four produce
/// **bit-for-bit identical results** — push and pull both reduce each
/// destination's incoming products in ascending source order — so the choice
/// is purely about performance.
///
/// `Auto` is the default of [`crate::session::SessionOptions`] (and of
/// [`crate::session::Session::sequential`]); `RunOptions::default()` keeps
/// `Bitvector`, the paper's original always-push configuration, so the
/// legacy facades and the Figure 4/5/7 baselines reproduce the paper
/// unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VectorKind {
    /// Bit vector + dense value array, always pushed (the paper's choice,
    /// §4.4.2).
    #[default]
    Bitvector,
    /// Sorted `(index, value)` tuples, always pushed (the rejected
    /// alternative, kept for the Figure 7 "+bitvector" ablation step).
    Sorted,
    /// Dense value array + validity bitmap, always **pulled** through the
    /// row-major CSR mirror. Requires a topology built with pull mirrors
    /// (the session graph builder's default; legacy
    /// `GraphBuildOptions::default()` leaves them off) — forcing `Dense` on
    /// a mirror-less topology is [`GraphMatError::MissingPullMirror`].
    Dense,
    /// Direction-optimized: per superstep, pick push (bitvector) or pull
    /// (dense) with the Beamer-style rule — pull when the frontier's
    /// out-edges outnumber `unexplored_edges / α` **and** the frontier
    /// itself is not tiny (see [`RunOptions::pull_alpha`]). On a topology
    /// without pull mirrors, `Auto` always pushes.
    Auto,
}

/// Options controlling one run of a vertex program.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Number of worker threads; `0` means use all available hardware
    /// threads (resolved once, by [`RunOptions::effective_threads`]).
    pub nthreads: usize,
    /// Maximum number of supersteps; `None` runs until no vertex changes
    /// state (the paper's `-1` argument). `Some(0)` is rejected by
    /// [`RunOptions::validate`] — a zero-superstep "run" is a no-op the
    /// caller should skip instead of requesting.
    pub max_iterations: Option<usize>,
    /// Callback dispatch mode (Figure 7 "+ipo" ablation).
    pub dispatch: DispatchMode,
    /// Message-vector representation / SpMV backend selection (Figure 7
    /// "+bitvector" ablation and the direction-optimization forcing knob).
    pub vector: VectorKind,
    /// The α threshold of the [`VectorKind::Auto`] direction selector
    /// (Beamer et al.'s direction-switching rule): a superstep pulls when
    /// `frontier_out_edges > unexplored_edges / α`. Larger α switches to
    /// pull earlier. Must be positive and finite
    /// ([`RunOptions::validate`]); the default is
    /// [`DEFAULT_PULL_ALPHA`] (= 14, the value the direction-optimizing BFS
    /// paper tunes on scale-free graphs). Ignored by the forced kinds.
    pub pull_alpha: f64,
    /// How the next superstep's active set is derived.
    pub activity: ActivityPolicy,
    /// Record per-superstep statistics (cheap; on by default).
    pub record_supersteps: bool,
    /// Hard wall-clock deadline for the run. Checked **between** supersteps
    /// (the bulk-synchronous barrier is the natural cancellation point, so a
    /// run can overshoot by at most one superstep): when the deadline has
    /// passed, the run stops with [`GraphMatError::DeadlineExceeded`],
    /// leaving the completed supersteps' results in the vertex state. `None`
    /// (the default) runs without a time limit. This is the per-request
    /// timeout hook for serving layers — see `RunBuilder::deadline`.
    pub deadline: Option<Instant>,
}

/// Default α of the direction selector: pull once the frontier's out-edges
/// exceed `unexplored_edges / 14` (Beamer et al.'s tuned value).
pub const DEFAULT_PULL_ALPHA: f64 = 14.0;

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            nthreads: 0,
            max_iterations: None,
            dispatch: DispatchMode::Static,
            vector: VectorKind::Bitvector,
            pull_alpha: DEFAULT_PULL_ALPHA,
            activity: ActivityPolicy::Changed,
            record_supersteps: true,
            deadline: None,
        }
    }
}

impl RunOptions {
    /// Options for a sequential (single-threaded) run.
    pub fn sequential() -> Self {
        RunOptions {
            nthreads: 1,
            ..Default::default()
        }
    }

    /// Set the thread count (`0` = all available).
    pub fn with_threads(mut self, nthreads: usize) -> Self {
        self.nthreads = nthreads;
        self
    }

    /// Set the maximum number of supersteps.
    pub fn with_max_iterations(mut self, max: usize) -> Self {
        self.max_iterations = Some(max);
        self
    }

    /// Set the dispatch mode.
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Set the sparse-vector representation.
    pub fn with_vector(mut self, vector: VectorKind) -> Self {
        self.vector = vector;
        self
    }

    /// Set the α threshold of the [`VectorKind::Auto`] direction selector
    /// (must be positive and finite; see [`RunOptions::pull_alpha`]).
    pub fn with_pull_alpha(mut self, alpha: f64) -> Self {
        self.pull_alpha = alpha;
        self
    }

    /// Set the activity policy.
    pub fn with_activity(mut self, activity: ActivityPolicy) -> Self {
        self.activity = activity;
        self
    }

    /// Set (or clear) the wall-clock deadline — see
    /// [`RunOptions::deadline`].
    pub fn with_deadline(mut self, deadline: impl Into<Option<Instant>>) -> Self {
        self.deadline = deadline.into();
        self
    }

    /// Check the options for values that cannot drive a run:
    /// `max_iterations == Some(0)` yields [`GraphMatError::ZeroIterations`];
    /// a non-positive or non-finite [`RunOptions::pull_alpha`] yields
    /// [`GraphMatError::InvalidParameter`].
    /// Called by the `Session` frontend at construction and before every
    /// builder-driven run; the legacy facades keep their permissive
    /// behaviour (a `Some(0)` run simply executes zero supersteps).
    pub fn validate(&self) -> Result<()> {
        if self.max_iterations == Some(0) {
            return Err(GraphMatError::ZeroIterations);
        }
        if !(self.pull_alpha.is_finite() && self.pull_alpha > 0.0) {
            return Err(GraphMatError::InvalidParameter(
                "pull_alpha must be positive and finite",
            ));
        }
        Ok(())
    }

    /// The effective number of threads this configuration will use — the
    /// **single** place where `nthreads == 0` is resolved (to all available
    /// hardware threads). Always returns at least 1.
    pub fn effective_threads(&self) -> usize {
        if self.nthreads == 0 {
            available_threads()
        } else {
            self.nthreads
        }
    }

    /// Build the executor for this configuration. For more than one thread
    /// this spawns the persistent worker pool, so build it once per run (as
    /// `run_graph_program` does) or once per process and share it across
    /// runs via a [`crate::session::Session`] or
    /// [`crate::runner::run_graph_program_with`] — never per superstep.
    pub fn executor(&self) -> Executor {
        Executor::new(self.effective_threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendations() {
        let o = RunOptions::default();
        assert_eq!(o.dispatch, DispatchMode::Static);
        assert_eq!(o.vector, VectorKind::Bitvector);
        assert!(o.max_iterations.is_none());
        assert!(o.effective_threads() >= 1);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn builder_methods_compose() {
        let o = RunOptions::default()
            .with_threads(3)
            .with_max_iterations(7)
            .with_dispatch(DispatchMode::Dynamic)
            .with_vector(VectorKind::Sorted);
        assert_eq!(o.nthreads, 3);
        assert_eq!(o.effective_threads(), 3);
        assert_eq!(o.max_iterations, Some(7));
        assert_eq!(o.dispatch, DispatchMode::Dynamic);
        assert_eq!(o.vector, VectorKind::Sorted);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn sequential_uses_one_thread() {
        let o = RunOptions::sequential();
        assert_eq!(o.effective_threads(), 1);
        assert_eq!(o.executor().nthreads(), 1);
    }

    #[test]
    fn invalid_pull_alpha_fails_validation() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert_eq!(
                RunOptions::default().with_pull_alpha(bad).validate(),
                Err(GraphMatError::InvalidParameter(
                    "pull_alpha must be positive and finite"
                )),
                "alpha {bad}"
            );
        }
        assert!(RunOptions::default()
            .with_pull_alpha(4.0)
            .validate()
            .is_ok());
        assert_eq!(RunOptions::default().pull_alpha, DEFAULT_PULL_ALPHA);
    }

    #[test]
    fn zero_iterations_fails_validation() {
        let o = RunOptions::default().with_max_iterations(0);
        assert_eq!(o.validate(), Err(GraphMatError::ZeroIterations));
        assert!(RunOptions::default()
            .with_max_iterations(1)
            .validate()
            .is_ok());
    }

    #[test]
    fn effective_threads_is_the_single_resolution_point() {
        // 0 resolves to available parallelism here — Executor::new never
        // sees a zero (it asserts instead of clamping).
        let o = RunOptions::default().with_threads(0);
        let resolved = o.effective_threads();
        assert!(resolved >= 1);
        assert_eq!(o.executor().nthreads(), resolved);
    }
}
