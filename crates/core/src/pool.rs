//! Pooled [`VertexState`] reuse for serving workloads.
//!
//! The serving pattern GraphMat's resident matrix enables — one
//! `Arc<Topology>`, many independent queries — only stays allocation-free if
//! the per-run mutable half is recycled too. A fresh [`VertexState`] per
//! query allocates the property vector, the active bit vector *and* (on
//! first use inside the engine) a full [`crate::engine::Workspace`]; at high
//! query rates that is megabytes of allocator traffic per second for buffers
//! whose sizes never change.
//!
//! [`StatePool`] is the reuse hook: a worker acquires a state, runs a query
//! through [`crate::session::RunBuilder::execute_with`] (which also recycles
//! the workspace cached *inside* the state), and releases the state back.
//! After warm-up the pool stops growing and steady-state serving performs no
//! per-query allocation — the growth counters ([`StatePool::created`],
//! [`StatePool::reused`]) make that property observable, so servers can
//! export it as a metric and tests can assert it.
//!
//! The pool is deliberately **not** synchronised: the intended deployment is
//! one pool per worker thread per program type (the workspace cached in a
//! state is typed by the program, so mixing programs in one pool would
//! thrash the cache and re-allocate workspaces). A `Mutex<StatePool>` works
//! where sharing is genuinely needed.

use crate::state::VertexState;
use crate::topology::Topology;

/// A free-list of [`VertexState`]s for one vertex count (and, by
/// convention, one program type), with growth counters.
#[derive(Debug)]
pub struct StatePool<V> {
    free: Vec<VertexState<V>>,
    num_vertices: usize,
    created: usize,
    reused: usize,
    quarantined: usize,
}

impl<V: Clone + Default> StatePool<V> {
    /// An empty pool producing states for `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        StatePool {
            free: Vec::new(),
            num_vertices,
            created: 0,
            reused: 0,
            quarantined: 0,
        }
    }

    /// An empty pool matched to a topology's vertex count.
    pub fn for_topology<E>(topology: &Topology<E>) -> Self {
        StatePool::new(topology.num_vertices() as usize)
    }

    /// Take a state from the pool, or create a fresh one if the pool is
    /// empty (counted by [`StatePool::created`]). A recycled state keeps its
    /// previous properties and cached workspace — runs that need a
    /// deterministic cold start must re-initialise (the `RunBuilder`
    /// `init_all`/`init_with`/`seed_with` path does exactly that).
    pub fn acquire(&mut self) -> VertexState<V> {
        match self.free.pop() {
            Some(state) => {
                self.reused += 1;
                state
            }
            None => {
                self.created += 1;
                VertexState::new(self.num_vertices)
            }
        }
    }

    /// Return a state to the pool. States of the wrong vertex count are
    /// dropped instead of pooled — handing one out later would only turn
    /// into a [`crate::error::GraphMatError::StateLengthMismatch`] at run
    /// time.
    pub fn release(&mut self, state: VertexState<V>) {
        if state.num_vertices() == self.num_vertices {
            self.free.push(state);
        }
    }

    /// Quarantine a state instead of recycling it: drop it on the floor and
    /// count it. A run that panicked mid-superstep may leave its state (and
    /// the workspace cached inside it) half-written; recycling it would hand
    /// the corruption to an unrelated future query, so panic-isolation
    /// wrappers retire the state here and let the pool re-allocate. The
    /// counter makes leak accounting possible: after recovery,
    /// `created == reused-misses + quarantined + available + in-flight`.
    pub fn quarantine(&mut self, state: VertexState<V>) {
        drop(state);
        self.quarantined += 1;
    }

    /// Number of states this pool has allocated so far. Constant after
    /// warm-up ⇔ steady-state serving allocates no per-query state.
    pub fn created(&self) -> usize {
        self.created
    }

    /// Number of acquisitions served by recycling instead of allocation.
    pub fn reused(&self) -> usize {
        self.reused
    }

    /// Number of possibly-corrupt states retired via
    /// [`StatePool::quarantine`] instead of recycled.
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// Number of states currently parked in the pool.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// The vertex count this pool's states are sized for.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_recycles_instead_of_allocating() {
        let mut pool: StatePool<u32> = StatePool::new(8);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.created(), 2);
        assert_eq!(pool.reused(), 0);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.available(), 2);
        for _ in 0..10 {
            let s = pool.acquire();
            pool.release(s);
        }
        assert_eq!(pool.created(), 2, "steady state allocates nothing");
        assert_eq!(pool.reused(), 10);
    }

    #[test]
    fn recycled_state_keeps_its_cached_workspace() {
        use crate::session::Session;
        use graphmat_io::edgelist::EdgeList;

        struct Hops;
        impl crate::program::GraphProgram for Hops {
            type VertexProp = u32;
            type Message = u32;
            type Reduced = u32;
            type Edge = ();
            fn send_message(&self, _v: u32, d: &u32) -> Option<u32> {
                Some(*d)
            }
            fn process_message(&self, m: &u32, _e: &(), _d: &u32) -> u32 {
                m.saturating_add(1)
            }
            fn reduce(&self, acc: &mut u32, v: u32) {
                *acc = (*acc).min(v);
            }
            fn apply(&self, r: &u32, d: &mut u32) {
                *d = (*d).min(*r);
            }
        }

        let session = Session::sequential();
        let edges = EdgeList::from_pairs(4, vec![(0, 1), (1, 2), (2, 3)]);
        let topo = session
            .build_graph(&edges)
            .in_edges(false)
            .finish()
            .unwrap();
        let mut pool: StatePool<u32> = StatePool::for_topology(&topo);

        for round in 0..3 {
            let mut state = pool.acquire();
            session
                .run(&topo, Hops)
                .init_all(u32::MAX)
                .seed_with(0, 0)
                .execute_with(&mut state)
                .unwrap();
            assert_eq!(state.properties(), &[0, 1, 2, 3]);
            if round > 0 {
                assert!(
                    state.has_cached_workspace(),
                    "recycled state must carry its workspace"
                );
            }
            pool.release(state);
        }
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.reused(), 2);
    }

    #[test]
    fn wrong_length_state_is_dropped_not_pooled() {
        let mut pool: StatePool<u32> = StatePool::new(8);
        pool.release(VertexState::new(5));
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn quarantined_state_is_retired_not_recycled() {
        let mut pool: StatePool<u32> = StatePool::new(8);
        let a = pool.acquire();
        let b = pool.acquire();
        pool.quarantine(a);
        pool.release(b);
        assert_eq!(pool.quarantined(), 1);
        assert_eq!(pool.available(), 1, "quarantined state must not be pooled");
        // The next burst re-allocates only what was quarantined.
        let _c = pool.acquire();
        let _d = pool.acquire();
        assert_eq!(pool.reused(), 1);
        assert_eq!(pool.created(), 3);
    }
}
