//! The `GraphProgram` trait: GraphMat's vertex-programming frontend.
//!
//! A graph program is "templatized with 3 types" in the original C++ (see the
//! paper's appendix): the message type, the processed/reduced value type and
//! the vertex property type. The Rust equivalent is a trait with three
//! associated types and the four user callbacks of Figure 2:
//!
//! * [`GraphProgram::send_message`] — read the vertex property of an active
//!   vertex and produce the message it broadcasts this superstep;
//! * [`GraphProgram::process_message`] — combine an incoming message with the
//!   edge value it arrived on **and the receiving vertex's property** (the
//!   extension over CombBLAS that makes triangle counting and collaborative
//!   filtering easy, §4.2);
//! * [`GraphProgram::reduce`] — fold processed messages for one vertex into a
//!   single value (must be commutative and associative for deterministic
//!   parallel execution);
//! * [`GraphProgram::apply`] — consume the reduced value and update the
//!   vertex property.
//!
//! Together, `process_message` + `reduce` form the generalized SpMV
//! multiply/add pair; `send_message` builds the sparse input vector; `apply`
//! writes the output vector back into vertex state.

/// Identifier of a vertex (a row/column of the adjacency matrix).
pub type VertexId = graphmat_sparse::Index;

/// Which edges an active vertex scatters its message along (paper §4.1:
/// "SEND_MESSAGE can be called to scatter along in- and/or out-edges").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EdgeDirection {
    /// Messages travel from a vertex to the targets of its out-edges
    /// (the common case: PageRank, BFS, SSSP, Triangle Counting).
    #[default]
    Out,
    /// Messages travel from a vertex to the sources of its in-edges.
    In,
    /// Messages travel in both directions (e.g. collaborative filtering on a
    /// bipartite graph, where users update items and items update users).
    Both,
}

/// A vertex program in the GraphMat model.
///
/// Implementations must be `Sync` because the engine calls
/// `process_message`/`reduce` concurrently from all worker threads.
///
/// # Example
///
/// The paper's appendix SSSP program translates almost line-for-line:
///
/// ```
/// use graphmat_core::program::{EdgeDirection, GraphProgram, VertexId};
///
/// struct Sssp;
///
/// impl GraphProgram for Sssp {
///     type VertexProp = f32;   // current best distance
///     type Message = f32;      // distance of the sender
///     type Reduced = f32;      // candidate distance
///
///     fn direction(&self) -> EdgeDirection { EdgeDirection::Out }
///
///     fn send_message(&self, _v: VertexId, dist: &f32) -> Option<f32> {
///         Some(*dist)
///     }
///
///     fn process_message(&self, msg: &f32, edge: f32, _dst: &f32) -> f32 {
///         msg + edge
///     }
///
///     fn reduce(&self, acc: &mut f32, value: f32) {
///         *acc = acc.min(value);
///     }
///
///     fn apply(&self, reduced: &f32, dist: &mut f32) {
///         *dist = dist.min(*reduced);
///     }
/// }
/// ```
pub trait GraphProgram: Sync {
    /// Per-vertex state. Equality is used to detect whether APPLY changed the
    /// vertex (changed vertices become active for the next superstep).
    type VertexProp: Clone + PartialEq + Send + Sync;
    /// The message an active vertex broadcasts. `Default` supplies the
    /// placeholder stored at unset slots of the bitvector-backed message
    /// vector (paper §4.4.2).
    type Message: Clone + Default + Send + Sync;
    /// The processed-message / reduced-value type.
    type Reduced: Clone + Default + Send + Sync;

    /// Which edges messages are scattered along. Defaults to out-edges.
    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    /// SEND_MESSAGE: read the property of active vertex `v` and produce the
    /// message to scatter, or `None` to stay silent this superstep.
    fn send_message(&self, v: VertexId, prop: &Self::VertexProp) -> Option<Self::Message>;

    /// PROCESS_MESSAGE: combine a `message` arriving along an edge with value
    /// `edge` at a vertex whose current property is `dst_prop`.
    fn process_message(
        &self,
        message: &Self::Message,
        edge: f32,
        dst_prop: &Self::VertexProp,
    ) -> Self::Reduced;

    /// REDUCE: fold `value` into the accumulator `acc`. Must be commutative
    /// and associative.
    fn reduce(&self, acc: &mut Self::Reduced, value: Self::Reduced);

    /// APPLY: consume the reduced value and update the vertex property.
    fn apply(&self, reduced: &Self::Reduced, prop: &mut Self::VertexProp);

    /// Hook called at the end of every superstep with the iteration number
    /// and the number of vertices that changed state. Programs that need
    /// per-iteration bookkeeping (e.g. damping-factor schedules) can override
    /// it; the default does nothing.
    fn on_superstep_end(&self, _iteration: usize, _changed: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Minimal;

    impl GraphProgram for Minimal {
        type VertexProp = u32;
        type Message = u32;
        type Reduced = u32;

        fn send_message(&self, _v: VertexId, p: &u32) -> Option<u32> {
            Some(*p)
        }

        fn process_message(&self, m: &u32, _e: f32, _d: &u32) -> u32 {
            *m + 1
        }

        fn reduce(&self, acc: &mut u32, v: u32) {
            *acc = (*acc).max(v);
        }

        fn apply(&self, r: &u32, p: &mut u32) {
            *p = *r;
        }
    }

    #[test]
    fn default_direction_is_out() {
        assert_eq!(Minimal.direction(), EdgeDirection::Out);
    }

    #[test]
    fn callbacks_compose() {
        let p = Minimal;
        let msg = p.send_message(0, &41).unwrap();
        let processed = p.process_message(&msg, 1.0, &0);
        let mut acc = 0;
        p.reduce(&mut acc, processed);
        let mut prop = 0;
        p.apply(&acc, &mut prop);
        assert_eq!(prop, 42);
    }

    #[test]
    fn on_superstep_end_default_is_noop() {
        Minimal.on_superstep_end(3, 17);
    }
}
