//! The `GraphProgram` trait: GraphMat's vertex-programming frontend.
//!
//! A graph program is "templatized with 3 types" *plus the edge value type*
//! in the original C++ (see the paper's appendix). The Rust equivalent is a
//! trait with four associated types — the message type, the
//! processed/reduced value type, the vertex property type and the **edge
//! type** — and the four user callbacks of Figure 2:
//!
//! * [`GraphProgram::send_message`] — read the vertex property of an active
//!   vertex and produce the message it broadcasts this superstep;
//! * [`GraphProgram::process_message`] — combine an incoming message with the
//!   edge value it arrived on **and the receiving vertex's property** (the
//!   extension over CombBLAS that makes triangle counting and collaborative
//!   filtering easy, §4.2);
//! * [`GraphProgram::reduce`] — fold processed messages for one vertex into a
//!   single value (must be commutative and associative for deterministic
//!   parallel execution);
//! * [`GraphProgram::apply`] — consume the reduced value and update the
//!   vertex property.
//!
//! Together, `process_message` + `reduce` form the generalized SpMV
//! multiply/add pair; `send_message` builds the sparse input vector; `apply`
//! writes the output vector back into vertex state.
//!
//! # The `Edge` associated type
//!
//! [`GraphProgram::Edge`] selects the edge value type the program traverses:
//! the graph passed to [`crate::runner::run_graph_program`] must be a
//! `Graph<VertexProp, Edge>`, and its DCSC matrices store exactly that type.
//! Two cases matter in practice:
//!
//! * **weighted programs** (`Edge = f32`, `u32`, …) read the value in
//!   `process_message`, e.g. SSSP's `msg + edge`;
//! * **unweighted programs** (`Edge = ()`) ignore it — and because `Vec<()>`
//!   stores nothing, the adjacency matrices shed 4 bytes per edge of memory
//!   traffic, a real speedup for a bandwidth-bound SpMV. BFS, connected
//!   components, degree and triangle counting all use this fast path.
//!
//! # Migration from the pre-`Edge` API
//!
//! Earlier versions hardcoded `f32` edges. Porting a program is mechanical:
//!
//! ```text
//! // before
//! fn process_message(&self, msg: &f32, edge: f32, dst: &f32) -> f32 {
//!     msg + edge
//! }
//!
//! // after: declare the edge type, take it by reference
//! type Edge = f32;
//! fn process_message(&self, msg: &f32, edge: &f32, dst: &f32) -> f32 {
//!     msg + edge
//! }
//! ```
//!
//! Programs that never looked at `edge` should declare `type Edge = ()` and
//! build their graph from an `EdgeList<()>` (e.g. `EdgeList::from_pairs` or
//! `EdgeList::topology()`) to get the unweighted fast path for free.

/// Identifier of a vertex (a row/column of the adjacency matrix).
pub type VertexId = graphmat_sparse::Index;

/// Which edges an active vertex scatters its message along (paper §4.1:
/// "SEND_MESSAGE can be called to scatter along in- and/or out-edges").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EdgeDirection {
    /// Messages travel from a vertex to the targets of its out-edges
    /// (the common case: PageRank, BFS, SSSP, Triangle Counting).
    #[default]
    Out,
    /// Messages travel from a vertex to the sources of its in-edges.
    In,
    /// Messages travel in both directions (e.g. collaborative filtering on a
    /// bipartite graph, where users update items and items update users).
    Both,
}

/// A vertex program in the GraphMat model.
///
/// Implementations must be `Sync` because the engine calls
/// `process_message`/`reduce` concurrently from all worker threads.
///
/// # Example
///
/// The paper's appendix SSSP program translates almost line-for-line:
///
/// ```
/// use graphmat_core::program::{EdgeDirection, GraphProgram, VertexId};
///
/// struct Sssp;
///
/// impl GraphProgram for Sssp {
///     type VertexProp = f32;   // current best distance
///     type Message = f32;      // distance of the sender
///     type Reduced = f32;      // candidate distance
///     type Edge = f32;         // edge length
///
///     fn direction(&self) -> EdgeDirection { EdgeDirection::Out }
///
///     fn send_message(&self, _v: VertexId, dist: &f32) -> Option<f32> {
///         Some(*dist)
///     }
///
///     fn process_message(&self, msg: &f32, edge: &f32, _dst: &f32) -> f32 {
///         msg + edge
///     }
///
///     fn reduce(&self, acc: &mut f32, value: f32) {
///         *acc = acc.min(value);
///     }
///
///     fn apply(&self, reduced: &f32, dist: &mut f32) {
///         *dist = dist.min(*reduced);
///     }
/// }
/// ```
///
/// An unweighted program declares `type Edge = ()` and simply ignores the
/// edge argument:
///
/// ```
/// use graphmat_core::program::{GraphProgram, VertexId};
///
/// struct HopCount;
///
/// impl GraphProgram for HopCount {
///     type VertexProp = u32;
///     type Message = u32;
///     type Reduced = u32;
///     type Edge = ();          // zero bytes per edge in the matrix
///
///     fn send_message(&self, _v: VertexId, d: &u32) -> Option<u32> { Some(*d) }
///     fn process_message(&self, msg: &u32, _edge: &(), _dst: &u32) -> u32 {
///         msg.saturating_add(1)
///     }
///     fn reduce(&self, acc: &mut u32, v: u32) { *acc = (*acc).min(v); }
///     fn apply(&self, r: &u32, d: &mut u32) { *d = (*d).min(*r); }
/// }
/// ```
pub trait GraphProgram: Sync {
    /// Per-vertex state. Equality is used to detect whether APPLY changed the
    /// vertex (changed vertices become active for the next superstep).
    type VertexProp: Clone + PartialEq + Send + Sync;
    /// The message an active vertex broadcasts. `Default` supplies the
    /// placeholder stored at unset slots of the bitvector-backed message
    /// vector (paper §4.4.2).
    type Message: Clone + Default + Send + Sync;
    /// The processed-message / reduced-value type.
    type Reduced: Clone + Default + Send + Sync;
    /// The edge value type of the graphs this program runs on. Use `()` for
    /// unweighted traversal — the adjacency matrices then store no edge
    /// values at all.
    type Edge: Clone + Send + Sync;

    /// Which edges messages are scattered along. Defaults to out-edges.
    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    /// SEND_MESSAGE: read the property of active vertex `v` and produce the
    /// message to scatter, or `None` to stay silent this superstep.
    fn send_message(&self, v: VertexId, prop: &Self::VertexProp) -> Option<Self::Message>;

    /// PROCESS_MESSAGE: combine a `message` arriving along an edge with value
    /// `edge` at a vertex whose current property is `dst_prop`.
    fn process_message(
        &self,
        message: &Self::Message,
        edge: &Self::Edge,
        dst_prop: &Self::VertexProp,
    ) -> Self::Reduced;

    /// REDUCE: fold `value` into the accumulator `acc`. Must be commutative
    /// and associative.
    fn reduce(&self, acc: &mut Self::Reduced, value: Self::Reduced);

    /// APPLY: consume the reduced value and update the vertex property.
    fn apply(&self, reduced: &Self::Reduced, prop: &mut Self::VertexProp);

    /// Hook called at the end of every superstep with the iteration number
    /// and the number of vertices that changed state. Programs that need
    /// per-iteration bookkeeping (e.g. damping-factor schedules) can override
    /// it; the default does nothing.
    fn on_superstep_end(&self, _iteration: usize, _changed: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Minimal;

    impl GraphProgram for Minimal {
        type VertexProp = u32;
        type Message = u32;
        type Reduced = u32;
        type Edge = ();

        fn send_message(&self, _v: VertexId, p: &u32) -> Option<u32> {
            Some(*p)
        }

        fn process_message(&self, m: &u32, _e: &(), _d: &u32) -> u32 {
            *m + 1
        }

        fn reduce(&self, acc: &mut u32, v: u32) {
            *acc = (*acc).max(v);
        }

        fn apply(&self, r: &u32, p: &mut u32) {
            *p = *r;
        }
    }

    struct Weighted;

    impl GraphProgram for Weighted {
        type VertexProp = u32;
        type Message = u32;
        type Reduced = u32;
        type Edge = u32;

        fn send_message(&self, _v: VertexId, p: &u32) -> Option<u32> {
            Some(*p)
        }

        fn process_message(&self, m: &u32, e: &u32, _d: &u32) -> u32 {
            m + e
        }

        fn reduce(&self, acc: &mut u32, v: u32) {
            *acc = (*acc).max(v);
        }

        fn apply(&self, r: &u32, p: &mut u32) {
            *p = *r;
        }
    }

    #[test]
    fn default_direction_is_out() {
        assert_eq!(Minimal.direction(), EdgeDirection::Out);
    }

    #[test]
    fn callbacks_compose() {
        let p = Minimal;
        let msg = p.send_message(0, &41).unwrap();
        let processed = p.process_message(&msg, &(), &0);
        let mut acc = 0;
        p.reduce(&mut acc, processed);
        let mut prop = 0;
        p.apply(&acc, &mut prop);
        assert_eq!(prop, 42);
    }

    #[test]
    fn integer_edge_values_flow_through_process_message() {
        let p = Weighted;
        let processed = p.process_message(&40, &2, &0);
        assert_eq!(processed, 42);
    }

    #[test]
    fn on_superstep_end_default_is_noop() {
        Minimal.on_superstep_end(3, 17);
    }
}
