//! The superstep loop (Algorithm 2) and the APPLY phase.
//!
//! [`run_program`] repeats SEND → SpMV → APPLY until no vertex changes
//! state or the iteration limit is reached, following the bulk-synchronous
//! parallel model: state written by APPLY becomes visible only in the next
//! superstep (§4.1). After APPLY, exactly the vertices whose property changed
//! are active for the next superstep (Algorithm 2 lines 12–13).
//!
//! # Topology / state split
//!
//! The loop reads an immutable [`Topology`] and mutates a caller-owned
//! [`VertexState`] — nothing about the matrices changes during a run, so one
//! `Arc<Topology>` can serve any number of concurrent [`run_program`] calls,
//! each with its own state. Mismatched state lengths and missing in-edge
//! matrices are reported as [`GraphMatError`]s before the first superstep.
//!
//! # Execution resources
//!
//! One [`Executor`] (a persistent pool of parked worker threads) and one
//! [`Workspace`] (message/output/work-list buffers) serve every superstep —
//! the loop itself spawns no threads and allocates nothing in the steady
//! state. The [`crate::session::Session`] frontend owns a process-lifetime
//! executor and recycles workspaces through pooled states; the legacy
//! [`run_graph_program`] facade builds both per call.

use crate::engine::{superstep_view_into, Workspace, PARALLEL_PHASE_MIN_WORK};
use crate::error::{GraphMatError, Result};
use crate::graph::Graph;
use crate::options::{ActivityPolicy, RunOptions, VectorKind};
use crate::program::{EdgeDirection, GraphProgram};
use crate::state::VertexState;
use crate::stats::{RunStats, SuperstepStats};
use crate::topology::Topology;
use crate::view::GraphView;
use graphmat_sparse::parallel::{chunks, Executor};
use graphmat_sparse::spvec::MessageVector;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The outcome of a runner invocation.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Timing and work statistics for the run.
    pub stats: RunStats,
    /// `true` if the program terminated because no vertex changed state,
    /// `false` if it hit the iteration limit.
    pub converged: bool,
}

/// Run a vertex program over an immutable topology and a caller-owned
/// mutable state, reusing a caller-owned workspace.
///
/// This is the core entry point the `Session` frontend and the legacy
/// facades both reduce to. The state's current vertex properties and active
/// set are the program's initial state; on return the state holds the final
/// properties.
///
/// # Errors
///
/// * [`GraphMatError::StateLengthMismatch`] if `state` was allocated for a
///   different vertex count than `topology`;
/// * [`GraphMatError::MissingInMatrix`] if the program scatters along
///   in-edges (`In`/`Both`) but the topology was built with
///   `build_in_edges = false`;
/// * [`GraphMatError::MissingPullMirror`] if the options force the pull
///   backend (`VectorKind::Dense`) but the topology was built with
///   `build_pull_mirrors = false` (`VectorKind::Auto` instead degrades to
///   always-push on such a topology).
///
/// All three are reported **before** the first superstep.
pub fn run_program<P: GraphProgram>(
    program: &P,
    topology: &Topology<P::Edge>,
    state: &mut VertexState<P::VertexProp>,
    options: &RunOptions,
    executor: &Executor,
    ws: &mut Workspace<P>,
) -> Result<RunResult> {
    run_program_view(
        program,
        GraphView::base(topology),
        state,
        options,
        executor,
        ws,
    )
}

/// [`run_program`] over a `(base ⊕ delta)` [`GraphView`] — what snapshot
/// queries against a [`crate::store::GraphStore`] reduce to. A view without
/// an overlay behaves exactly like [`run_program`]; a view with pending
/// edits runs every superstep through the overlay-aware push SpMV, with
/// results bit-for-bit identical to a run over a topology rebuilt from the
/// edited edge list.
///
/// # Errors
///
/// Everything [`run_program`] reports, plus
/// [`GraphMatError::InvalidParameter`] when the options force the pull
/// backend (`VectorKind::Dense`) while edits are pending — the pull mirrors
/// describe the unedited base, so that combination cannot run
/// (`VectorKind::Auto` pushes instead). Reported **before** the first
/// superstep.
pub fn run_program_view<P: GraphProgram>(
    program: &P,
    view: GraphView<'_, P::Edge>,
    state: &mut VertexState<P::VertexProp>,
    options: &RunOptions,
    executor: &Executor,
    ws: &mut Workspace<P>,
) -> Result<RunResult> {
    let topology = view.topology();
    state.check_matches(topology)?;
    if program.direction() != EdgeDirection::Out && !topology.has_in_edges() {
        return Err(GraphMatError::MissingInMatrix);
    }
    if options.vector == VectorKind::Dense {
        if view.has_overlay() {
            return Err(GraphMatError::InvalidParameter(
                "VectorKind::Dense forces the pull backend, which cannot traverse a \
                 snapshot with pending deltas; use Auto (or a push kind) until the \
                 store compacts",
            ));
        }
        if !topology.has_pull_mirrors() {
            return Err(GraphMatError::MissingPullMirror);
        }
    }

    let mut stats = RunStats {
        matrix_bytes: topology.matrix_bytes(),
        nthreads: executor.nthreads(),
        ..RunStats::default()
    };
    let mut converged = false;
    let mut iteration = 0usize;

    loop {
        if let Some(max) = options.max_iterations {
            if iteration >= max {
                break;
            }
        }
        // The barrier between supersteps is the cancellation point: a run
        // can overshoot its deadline by at most one superstep, and the
        // completed supersteps' results stay in the state (a pooled state's
        // next run re-initialises anyway).
        if let Some(deadline) = options.deadline {
            if Instant::now() >= deadline {
                return Err(GraphMatError::DeadlineExceeded);
            }
        }
        let active_before = state.active_count();
        if active_before == 0 {
            converged = true;
            break;
        }

        let output = superstep_view_into(
            view,
            state,
            program,
            options,
            executor,
            active_before,
            // The selector's explored-edge estimate: everything earlier
            // supersteps of this run already traversed.
            stats.edges_processed,
            ws,
        )?;
        let vertices_updated = ws.reduced().nnz();
        let (apply_time, vertices_changed) = apply_phase(program, state, ws, executor);

        // Fixed-iteration algorithms (PageRank, gradient-descent CF) need
        // every vertex to rebroadcast each superstep even when its own state
        // did not change; frontier algorithms activate only changed vertices.
        if options.activity == ActivityPolicy::AlwaysAll && vertices_changed > 0 {
            state.set_all_active();
        }

        let step = SuperstepStats {
            iteration,
            backend: output.backend,
            frontier_density: active_before as f64 / (topology.num_vertices() as f64).max(1.0),
            active_vertices: active_before,
            messages_sent: output.messages_sent,
            edges_processed: output.edges_processed,
            vertices_updated,
            vertices_changed,
            send_time: output.send_time,
            spmv_time: output.spmv_time,
            apply_time,
        };
        stats.record(step, options.record_supersteps);
        program.on_superstep_end(iteration, vertices_changed);
        iteration += 1;
    }

    Ok(RunResult { stats, converged })
}

/// Run a vertex program on a fused [`Graph`] until convergence or the
/// iteration limit (legacy facade over [`run_program`]).
///
/// The graph's current vertex properties and active set are the program's
/// initial state; algorithms are expected to set both before calling this
/// (see the paper's appendix: set the source distance to 0 and mark it
/// active). On return the graph holds the final vertex properties.
///
/// Builds one worker pool from `options` for the whole run; to reuse a pool
/// across several runs, use [`run_graph_program_with`] or a
/// [`crate::session::Session`]. Panics (with the [`GraphMatError`] message)
/// where the session frontend would return an error. Note that the
/// in-edge-matrix requirement is validated **eagerly**: an `In`/`Both`
/// program on an out-only graph panics even if the empty active set or a
/// zero iteration cap means no superstep would have touched the matrix
/// (the pre-redesign loop only failed lazily, inside the first SpMV).
pub fn run_graph_program<P: GraphProgram>(
    program: &P,
    graph: &mut Graph<P::VertexProp, P::Edge>,
    options: &RunOptions,
) -> RunResult {
    let executor = options.executor();
    run_graph_program_with(program, graph, options, &executor)
}

/// Like [`run_graph_program`], but on a caller-provided executor, so the
/// worker pool can be shared across runs. `options.nthreads` is ignored in
/// favour of the executor's lane count.
pub fn run_graph_program_with<P: GraphProgram>(
    program: &P,
    graph: &mut Graph<P::VertexProp, P::Edge>,
    options: &RunOptions,
    executor: &Executor,
) -> RunResult {
    let (topology, state) = graph.parts_mut();
    let mut ws = Workspace::<P>::new(topology.num_vertices() as usize, options);
    match run_program(program, topology, state, options, executor, &mut ws) {
        Ok(result) => result,
        // audit:allow(no-unwrap): documented behaviour of this legacy facade
        // (see the eager-validation note above); the fallible API is
        // `run_program`.
        Err(e) => panic!("{e}"),
    }
}

/// APPLY the reduced values in the workspace, update the state's active set,
/// and return `(apply_time, vertices_changed)`. Reuses the workspace's
/// `updated` list and `next_active` bit vector — no per-superstep
/// allocation.
fn apply_phase<P: GraphProgram>(
    program: &P,
    state: &mut VertexState<P::VertexProp>,
    ws: &mut Workspace<P>,
    executor: &Executor,
) -> (std::time::Duration, usize) {
    let apply_start = Instant::now();
    let Workspace {
        reduced,
        updated,
        next_active,
        ..
    } = ws;
    updated.clear();
    updated.extend(reduced.iter().map(|(k, _)| k));
    next_active.clear_all();

    let changed_total = if executor.nthreads() == 1 || updated.len() < PARALLEL_PHASE_MIN_WORK {
        // Sequential APPLY for small work lists (see the threshold's doc).
        let mut changed = 0usize;
        let props = state.properties_mut();
        for &v in updated.iter() {
            let reduced = reduced
                .get(v)
                // audit:allow(no-unwrap): `updated` is exactly the key set of
                // `reduced`, rebuilt from it a few lines above.
                .expect("updated vertex must have a reduced value");
            let slot = &mut props[v as usize];
            let old = slot.clone();
            program.apply(reduced, slot);
            if *slot != old {
                next_active.set(v as usize);
                changed += 1;
            }
        }
        changed
    } else {
        // Parallel APPLY over disjoint chunks of the updated-vertex list.
        // Each vertex id appears exactly once, so the unsafe shared-slice
        // writes never alias.
        let props_ptr = SharedProps::new(state.properties_mut());
        let reduced = &*reduced;
        let updated = &updated[..];
        let next_active = &*next_active;
        let ch = chunks(updated.len(), executor.nthreads() * 4);
        let changed = AtomicUsize::new(0);
        executor.for_each_dynamic(ch.count(), |chunk_idx| {
            let (start, end) = ch.bounds(chunk_idx);
            let mut local_changed = 0usize;
            for &v in &updated[start..end] {
                let reduced = reduced
                    .get(v)
                    // audit:allow(no-unwrap): `updated` is exactly the key
                    // set of `reduced`, rebuilt from it before the dispatch.
                    .expect("updated vertex must have a reduced value");
                // SAFETY: vertex ids in `updated` are unique, so each
                // property slot is written by exactly one chunk.
                let slot = unsafe { props_ptr.get_mut(v as usize) };
                let old = slot.clone();
                program.apply(reduced, slot);
                if *slot != old {
                    next_active.set(v as usize);
                    local_changed += 1;
                }
            }
            changed.fetch_add(local_changed, Ordering::Relaxed);
        });
        changed.load(Ordering::Relaxed)
    };

    state.load_active_from(next_active);
    (apply_start.elapsed(), changed_total)
}

/// A raw pointer to the vertex-property slice that can be shared across the
/// APPLY worker threads. Safe to use only because every updated vertex id is
/// unique, so no two threads ever touch the same element.
struct SharedProps<V> {
    ptr: *mut V,
    len: usize,
    /// Write-once shadow of the "each updated id is unique" invariant: a
    /// handle lives for one APPLY region, so every slot may be claimed at
    /// most once (see `graphmat_sparse::shard_check`).
    #[cfg(feature = "shard-check")]
    claims: graphmat_sparse::shard_check::ClaimMap,
}

// SAFETY: the pointer crosses threads only inside `apply_phase`'s parallel
// region, where each element index appears in the `updated` work list once
// and is therefore written through `get_mut` by exactly one lane; the
// element type is `V: Send`, and the caller blocks until every lane
// finishes, keeping the borrowed slice alive for the whole region.
unsafe impl<V: Send> Send for SharedProps<V> {}
unsafe impl<V: Send> Sync for SharedProps<V> {}

impl<V> SharedProps<V> {
    fn new(slice: &mut [V]) -> Self {
        SharedProps {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            #[cfg(feature = "shard-check")]
            claims: graphmat_sparse::shard_check::ClaimMap::new(slice.len(), "APPLY property slot"),
        }
    }

    /// # Safety
    /// Callers must guarantee `i < len` and that no other thread accesses
    /// element `i` concurrently.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, i: usize) -> &mut V {
        debug_assert!(i < self.len);
        // Claim before handing out the aliasable &mut so a duplicated id in
        // the updated work list panics instead of aliasing the property.
        #[cfg(feature = "shard-check")]
        self.claims.claim_exclusive(i);
        &mut *self.ptr.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuildOptions;
    use crate::program::{EdgeDirection, VertexId};
    use graphmat_io::edgelist::EdgeList;

    /// SSSP, as in the paper's appendix listing.
    struct Sssp;

    impl GraphProgram for Sssp {
        type VertexProp = f32;
        type Message = f32;
        type Reduced = f32;
        type Edge = f32;

        fn direction(&self) -> EdgeDirection {
            EdgeDirection::Out
        }

        fn send_message(&self, _v: VertexId, dist: &f32) -> Option<f32> {
            Some(*dist)
        }

        fn process_message(&self, msg: &f32, edge: &f32, _dst: &f32) -> f32 {
            msg + edge
        }

        fn reduce(&self, acc: &mut f32, value: f32) {
            if value < *acc {
                *acc = value;
            }
        }

        fn apply(&self, reduced: &f32, dist: &mut f32) {
            if *reduced < *dist {
                *dist = *reduced;
            }
        }
    }

    fn figure3_graph() -> Graph<f32> {
        let el = EdgeList::from_tuples(
            5,
            vec![
                (0, 1, 1.0),
                (0, 2, 3.0),
                (0, 3, 2.0),
                (1, 2, 1.0),
                (2, 3, 2.0),
                (3, 4, 2.0),
                (4, 0, 4.0),
            ],
        );
        Graph::from_edge_list(&el, GraphBuildOptions::default().with_partitions(2))
    }

    #[test]
    fn sssp_converges_to_figure3_distances() {
        let mut g = figure3_graph();
        g.set_all_properties(f32::MAX);
        g.set_property(0, 0.0);
        g.set_active(0);
        let result = run_graph_program(&Sssp, &mut g, &RunOptions::sequential());
        assert!(result.converged);
        // Final distances from A (paper Figure 3(d)): A=0, B=1, C=2, D=2, E=4
        assert_eq!(*g.property(0), 0.0);
        assert_eq!(*g.property(1), 1.0);
        assert_eq!(*g.property(2), 2.0);
        assert_eq!(*g.property(3), 2.0);
        assert_eq!(*g.property(4), 4.0);
        assert!(result.stats.iterations >= 3);
    }

    #[test]
    fn iteration_limit_is_respected() {
        let mut g = figure3_graph();
        g.set_all_properties(f32::MAX);
        g.set_property(0, 0.0);
        g.set_active(0);
        let result = run_graph_program(
            &Sssp,
            &mut g,
            &RunOptions::sequential().with_max_iterations(1),
        );
        assert!(!result.converged);
        assert_eq!(result.stats.iterations, 1);
        // only A's direct neighbours have been relaxed
        assert_eq!(*g.property(4), f32::MAX);
    }

    #[test]
    fn empty_active_set_converges_immediately() {
        let mut g = figure3_graph();
        g.set_all_properties(f32::MAX);
        let result = run_graph_program(&Sssp, &mut g, &RunOptions::default());
        assert!(result.converged);
        assert_eq!(result.stats.iterations, 0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut g1 = figure3_graph();
        g1.set_all_properties(f32::MAX);
        g1.set_property(0, 0.0);
        g1.set_active(0);
        run_graph_program(&Sssp, &mut g1, &RunOptions::sequential());

        let mut g2 = figure3_graph();
        g2.set_all_properties(f32::MAX);
        g2.set_property(0, 0.0);
        g2.set_active(0);
        run_graph_program(&Sssp, &mut g2, &RunOptions::default().with_threads(4));

        assert_eq!(g1.properties(), g2.properties());
    }

    #[test]
    fn stats_capture_superstep_detail() {
        let mut g = figure3_graph();
        g.set_all_properties(f32::MAX);
        g.set_property(0, 0.0);
        g.set_active(0);
        let result = run_graph_program(&Sssp, &mut g, &RunOptions::sequential());
        assert_eq!(result.stats.supersteps.len(), result.stats.iterations);
        assert_eq!(result.stats.nthreads, 1);
        let first = &result.stats.supersteps[0];
        assert_eq!(first.active_vertices, 1);
        assert_eq!(first.messages_sent, 1);
        assert_eq!(first.edges_processed, 3);
        assert_eq!(first.vertices_updated, 3);
        assert!(result.stats.edges_processed >= 3);
    }

    #[test]
    fn run_with_shared_executor_matches_run_with_owned_pool() {
        let executor = Executor::new(4);
        let options = RunOptions::default().with_threads(4);
        let run_shared = |ex: &Executor| {
            let mut g = figure3_graph();
            g.set_all_properties(f32::MAX);
            g.set_property(0, 0.0);
            g.set_active(0);
            run_graph_program_with(&Sssp, &mut g, &options, ex);
            g.properties().to_vec()
        };
        // The same executor serves several runs.
        let first = run_shared(&executor);
        let second = run_shared(&executor);
        assert_eq!(first, second);

        let mut g = figure3_graph();
        g.set_all_properties(f32::MAX);
        g.set_property(0, 0.0);
        g.set_active(0);
        run_graph_program(&Sssp, &mut g, &options);
        assert_eq!(first, g.properties().to_vec());
    }

    #[test]
    fn run_program_rejects_mismatched_state() {
        let g = figure3_graph();
        let (topology, _) = g.into_parts();
        let mut wrong: VertexState<f32> = VertexState::new(3);
        let options = RunOptions::sequential();
        let mut ws = Workspace::<Sssp>::new(topology.num_vertices() as usize, &options);
        let err = run_program(
            &Sssp,
            &topology,
            &mut wrong,
            &options,
            &Executor::sequential(),
            &mut ws,
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraphMatError::StateLengthMismatch {
                state_vertices: 3,
                topology_vertices: 5
            }
        );
    }

    #[test]
    fn run_program_rejects_missing_in_matrix_before_running() {
        struct Inward;
        impl GraphProgram for Inward {
            type VertexProp = f32;
            type Message = f32;
            type Reduced = f32;
            type Edge = f32;
            fn direction(&self) -> EdgeDirection {
                EdgeDirection::In
            }
            fn send_message(&self, _v: VertexId, d: &f32) -> Option<f32> {
                Some(*d)
            }
            fn process_message(&self, m: &f32, _e: &f32, _d: &f32) -> f32 {
                *m
            }
            fn reduce(&self, acc: &mut f32, v: f32) {
                *acc += v;
            }
            fn apply(&self, r: &f32, p: &mut f32) {
                *p = *r;
            }
        }
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0)]);
        let topology =
            Topology::from_edge_list(&el, GraphBuildOptions::default().with_in_edges(false));
        let mut state: VertexState<f32> = VertexState::for_topology(&topology);
        let options = RunOptions::sequential();
        let mut ws = Workspace::<Inward>::new(3, &options);
        let err = run_program(
            &Inward,
            &topology,
            &mut state,
            &options,
            &Executor::sequential(),
            &mut ws,
        )
        .unwrap_err();
        assert_eq!(err, GraphMatError::MissingInMatrix);
    }

    /// PageRank-style program where every vertex is active every iteration;
    /// exercises the parallel APPLY path on a slightly larger graph.
    struct Rank;

    impl GraphProgram for Rank {
        type VertexProp = f64;
        type Message = f64;
        type Reduced = f64;
        type Edge = f32;

        fn send_message(&self, _v: VertexId, rank: &f64) -> Option<f64> {
            Some(*rank)
        }

        fn process_message(&self, msg: &f64, _edge: &f32, _dst: &f64) -> f64 {
            *msg
        }

        fn reduce(&self, acc: &mut f64, value: f64) {
            *acc += value;
        }

        fn apply(&self, reduced: &f64, rank: &mut f64) {
            *rank = 0.15 + 0.85 * *reduced;
        }
    }

    #[test]
    fn parallel_apply_matches_sequential_on_larger_graph() {
        use graphmat_io::rmat::{self, RmatConfig};
        let el = rmat::generate(&RmatConfig::graph500(10).with_seed(11));
        let opts = GraphBuildOptions::default().with_partitions(16);

        let run = |threads: usize| {
            let mut g: Graph<f64> = Graph::from_edge_list(&el, opts);
            g.set_all_properties(1.0);
            g.set_all_active();
            run_graph_program(
                &Rank,
                &mut g,
                &RunOptions::default()
                    .with_threads(threads)
                    .with_max_iterations(3),
            );
            g.properties().to_vec()
        };

        let seq = run(1);
        let par = run(4);
        for (a, b) in seq.iter().zip(par.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn shared_topology_serves_two_states_without_cloning() {
        use std::sync::Arc;
        let g = figure3_graph();
        let (topology, _) = g.into_parts();
        let topology = Arc::new(topology);
        let options = RunOptions::sequential();
        let executor = Executor::sequential();

        let run_from = |source: VertexId| {
            let mut state: VertexState<f32> = VertexState::for_topology(&topology);
            state.set_all_properties(f32::MAX);
            state.set_property(source, 0.0);
            state.set_active(source);
            let mut ws = Workspace::<Sssp>::new(topology.num_vertices() as usize, &options);
            run_program(&Sssp, &topology, &mut state, &options, &executor, &mut ws).unwrap();
            state.into_properties()
        };

        // Two different queries over the SAME topology instance.
        assert_eq!(run_from(0), vec![0.0, 1.0, 2.0, 2.0, 4.0]);
        assert_eq!(run_from(1), vec![9.0, 0.0, 1.0, 3.0, 5.0]);
    }
}
