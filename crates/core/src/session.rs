//! [`Session`]: one persistent worker pool, many concurrent queries.
//!
//! The serving architecture GraphMat's matrix backend enables (and which
//! RedisGraph demonstrated in production) is: build the matrix **once**,
//! keep it resident, and answer many independent queries against it. The
//! session is the owning handle for that pattern:
//!
//! * it owns one [`Executor`] — a pool of parked worker threads created at
//!   [`Session::new`] and reused by every run; concurrent runs share the
//!   pool safely (parallel regions are serialized inside the executor, and
//!   phases below the parallel-work threshold run inline on the calling
//!   thread);
//! * [`Session::build_graph`] is a fluent builder producing an
//!   `Arc<Topology<E>>` — the immutable, `Sync` half that any number of
//!   runs can share without cloning;
//! * [`Session::run`] is a fluent run builder: seed vertices, initialise
//!   properties, cap iterations, pick the ablation toggles, then
//!   [`RunBuilder::execute`] into a fresh [`VertexState`] or
//!   [`RunBuilder::execute_with`] into a pooled one (which also recycles
//!   the engine workspace cached inside the state — reruns allocate
//!   nothing).
//!
//! Sessions run **direction-optimized** by default: the run defaults select
//! [`VectorKind::Auto`], which picks the sparse push or dense pull SpMV
//! backend per superstep by frontier density (bit-for-bit identical results
//! either way; see [`crate::engine::choose_backend`]). Force a backend with
//! [`RunBuilder::vector`], tune the switch point with
//! [`RunBuilder::pull_alpha`], or skip building the pull mirrors entirely
//! with [`GraphBuilder::pull_enabled`]`(false)` (the mirrors cost roughly
//! the adjacency matrices' memory again).
//!
//! Every fallible step returns a [`GraphMatError`] instead of panicking:
//! out-of-range seed vertices, zero threads, empty edge lists, mismatched
//! state lengths, missing in-edge matrices and zero iteration limits are
//! all error responses a serving layer can hand back to a client.
//!
//! ```
//! use graphmat_core::session::Session;
//! use graphmat_core::program::{GraphProgram, VertexId};
//! use graphmat_io::edgelist::EdgeList;
//!
//! struct Hops;
//! impl GraphProgram for Hops {
//!     type VertexProp = u32;
//!     type Message = u32;
//!     type Reduced = u32;
//!     type Edge = ();
//!     fn send_message(&self, _v: VertexId, d: &u32) -> Option<u32> { Some(*d) }
//!     fn process_message(&self, m: &u32, _e: &(), _d: &u32) -> u32 { m.saturating_add(1) }
//!     fn reduce(&self, acc: &mut u32, v: u32) { *acc = (*acc).min(v); }
//!     fn apply(&self, r: &u32, d: &mut u32) { *d = (*d).min(*r); }
//! }
//!
//! let session = Session::sequential();
//! let edges = EdgeList::from_pairs(4, vec![(0, 1), (1, 2), (2, 3)]);
//! let topo = session.build_graph(&edges).in_edges(false).finish().unwrap();
//! let outcome = session
//!     .run(&topo, Hops)
//!     .init_all(u32::MAX)
//!     .seed_with(0, 0)
//!     .execute()
//!     .unwrap();
//! assert_eq!(outcome.values, vec![0, 1, 2, 3]);
//! assert!(outcome.converged);
//! ```

use crate::engine::Workspace;
use crate::error::{GraphMatError, Result};
use crate::options::{ActivityPolicy, DispatchMode, RunOptions, VectorKind};
use crate::program::{GraphProgram, VertexId};
use crate::runner::{run_program_view, RunResult};
use crate::state::VertexState;
use crate::stats::RunStats;
use crate::topology::{GraphBuildOptions, Topology};
use crate::view::GraphView;
use graphmat_io::edgelist::EdgeList;
use graphmat_sparse::parallel::{available_threads, Executor};
use std::sync::Arc;

/// Options for creating a [`Session`].
#[derive(Clone, Copy, Debug)]
pub struct SessionOptions {
    /// Number of executor lanes (worker pool size). Must be at least 1 —
    /// unlike [`RunOptions::nthreads`] there is no "0 = auto" here; use
    /// [`SessionOptions::default`] for all available hardware threads.
    pub threads: usize,
    /// Default run options applied to every [`RunBuilder`] (each builder can
    /// override them per run). The `nthreads` field is ignored: the
    /// session's pool decides the lane count.
    pub run_defaults: RunOptions,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            threads: available_threads(),
            // Sessions default to the direction-optimized backend: push or
            // pull is chosen per superstep, with results bit-for-bit
            // identical to forced push. (`RunOptions::default()` itself
            // stays `Bitvector` so the legacy facades keep reproducing the
            // paper's always-push configuration.)
            run_defaults: RunOptions::default().with_vector(VectorKind::Auto),
        }
    }
}

impl SessionOptions {
    /// Set the worker-pool size.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the default run options.
    pub fn with_run_defaults(mut self, defaults: RunOptions) -> Self {
        self.run_defaults = defaults;
        self
    }
}

/// An owning handle over one persistent executor pool plus graph/run
/// builders. `Session` is `Sync`: share it by reference (or `Arc`) across
/// threads and issue concurrent runs against shared topologies.
#[derive(Debug)]
pub struct Session {
    executor: Executor,
    defaults: RunOptions,
}

impl Session {
    /// Create a session with an explicit configuration.
    ///
    /// # Errors
    ///
    /// [`GraphMatError::ZeroThreads`] if `options.threads == 0`;
    /// [`GraphMatError::ZeroIterations`] if the run defaults carry
    /// `max_iterations == Some(0)`.
    pub fn new(options: SessionOptions) -> Result<Session> {
        if options.threads == 0 {
            return Err(GraphMatError::ZeroThreads);
        }
        options.run_defaults.validate()?;
        let mut defaults = options.run_defaults;
        // The pool decides the lane count; keep the stored defaults honest.
        defaults.nthreads = options.threads;
        Ok(Session {
            executor: Executor::new(options.threads),
            defaults,
        })
    }

    /// A session using every available hardware thread.
    pub fn with_defaults() -> Result<Session> {
        Session::new(SessionOptions::default())
    }

    /// A session with a pool of exactly `threads` lanes.
    pub fn with_threads(threads: usize) -> Result<Session> {
        Session::new(SessionOptions::default().with_threads(threads))
    }

    /// A single-threaded session (no worker pool; everything runs inline on
    /// the calling thread). Cannot fail. Like every session, defaults to
    /// [`VectorKind::Auto`].
    pub fn sequential() -> Session {
        Session {
            executor: Executor::sequential(),
            defaults: RunOptions::sequential().with_vector(VectorKind::Auto),
        }
    }

    /// Number of executor lanes the session's pool provides.
    pub fn nthreads(&self) -> usize {
        self.executor.nthreads()
    }

    /// The session's executor (for advanced callers driving
    /// [`crate::runner::run_program`] directly while sharing the pool).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The run defaults every [`RunBuilder`] starts from.
    pub fn run_defaults(&self) -> &RunOptions {
        &self.defaults
    }

    /// Start building a shared topology from an edge list. When the
    /// partition count is left automatic, it defaults to
    /// `partition_factor ×` **this session's pool size** (the paper's
    /// `nthreads * 8` rule) — not the machine's hardware thread count.
    pub fn build_graph<'e, E: Clone>(&self, edges: &'e EdgeList<E>) -> GraphBuilder<'e, E> {
        GraphBuilder {
            edges,
            // Session runs default to VectorKind::Auto, so session-built
            // topologies carry the pull mirrors Auto switches to (the
            // legacy GraphBuildOptions::default() leaves them off, to match
            // the legacy facades' always-push RunOptions::default()).
            options: GraphBuildOptions::default().with_pull_mirrors(true),
            threads: self.nthreads(),
        }
    }

    /// Start building a run of `program` over `topology`. The builder
    /// starts from the session's run defaults.
    pub fn run<'s, 't, P: GraphProgram>(
        &'s self,
        topology: &'t Topology<P::Edge>,
        program: P,
    ) -> RunBuilder<'s, 't, P> {
        self.run_view(GraphView::base(topology), program)
    }

    /// Start building a run of `program` over a `(base ⊕ delta)`
    /// [`GraphView`] — typically `snapshot.view()` from a
    /// [`crate::store::GraphStore`] snapshot. Identical to [`Session::run`]
    /// when the view carries no overlay; with pending edits the run uses the
    /// overlay-aware push backend (forcing [`VectorKind::Dense`] is rejected
    /// at execute time, see [`crate::runner::run_program_view`]).
    pub fn run_view<'s, 't, P: GraphProgram>(
        &'s self,
        view: GraphView<'t, P::Edge>,
        program: P,
    ) -> RunBuilder<'s, 't, P> {
        RunBuilder {
            session: self,
            view,
            program,
            options: self.defaults,
            init: InitSpec::None,
            seeds: Vec::new(),
            activate_all: false,
        }
    }
}

/// Fluent builder for an `Arc<Topology<E>>` (from [`Session::build_graph`]).
pub struct GraphBuilder<'e, E> {
    edges: &'e EdgeList<E>,
    options: GraphBuildOptions,
    /// The session's pool size — what an automatic partition count
    /// multiplies `partition_factor` by.
    threads: usize,
}

impl<'e, E: Clone> GraphBuilder<'e, E> {
    /// Explicitly set the number of matrix partitions (`0` = the default
    /// `partition_factor ×` the session's pool size).
    pub fn partitions(mut self, n: usize) -> Self {
        self.options.num_partitions = n;
        self
    }

    /// Set the partition multiplier used when the partition count is
    /// automatic (the paper uses 8).
    pub fn partition_factor(mut self, factor: usize) -> Self {
        self.options.partition_factor = factor;
        self
    }

    /// Balance partitions by edge count (default `true`).
    pub fn balanced(mut self, balance: bool) -> Self {
        self.options.balance_partitions = balance;
        self
    }

    /// Also build the non-transposed matrix for in-edge scattering
    /// (default `true`; `In`/`Both`-direction programs need it).
    pub fn in_edges(mut self, build: bool) -> Self {
        self.options.build_in_edges = build;
        self
    }

    /// Also build the row-major CSR pull mirrors the direction-optimized
    /// backend traverses (default `true`). The mirrors cost roughly the
    /// DCSC matrices' memory again — [`Topology::pull_bytes`] reports the
    /// exact figure, and [`Topology::matrix_bytes`] includes it. With
    /// `pull_enabled(false)` the default [`VectorKind::Auto`] runs
    /// always-push and a forced [`VectorKind::Dense`] run is rejected with
    /// [`GraphMatError::MissingPullMirror`].
    pub fn pull_enabled(mut self, build: bool) -> Self {
        self.options.build_pull_mirrors = build;
        self
    }

    /// Override every construction option at once. Note this replaces the
    /// builder's pull-mirror default too: `GraphBuildOptions::default()`
    /// leaves the mirrors **off**, so follow up with
    /// [`GraphBuilder::pull_enabled`]`(true)` if the direction-optimized
    /// backend should stay available.
    pub fn build_options(mut self, options: GraphBuildOptions) -> Self {
        self.options = options;
        self
    }

    /// Build the topology, ready to be shared across concurrent runs.
    ///
    /// # Errors
    ///
    /// [`GraphMatError::EmptyEdgeList`] if the edge list has no edges — an
    /// all-isolated-vertices "graph" is almost always an upstream loading
    /// bug, and the partitioner cannot balance zero edges meaningfully.
    pub fn finish(self) -> Result<Arc<Topology<E>>> {
        if self.edges.is_empty() {
            return Err(GraphMatError::EmptyEdgeList);
        }
        // Resolve an automatic partition count against the session's pool
        // size (the paper's `nthreads * 8`), not the machine's hardware
        // thread count — a 1-lane session on a 64-thread host must not
        // walk 512 partitions per SpMV.
        let mut options = self.options;
        options.num_partitions = options.effective_partitions_for(self.threads);
        Ok(Arc::new(Topology::from_edge_list(self.edges, options)))
    }
}

/// How a run builder initialises vertex properties before seeding. The
/// lifetime lets the init closure borrow from the topology (e.g. its
/// degree arrays) without cloning them per query.
enum InitSpec<'t, V> {
    /// Leave the state's current properties (warm start on pooled states;
    /// `V::default()` on fresh ones).
    None,
    /// Set every property to one value.
    All(V),
    /// Compute every property from the vertex id.
    Fn(Box<dyn Fn(VertexId) -> V + 't>),
}

/// The outcome of a builder-driven run: the final vertex properties plus
/// the engine statistics.
#[derive(Clone, Debug)]
pub struct RunOutcome<V> {
    /// Final per-vertex properties, indexed by vertex id (moved out of the
    /// run's state — no clone).
    pub values: Vec<V>,
    /// Timing and work statistics for the run.
    pub stats: RunStats,
    /// `true` if the program terminated because no vertex changed state,
    /// `false` if it hit the iteration limit.
    pub converged: bool,
}

/// Fluent builder for one vertex-program run (from [`Session::run`] or
/// [`Session::run_view`]).
pub struct RunBuilder<'s, 't, P: GraphProgram> {
    session: &'s Session,
    view: GraphView<'t, P::Edge>,
    program: P,
    options: RunOptions,
    init: InitSpec<'t, P::VertexProp>,
    seeds: Vec<(VertexId, Option<P::VertexProp>)>,
    activate_all: bool,
}

impl<'s, 't, P: GraphProgram> RunBuilder<'s, 't, P> {
    /// Mark vertex `v` active for the first superstep (validated against
    /// the topology's vertex count at execute time).
    pub fn seed(mut self, v: VertexId) -> Self {
        self.seeds.push((v, None));
        self
    }

    /// Set vertex `v`'s property to `value` *and* mark it active — the
    /// "source distance 0, source active" idiom of the paper's appendix in
    /// one call.
    pub fn seed_with(mut self, v: VertexId, value: P::VertexProp) -> Self {
        self.seeds.push((v, Some(value)));
        self
    }

    /// Set every vertex's property to `value` before seeding.
    pub fn init_all(mut self, value: P::VertexProp) -> Self {
        self.init = InitSpec::All(value);
        self
    }

    /// Compute every vertex's property from its id before seeding. The
    /// closure may borrow from the topology (it only needs to live as long
    /// as this builder), so per-vertex data such as
    /// [`Topology::out_degrees`] can be read in place, without a per-query
    /// clone.
    pub fn init_with(mut self, f: impl Fn(VertexId) -> P::VertexProp + 't) -> Self {
        self.init = InitSpec::Fn(Box::new(f));
        self
    }

    /// Mark every vertex active for the first superstep (PageRank-style
    /// programs).
    pub fn activate_all(mut self) -> Self {
        self.activate_all = true;
        self
    }

    /// Cap the number of supersteps (`0` is rejected at execute time with
    /// [`GraphMatError::ZeroIterations`]).
    pub fn max_iterations(mut self, max: usize) -> Self {
        self.options.max_iterations = Some(max);
        self
    }

    /// Run until no vertex changes state (the default unless the session's
    /// run defaults say otherwise).
    pub fn until_convergence(mut self) -> Self {
        self.options.max_iterations = None;
        self
    }

    /// Select the message-vector representation / SpMV backend:
    /// [`VectorKind::Auto`] (the session default) picks push or pull per
    /// superstep; `Bitvector`/`Sorted` force push; `Dense` forces pull
    /// (rejected at execute time with [`GraphMatError::MissingPullMirror`]
    /// if the topology was built with `pull_enabled(false)`). All kinds
    /// produce bit-for-bit identical results.
    pub fn vector(mut self, vector: VectorKind) -> Self {
        self.options.vector = vector;
        self
    }

    /// Tune the α threshold of the [`VectorKind::Auto`] direction selector:
    /// a superstep pulls when the frontier's out-edges exceed
    /// `unexplored_edges / α` (and the frontier is not tiny). Larger α
    /// switches to pull earlier; non-positive or non-finite values are
    /// rejected at execute time.
    pub fn pull_alpha(mut self, alpha: f64) -> Self {
        self.options.pull_alpha = alpha;
        self
    }

    /// Set a hard wall-clock deadline for the run (`None` clears one
    /// inherited from the session defaults). Checked between supersteps —
    /// when the deadline passes, the run stops with
    /// [`GraphMatError::DeadlineExceeded`] instead of finishing, which is
    /// how a serving layer bounds per-request latency. The overshoot is at
    /// most one superstep; on [`RunBuilder::execute_with`] the completed
    /// supersteps' partial results remain in the pooled state (re-init with
    /// [`RunBuilder::init_all`]/[`RunBuilder::init_with`] on the next run).
    pub fn deadline(mut self, deadline: impl Into<Option<std::time::Instant>>) -> Self {
        self.options.deadline = deadline.into();
        self
    }

    /// Select the callback dispatch mode.
    pub fn dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.options.dispatch = dispatch;
        self
    }

    /// Select how the next superstep's active set is derived.
    pub fn activity(mut self, activity: ActivityPolicy) -> Self {
        self.options.activity = activity;
        self
    }

    /// Record (or suppress) per-superstep statistics.
    pub fn record_supersteps(mut self, record: bool) -> Self {
        self.options.record_supersteps = record;
        self
    }

    /// Everything about this run that can be rejected without touching any
    /// state: option validity, seed ranges, and the in-edge matrix the
    /// program's direction requires. Runs **before** the first mutation so
    /// a rejected run leaves a pooled state's previous contents intact.
    fn validate(&self) -> Result<()> {
        self.options.validate()?;
        for (v, _) in &self.seeds {
            if *v >= self.view.num_vertices() {
                return Err(GraphMatError::VertexOutOfRange {
                    vertex: *v,
                    num_vertices: self.view.num_vertices(),
                });
            }
        }
        if self.program.direction() != crate::program::EdgeDirection::Out
            && !self.view.has_in_edges()
        {
            return Err(GraphMatError::MissingInMatrix);
        }
        if self.options.vector == VectorKind::Dense {
            if self.view.has_overlay() {
                return Err(GraphMatError::InvalidParameter(
                    "VectorKind::Dense forces the pull backend, which cannot traverse a \
                     snapshot with pending deltas; use Auto (or a push kind) until the \
                     store compacts",
                ));
            }
            if !self.view.topology().has_pull_mirrors() {
                return Err(GraphMatError::MissingPullMirror);
            }
        }
        Ok(())
    }

    /// Apply init, seeds and activation to a state whose length already
    /// matches the topology and whose seeds [`RunBuilder::validate`] has
    /// already range-checked. Always clears the active set first so pooled
    /// states cannot leak stale active bits into the new run.
    fn prepare(&self, state: &mut VertexState<P::VertexProp>) {
        state.clear_active();
        match &self.init {
            InitSpec::None => {}
            InitSpec::All(value) => state.set_all_properties(value.clone()),
            InitSpec::Fn(f) => state.init_properties(f),
        }
        for (v, value) in &self.seeds {
            if let Some(value) = value {
                state.set_property(*v, value.clone());
            }
            state.set_active(*v);
        }
        if self.activate_all {
            state.set_all_active();
        }
    }

    /// Run into a fresh [`VertexState`] and return the final properties.
    ///
    /// # Errors
    ///
    /// [`GraphMatError::ZeroIterations`] for a `max_iterations(0)` request,
    /// [`GraphMatError::VertexOutOfRange`] for a seed outside the topology,
    /// [`GraphMatError::MissingInMatrix`] if the program needs in-edges the
    /// topology does not have.
    pub fn execute(self) -> Result<RunOutcome<P::VertexProp>>
    where
        P::VertexProp: Default,
    {
        self.validate()?;
        let n = self.view.num_vertices() as usize;
        let mut state: VertexState<P::VertexProp> = VertexState::new(n);
        self.prepare(&mut state);
        let mut ws = Workspace::<P>::new(n, &self.options);
        let result = run_program_view(
            &self.program,
            self.view,
            &mut state,
            &self.options,
            &self.session.executor,
            &mut ws,
        )?;
        Ok(RunOutcome {
            values: state.into_properties(),
            stats: result.stats,
            converged: result.converged,
        })
    }

    /// Run into a caller-owned (pooled) state, recycling the engine
    /// workspace cached inside it: the second run of the same program type
    /// through the same state performs no buffer allocation at all.
    ///
    /// The state's active set is always cleared before seeding; properties
    /// are left untouched unless [`RunBuilder::init_all`] /
    /// [`RunBuilder::init_with`] is given (warm starts are a feature — pass
    /// an init to get a fully deterministic cold start).
    ///
    /// On return the state holds the final vertex properties.
    ///
    /// # Errors
    ///
    /// Everything [`RunBuilder::execute`] reports, plus
    /// [`GraphMatError::StateLengthMismatch`] if the state does not match
    /// the topology.
    pub fn execute_with(self, state: &mut VertexState<P::VertexProp>) -> Result<RunResult>
    where
        P: 'static,
    {
        self.validate()?;
        state.check_matches(self.view.topology())?;
        self.prepare(state);
        let n = self.view.num_vertices() as usize;
        let mut ws = state
            .take_cached_workspace::<Workspace<P>>()
            .filter(|ws| ws.is_compatible(n, &self.options))
            .unwrap_or_else(|| Box::new(Workspace::<P>::new(n, &self.options)));
        let result = run_program_view(
            &self.program,
            self.view,
            state,
            &self.options,
            &self.session.executor,
            &mut ws,
        );
        state.cache_workspace(ws);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::EdgeDirection;

    /// SSSP over f32 weights (the paper's appendix program).
    struct Sssp;

    impl GraphProgram for Sssp {
        type VertexProp = f32;
        type Message = f32;
        type Reduced = f32;
        type Edge = f32;

        fn send_message(&self, _v: VertexId, dist: &f32) -> Option<f32> {
            Some(*dist)
        }

        fn process_message(&self, msg: &f32, edge: &f32, _dst: &f32) -> f32 {
            msg + edge
        }

        fn reduce(&self, acc: &mut f32, value: f32) {
            if value < *acc {
                *acc = value;
            }
        }

        fn apply(&self, reduced: &f32, dist: &mut f32) {
            if *reduced < *dist {
                *dist = *reduced;
            }
        }
    }

    fn figure3_edges() -> EdgeList<f32> {
        EdgeList::from_tuples(
            5,
            vec![
                (0, 1, 1.0),
                (0, 2, 3.0),
                (0, 3, 2.0),
                (1, 2, 1.0),
                (2, 3, 2.0),
                (3, 4, 2.0),
                (4, 0, 4.0),
            ],
        )
    }

    #[test]
    fn session_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
    }

    #[test]
    fn sessions_default_to_direction_optimization() {
        assert_eq!(
            SessionOptions::default().run_defaults.vector,
            VectorKind::Auto
        );
        assert_eq!(
            Session::sequential().run_defaults().vector,
            VectorKind::Auto
        );
        assert_eq!(
            Session::with_threads(2).unwrap().run_defaults().vector,
            VectorKind::Auto
        );
        // The legacy RunOptions default stays on the paper's always-push.
        assert_eq!(RunOptions::default().vector, VectorKind::Bitvector);
    }

    #[test]
    fn forced_dense_on_a_pull_disabled_topology_is_an_error() {
        let session = Session::sequential();
        let edges = figure3_edges();
        let topo = session
            .build_graph(&edges)
            .pull_enabled(false)
            .in_edges(false)
            .finish()
            .unwrap();
        assert!(!topo.has_pull_mirrors());
        let err = session
            .run(&topo, Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .vector(VectorKind::Dense)
            .execute()
            .unwrap_err();
        assert_eq!(err, GraphMatError::MissingPullMirror);
        // Auto degrades gracefully on the same topology.
        let outcome = session
            .run(&topo, Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .execute()
            .unwrap();
        assert_eq!(outcome.values, vec![0.0, 1.0, 2.0, 2.0, 4.0]);
        assert_eq!(outcome.stats.pull_supersteps, 0);
    }

    #[test]
    fn all_vector_kinds_agree_through_the_builder() {
        let session = Session::with_threads(2).unwrap();
        let edges = figure3_edges();
        let topo = session.build_graph(&edges).partitions(2).finish().unwrap();
        let run = |kind: VectorKind| {
            session
                .run(&*topo, Sssp)
                .init_all(f32::MAX)
                .seed_with(0, 0.0)
                .vector(kind)
                .execute()
                .unwrap()
                .values
        };
        let push = run(VectorKind::Bitvector);
        assert_eq!(push, run(VectorKind::Sorted));
        assert_eq!(push, run(VectorKind::Dense));
        assert_eq!(push, run(VectorKind::Auto));
    }

    #[test]
    fn invalid_pull_alpha_is_rejected_before_mutation() {
        let session = Session::sequential();
        let edges = figure3_edges();
        let topo = session.build_graph(&edges).finish().unwrap();
        let mut state: VertexState<f32> = VertexState::for_topology(&topo);
        state.set_all_properties(9.0);
        let err = session
            .run(&*topo, Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .pull_alpha(-3.0)
            .execute_with(&mut state)
            .unwrap_err();
        assert_eq!(
            err,
            GraphMatError::InvalidParameter("pull_alpha must be positive and finite")
        );
        assert!(state.properties().iter().all(|&p| p == 9.0));
    }

    #[test]
    fn expired_deadline_stops_the_run_with_a_typed_error() {
        let session = Session::sequential();
        let edges = figure3_edges();
        let topo = session
            .build_graph(&edges)
            .in_edges(false)
            .finish()
            .unwrap();
        // A deadline already in the past trips before the first superstep.
        let err = session
            .run(&topo, Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .deadline(std::time::Instant::now() - std::time::Duration::from_millis(1))
            .execute()
            .unwrap_err();
        assert_eq!(err, GraphMatError::DeadlineExceeded);
        // A comfortable deadline changes nothing.
        let outcome = session
            .run(&topo, Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .deadline(std::time::Instant::now() + std::time::Duration::from_secs(60))
            .execute()
            .unwrap();
        assert_eq!(outcome.values, vec![0.0, 1.0, 2.0, 2.0, 4.0]);
        // `None` clears a deadline inherited from an earlier builder call.
        let outcome = session
            .run(&topo, Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .deadline(std::time::Instant::now())
            .deadline(None)
            .execute()
            .unwrap();
        assert!(outcome.converged);
    }

    #[test]
    fn deadline_mid_run_leaves_partial_results_in_a_pooled_state() {
        // A program that never converges (each superstep increments every
        // vertex), so only the deadline can stop it.
        struct Count;
        impl GraphProgram for Count {
            type VertexProp = u64;
            type Message = u64;
            type Reduced = u64;
            type Edge = f32;
            fn send_message(&self, _v: VertexId, c: &u64) -> Option<u64> {
                Some(*c)
            }
            fn process_message(&self, m: &u64, _e: &f32, _d: &u64) -> u64 {
                *m
            }
            fn reduce(&self, acc: &mut u64, v: u64) {
                *acc = (*acc).max(v);
            }
            fn apply(&self, _r: &u64, c: &mut u64) {
                *c += 1;
            }
        }
        let session = Session::sequential();
        let edges = figure3_edges();
        let topo = session
            .build_graph(&edges)
            .in_edges(false)
            .finish()
            .unwrap();
        let mut state: VertexState<u64> = VertexState::for_topology(&topo);
        let err = session
            .run(&topo, Count)
            .init_all(0)
            .activate_all()
            .activity(ActivityPolicy::AlwaysAll)
            .deadline(std::time::Instant::now() + std::time::Duration::from_millis(20))
            .execute_with(&mut state)
            .unwrap_err();
        assert_eq!(err, GraphMatError::DeadlineExceeded);
        // Some supersteps completed before the deadline and their effects
        // are visible — the state is reusable for the next (re-initialised)
        // query.
        assert!(state.properties().iter().all(|&c| c > 0));
        assert!(state.has_cached_workspace());
    }

    #[test]
    fn zero_threads_is_rejected() {
        let err = Session::new(SessionOptions::default().with_threads(0)).unwrap_err();
        assert_eq!(err, GraphMatError::ZeroThreads);
    }

    #[test]
    fn invalid_run_defaults_are_rejected() {
        let opts = SessionOptions::default()
            .with_run_defaults(RunOptions::default().with_max_iterations(0));
        assert_eq!(
            Session::new(opts).unwrap_err(),
            GraphMatError::ZeroIterations
        );
    }

    #[test]
    fn automatic_partition_count_follows_the_session_pool_size() {
        // The paper's rule is nthreads × 8 where nthreads is what will
        // actually run the SpMV — the session's pool, not the machine.
        let n = 4096u32;
        let edges = EdgeList::from_pairs(n, (0..n - 1).map(|v| (v, v + 1)));
        for threads in [1usize, 2] {
            let session = Session::with_threads(threads).unwrap();
            let topo = session
                .build_graph(&edges)
                .in_edges(false)
                .finish()
                .unwrap();
            assert_eq!(topo.num_partitions(), 8 * threads);
        }
        // An explicit partition count still wins.
        let session = Session::with_threads(2).unwrap();
        let topo = session
            .build_graph(&edges)
            .partitions(5)
            .in_edges(false)
            .finish()
            .unwrap();
        assert_eq!(topo.num_partitions(), 5);
    }

    #[test]
    fn empty_edge_list_is_rejected() {
        let session = Session::sequential();
        let edges: EdgeList<f32> = EdgeList::new(10);
        let err = session.build_graph(&edges).finish().unwrap_err();
        assert_eq!(err, GraphMatError::EmptyEdgeList);
    }

    #[test]
    fn builder_runs_figure3_sssp() {
        let session = Session::with_threads(2).unwrap();
        let edges = figure3_edges();
        let topo = session
            .build_graph(&edges)
            .partitions(2)
            .in_edges(false)
            .finish()
            .unwrap();
        let outcome = session
            .run(&topo, Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .max_iterations(50)
            .vector(VectorKind::Bitvector)
            .execute()
            .unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.values, vec![0.0, 1.0, 2.0, 2.0, 4.0]);
        assert_eq!(outcome.stats.nthreads, 2);
    }

    #[test]
    fn out_of_range_seed_is_an_error_not_a_panic() {
        let session = Session::sequential();
        let edges = figure3_edges();
        let topo = session.build_graph(&edges).finish().unwrap();
        let err = session
            .run(&topo, Sssp)
            .seed_with(99, 0.0)
            .execute()
            .unwrap_err();
        assert_eq!(
            err,
            GraphMatError::VertexOutOfRange {
                vertex: 99,
                num_vertices: 5
            }
        );
    }

    /// An `EdgeDirection::In` program, shared by the missing-in-matrix
    /// tests below.
    struct Inward;
    impl GraphProgram for Inward {
        type VertexProp = f32;
        type Message = f32;
        type Reduced = f32;
        type Edge = f32;
        fn direction(&self) -> EdgeDirection {
            EdgeDirection::In
        }
        fn send_message(&self, _v: VertexId, d: &f32) -> Option<f32> {
            Some(*d)
        }
        fn process_message(&self, m: &f32, _e: &f32, _d: &f32) -> f32 {
            *m
        }
        fn reduce(&self, acc: &mut f32, v: f32) {
            *acc += v;
        }
        fn apply(&self, r: &f32, p: &mut f32) {
            *p = *r;
        }
    }

    #[test]
    fn rejected_in_direction_run_leaves_a_pooled_state_untouched() {
        let session = Session::sequential();
        let edges = figure3_edges();
        let topo = session
            .build_graph(&edges)
            .in_edges(false)
            .finish()
            .unwrap();
        let mut state: VertexState<f32> = VertexState::for_topology(&topo);
        state.set_all_properties(42.0);
        state.set_active(2);
        let err = session
            .run(&*topo, Inward)
            .init_all(0.0)
            .activate_all()
            .execute_with(&mut state)
            .unwrap_err();
        assert_eq!(err, GraphMatError::MissingInMatrix);
        // The rejection happened before the first mutation.
        assert!(state.properties().iter().all(|&p| p == 42.0));
        assert_eq!(state.active_count(), 1);
        assert!(state.is_active(2));
    }

    #[test]
    fn rejected_seed_leaves_a_pooled_state_untouched() {
        // A rejected run must not wipe the warm contents of a pooled state:
        // validation happens before the first mutation.
        let session = Session::sequential();
        let edges = figure3_edges();
        let topo = session
            .build_graph(&edges)
            .in_edges(false)
            .finish()
            .unwrap();
        let mut state: VertexState<f32> = VertexState::for_topology(&topo);
        state.set_all_properties(42.0);
        state.set_active(3);
        let err = session
            .run(&*topo, Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .seed_with(99, 0.0)
            .execute_with(&mut state)
            .unwrap_err();
        assert_eq!(
            err,
            GraphMatError::VertexOutOfRange {
                vertex: 99,
                num_vertices: 5
            }
        );
        assert!(state.properties().iter().all(|&p| p == 42.0));
        assert!(state.is_active(3));
        assert_eq!(state.active_count(), 1);
    }

    #[test]
    fn zero_iteration_cap_is_an_error() {
        let session = Session::sequential();
        let edges = figure3_edges();
        let topo = session.build_graph(&edges).finish().unwrap();
        let err = session
            .run(&topo, Sssp)
            .seed_with(0, 0.0)
            .max_iterations(0)
            .execute()
            .unwrap_err();
        assert_eq!(err, GraphMatError::ZeroIterations);
    }

    #[test]
    fn in_direction_program_without_in_matrix_is_an_error() {
        let session = Session::sequential();
        let edges = figure3_edges();
        let topo = session
            .build_graph(&edges)
            .in_edges(false)
            .finish()
            .unwrap();
        let err = session
            .run(&topo, Inward)
            .activate_all()
            .execute()
            .unwrap_err();
        assert_eq!(err, GraphMatError::MissingInMatrix);
    }

    #[test]
    fn execute_with_reuses_the_cached_workspace() {
        let session = Session::sequential();
        let edges = figure3_edges();
        let topo = session
            .build_graph(&edges)
            .in_edges(false)
            .finish()
            .unwrap();
        let mut state: VertexState<f32> = VertexState::for_topology(&topo);

        let run = |state: &mut VertexState<f32>| {
            session
                .run(&topo, Sssp)
                .init_all(f32::MAX)
                .seed_with(0, 0.0)
                .execute_with(state)
                .unwrap()
        };
        assert!(!state.has_cached_workspace());
        run(&mut state);
        assert!(state.has_cached_workspace(), "workspace cached after run 1");
        let first = state.properties().to_vec();
        run(&mut state);
        assert_eq!(state.properties(), &first[..], "rerun is identical");

        // A fresh execute() agrees with the pooled path.
        let fresh = session
            .run(&topo, Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .execute()
            .unwrap();
        assert_eq!(fresh.values, first);
    }

    #[test]
    fn stale_active_bits_do_not_leak_into_the_next_run() {
        let session = Session::sequential();
        let edges = figure3_edges();
        let topo = session
            .build_graph(&edges)
            .in_edges(false)
            .finish()
            .unwrap();
        let mut state: VertexState<f32> = VertexState::for_topology(&topo);
        // Poison the state: everything active, garbage properties.
        state.set_all_active();
        state.set_all_properties(-1.0);
        let result = session
            .run(&topo, Sssp)
            .init_all(f32::MAX)
            .seed_with(1, 0.0)
            .max_iterations(1)
            .execute_with(&mut state)
            .unwrap();
        // Only the seed was active: exactly its out-neighbourhood relaxed.
        assert_eq!(result.stats.supersteps[0].active_vertices, 1);
        assert_eq!(*state.property(2), 1.0);
        assert_eq!(*state.property(0), f32::MAX);
    }

    #[test]
    fn run_view_with_overlay_matches_a_rebuilt_topology() {
        use crate::store::{GraphStore, StoreOptions};
        use graphmat_delta::{DeltaBatch, UpdateOp};

        let session = Session::with_threads(2).unwrap();
        let edges = figure3_edges();
        let topo = session.build_graph(&edges).partitions(2).finish().unwrap();
        let store = GraphStore::new(
            Arc::clone(&topo),
            StoreOptions {
                compaction_threshold: usize::MAX,
                background: false,
                overload_watermark: usize::MAX,
            },
        );
        let batch = DeltaBatch::from_ops(
            5,
            vec![
                (0, 1, UpdateOp::Insert(5.0)), // reweight
                (0, 2, UpdateOp::Delete),
                (2, 0, UpdateOp::Insert(1.0)), // fresh edge
            ],
        )
        .unwrap();
        let snapshot = store.apply(batch).unwrap();
        assert!(snapshot.overlay().is_some());

        let overlaid = session
            .run_view(snapshot.view(), Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .execute()
            .unwrap();

        // Rebuild a topology from the edited edge list and run identically.
        store.compact_now();
        let compacted = store.snapshot();
        assert!(compacted.overlay().is_none());
        let rebuilt = session
            .run_view(compacted.view(), Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .execute()
            .unwrap();
        for (a, b) in overlaid.values.iter().zip(&rebuilt.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Forcing the pull backend against pending deltas is a typed error.
        let snapshot = store
            .apply(DeltaBatch::from_ops(5, vec![(1, 4, UpdateOp::Insert(1.0))]).unwrap())
            .unwrap();
        let err = session
            .run_view(snapshot.view(), Sssp)
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .vector(VectorKind::Dense)
            .execute()
            .unwrap_err();
        assert!(matches!(err, GraphMatError::InvalidParameter(_)));
    }

    #[test]
    fn concurrent_runs_share_one_topology_through_one_session() {
        let session = Session::with_threads(2).unwrap();
        let edges = figure3_edges();
        let topo = session
            .build_graph(&edges)
            .in_edges(false)
            .finish()
            .unwrap();

        let run_from = |source: VertexId| {
            session
                .run(&*topo, Sssp)
                .init_all(f32::MAX)
                .seed_with(source, 0.0)
                .execute()
                .unwrap()
                .values
        };
        let sequential: Vec<Vec<f32>> = (0..5).map(run_from).collect();

        let concurrent: Vec<Vec<f32>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..5u32)
                .map(|source| {
                    let session = &session;
                    let topo = Arc::clone(&topo);
                    s.spawn(move || {
                        session
                            .run(&*topo, Sssp)
                            .init_all(f32::MAX)
                            .seed_with(source, 0.0)
                            .execute()
                            .unwrap()
                            .values
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(sequential, concurrent);
    }
}
