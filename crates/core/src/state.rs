//! [`VertexState`]: the mutable per-run half of a graph.
//!
//! Everything a vertex program mutates lives here — one user-defined
//! property value per vertex plus the active-vertex bit vector (paper §4.3:
//! "the set of active vertices is maintained using a boolean array for
//! performance reasons"). The immutable structural half is
//! [`crate::topology::Topology`]; a superstep reads the topology and writes
//! the state, so many states can run against one `Arc<Topology>`
//! concurrently.
//!
//! A `VertexState` can be created fresh per query or **pooled**: keep one
//! per worker and reuse it across runs through
//! [`crate::session::RunBuilder::execute_with`], which also recycles the
//! engine [`Workspace`](crate::engine::Workspace) cached inside the state —
//! the second run of the same program type allocates nothing.
//!
//! All single-vertex accessors are bounds-checked with a descriptive
//! diagnostic (the vertex id and the vertex count); `try_*` variants return
//! [`GraphMatError::VertexOutOfRange`] instead of panicking.

use crate::error::{GraphMatError, Result};
use crate::program::VertexId;
use crate::topology::Topology;
use graphmat_sparse::bitvec::{AtomicBitVec, BitVec};
use std::any::Any;

/// Per-run mutable vertex state: properties + the active set, plus an
/// opaque cache slot for the engine workspace (so pooled states make reruns
/// allocation-free).
#[derive(Debug)]
pub struct VertexState<V> {
    properties: Vec<V>,
    active: BitVec,
    /// Cached engine workspace from the previous run through this state
    /// (type-erased because the workspace is generic over the program).
    workspace: Option<Box<dyn Any + Send>>,
}

impl<V: Clone> Clone for VertexState<V> {
    fn clone(&self) -> Self {
        // The workspace cache is scratch space: a clone starts cold.
        VertexState {
            properties: self.properties.clone(),
            active: self.active.clone(),
            workspace: None,
        }
    }
}

impl<V: Clone + Default> VertexState<V> {
    /// State for `n` vertices: every property `V::default()`, every vertex
    /// inactive.
    pub fn new(n: usize) -> Self {
        VertexState {
            properties: vec![V::default(); n],
            active: BitVec::new(n),
            workspace: None,
        }
    }

    /// State sized for a topology (every property `V::default()`, every
    /// vertex inactive).
    pub fn for_topology<E>(topology: &Topology<E>) -> Self {
        VertexState::new(topology.num_vertices() as usize)
    }
}

impl<V> VertexState<V> {
    /// Number of vertices this state covers.
    pub fn num_vertices(&self) -> usize {
        self.properties.len()
    }

    /// Check that this state matches a topology's vertex count.
    pub fn check_matches<E>(&self, topology: &Topology<E>) -> Result<()> {
        if self.properties.len() == topology.num_vertices() as usize {
            Ok(())
        } else {
            Err(GraphMatError::StateLengthMismatch {
                state_vertices: self.properties.len(),
                topology_vertices: topology.num_vertices() as usize,
            })
        }
    }

    fn out_of_range(&self, v: VertexId) -> GraphMatError {
        GraphMatError::VertexOutOfRange {
            vertex: v,
            num_vertices: self.properties.len() as VertexId,
        }
    }

    // ---- vertex properties -------------------------------------------------

    /// Read the property of vertex `v`, or an error for an out-of-range id.
    pub fn try_property(&self, v: VertexId) -> Result<&V> {
        self.properties.get(v as usize).ok_or(self.out_of_range(v))
    }

    /// Read the property of vertex `v`. Panics with the vertex id and the
    /// vertex count if `v` is out of range.
    pub fn property(&self, v: VertexId) -> &V {
        match self.properties.get(v as usize) {
            Some(p) => p,
            // audit:allow(no-unwrap): documented panicking variant;
            // `try_property` is the fallible twin.
            None => panic!("{}", self.out_of_range(v)),
        }
    }

    /// Write the property of vertex `v`, or an error for an out-of-range id.
    pub fn try_set_property(&mut self, v: VertexId, value: V) -> Result<()> {
        let err = self.out_of_range(v);
        match self.properties.get_mut(v as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(err),
        }
    }

    /// Write the property of vertex `v`. Panics with the vertex id and the
    /// vertex count if `v` is out of range.
    pub fn set_property(&mut self, v: VertexId, value: V) {
        if let Err(e) = self.try_set_property(v, value) {
            // audit:allow(no-unwrap): documented panicking variant;
            // `try_set_property` is the fallible twin.
            panic!("{e}");
        }
    }

    /// Set every vertex's property to `value`.
    pub fn set_all_properties(&mut self, value: V)
    where
        V: Clone,
    {
        self.properties.iter_mut().for_each(|p| *p = value.clone());
    }

    /// Initialise every vertex's property from a function of its id.
    pub fn init_properties(&mut self, mut f: impl FnMut(VertexId) -> V) {
        for (v, slot) in self.properties.iter_mut().enumerate() {
            *slot = f(v as VertexId);
        }
    }

    /// Read-only view of all vertex properties (indexed by vertex id).
    pub fn properties(&self) -> &[V] {
        &self.properties
    }

    /// Mutable view of all vertex properties.
    pub fn properties_mut(&mut self) -> &mut [V] {
        &mut self.properties
    }

    /// Consume the state and return the property vector (the cheap way to
    /// extract final results — no clone).
    pub fn into_properties(self) -> Vec<V> {
        self.properties
    }

    // ---- active set ---------------------------------------------------------

    /// Mark vertex `v` active for the next superstep, or return an error for
    /// an out-of-range id.
    pub fn try_set_active(&mut self, v: VertexId) -> Result<()> {
        if (v as usize) < self.active.len() {
            self.active.set(v as usize);
            Ok(())
        } else {
            Err(self.out_of_range(v))
        }
    }

    /// Mark vertex `v` active for the next superstep. Panics with the vertex
    /// id and the vertex count if `v` is out of range.
    pub fn set_active(&mut self, v: VertexId) {
        if let Err(e) = self.try_set_active(v) {
            // audit:allow(no-unwrap): documented panicking variant;
            // `try_set_active` is the fallible twin.
            panic!("{e}");
        }
    }

    /// Mark vertex `v` inactive, or return an error for an out-of-range id.
    pub fn try_set_inactive(&mut self, v: VertexId) -> Result<()> {
        if (v as usize) < self.active.len() {
            self.active.clear(v as usize);
            Ok(())
        } else {
            Err(self.out_of_range(v))
        }
    }

    /// Mark vertex `v` inactive. Panics with the vertex id and the vertex
    /// count if `v` is out of range.
    pub fn set_inactive(&mut self, v: VertexId) {
        if let Err(e) = self.try_set_inactive(v) {
            // audit:allow(no-unwrap): documented panicking variant;
            // `try_set_inactive` is the fallible twin.
            panic!("{e}");
        }
    }

    /// Mark every vertex active (e.g. PageRank's first iteration).
    pub fn set_all_active(&mut self) {
        self.active.set_all();
    }

    /// Mark every vertex inactive.
    pub fn clear_active(&mut self) {
        self.active.clear_all();
    }

    /// Is vertex `v` currently active, or an error for an out-of-range id?
    pub fn try_is_active(&self, v: VertexId) -> Result<bool> {
        if (v as usize) < self.active.len() {
            Ok(self.active.get(v as usize))
        } else {
            Err(self.out_of_range(v))
        }
    }

    /// Is vertex `v` currently active? Panics with the vertex id and the
    /// vertex count if `v` is out of range (`BitVec` alone would silently
    /// read a padding bit of its last word in release builds).
    pub fn is_active(&self, v: VertexId) -> bool {
        match self.try_is_active(v) {
            Ok(b) => b,
            // audit:allow(no-unwrap): documented panicking variant;
            // `try_is_active` is the fallible twin.
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of currently active vertices.
    pub fn active_count(&self) -> usize {
        self.active.count_ones()
    }

    /// The active-set bit vector.
    pub fn active_bits(&self) -> &BitVec {
        &self.active
    }

    /// Overwrite the active set from the concurrently-built next-superstep
    /// bit vector, reusing the existing storage (used by the runner between
    /// supersteps; no allocation).
    pub(crate) fn load_active_from(&mut self, src: &AtomicBitVec) {
        self.active.load_from(src);
    }

    // ---- workspace cache ----------------------------------------------------

    /// Take the cached workspace if one of type `W` is stored, leaving the
    /// slot empty. Returns `None` when the cache is cold or holds a
    /// workspace of a different program type.
    ///
    /// The workspace stays in its box so a rerun hands the same allocation
    /// back to [`VertexState::cache_workspace`] — unboxing here would cost
    /// one heap round-trip per run, which `tests/zero_alloc.rs` forbids.
    pub(crate) fn take_cached_workspace<W: Any>(&mut self) -> Option<Box<W>> {
        let boxed = self.workspace.take()?;
        match boxed.downcast::<W>() {
            Ok(ws) => Some(ws),
            Err(other) => {
                // A different program type ran last; drop its buffers.
                drop(other);
                None
            }
        }
    }

    /// Store a workspace for the next run through this state.
    pub(crate) fn cache_workspace<W: Any + Send>(&mut self, ws: Box<W>) {
        self.workspace = Some(ws);
    }

    /// Whether a workspace is currently cached (test hook for the
    /// allocation-free reuse guarantee).
    pub fn has_cached_workspace(&self) -> bool {
        self.workspace.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_lifecycle() {
        let mut s: VertexState<f32> = VertexState::new(4);
        assert_eq!(*s.property(0), 0.0);
        s.set_all_properties(7.0);
        assert!(s.properties().iter().all(|&p| p == 7.0));
        s.set_property(2, 1.5);
        assert_eq!(*s.property(2), 1.5);
        s.init_properties(|v| v as f32);
        assert_eq!(*s.property(3), 3.0);
        s.properties_mut()[1] = 9.0;
        assert_eq!(*s.property(1), 9.0);
        assert_eq!(s.into_properties(), vec![0.0, 9.0, 2.0, 3.0]);
    }

    #[test]
    fn active_set_lifecycle() {
        let mut s: VertexState<u32> = VertexState::new(4);
        assert_eq!(s.active_count(), 0);
        s.set_active(1);
        s.set_active(3);
        assert!(s.is_active(1));
        assert!(!s.is_active(0));
        assert_eq!(s.active_count(), 2);
        s.set_inactive(1);
        assert_eq!(s.active_count(), 1);
        s.set_all_active();
        assert_eq!(s.active_count(), 4);
        s.clear_active();
        assert_eq!(s.active_count(), 0);
    }

    #[test]
    fn try_accessors_report_vertex_and_count() {
        let mut s: VertexState<u32> = VertexState::new(3);
        let expect = GraphMatError::VertexOutOfRange {
            vertex: 7,
            num_vertices: 3,
        };
        assert_eq!(s.try_property(7).unwrap_err(), expect);
        assert_eq!(s.try_set_property(7, 1).unwrap_err(), expect);
        assert_eq!(s.try_set_active(7).unwrap_err(), expect);
        assert_eq!(s.try_set_inactive(7).unwrap_err(), expect);
        assert_eq!(s.try_is_active(7).unwrap_err(), expect);
        assert!(s.try_set_active(2).is_ok());
        assert!(s.is_active(2));
        assert_eq!(s.try_is_active(2), Ok(true));
        assert!(s.try_set_inactive(2).is_ok());
        assert_eq!(s.try_is_active(2), Ok(false));
    }

    #[test]
    fn is_active_rejects_padding_bits_of_the_last_word() {
        // 4 vertices occupy one 64-bit word; id 60 lands inside that word
        // but past len, so a raw BitVec read would silently return a
        // padding bit in release builds. The state accessor must panic with
        // diagnostics instead.
        let s: VertexState<u32> = VertexState::new(4);
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.is_active(60))).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("60") && msg.contains('4'), "{msg}");
    }

    #[test]
    fn panicking_accessors_include_diagnostics() {
        let s: VertexState<u32> = VertexState::new(5);
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| *s.property(11))).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("11"), "{msg}");
        assert!(msg.contains('5'), "{msg}");
    }

    #[test]
    fn workspace_cache_round_trips_and_rejects_other_types() {
        let mut s: VertexState<u32> = VertexState::new(2);
        assert!(!s.has_cached_workspace());
        s.cache_workspace(Box::new(vec![1u64, 2, 3]));
        assert!(s.has_cached_workspace());
        // wrong type: cache is cleared, not returned
        assert!(s.take_cached_workspace::<String>().is_none());
        assert!(!s.has_cached_workspace());
        s.cache_workspace(Box::new(vec![4u64]));
        assert_eq!(
            s.take_cached_workspace::<Vec<u64>>().map(|b| *b),
            Some(vec![4u64])
        );
    }

    #[test]
    fn clone_starts_with_cold_workspace_cache() {
        let mut s: VertexState<u32> = VertexState::new(2);
        s.cache_workspace(Box::new(7u64));
        let c = s.clone();
        assert!(!c.has_cached_workspace());
        assert!(s.has_cached_workspace());
    }
}
