//! [`GraphStore`]: streaming updates over an immutable base — snapshot
//! publication, delta accumulation, background compaction.
//!
//! The serving layer needs a graph that **mutates without ever blocking a
//! reader**. The store gets there by never mutating anything a reader can
//! see: the graph lives as a published [`GraphSnapshot`] — an immutable
//! `(base ⊕ delta)` pair behind an `Arc` — and every write produces a *new*
//! snapshot and atomically swaps the published pointer.
//!
//! # Snapshot isolation semantics
//!
//! * [`GraphStore::snapshot`] hands out the currently published
//!   `Arc<GraphSnapshot>`; a query runs against that `Arc` for its whole
//!   lifetime. In-flight queries keep the snapshot they started with —
//!   nothing a writer does can change, move, or free data a reader is
//!   traversing.
//! * [`GraphStore::apply`] admits one [`DeltaBatch`]: it appends to the
//!   delta log, compiles the latest-wins resolution into a fresh
//!   [`DeltaOverlay`] against the *unchanged* base, and publishes a new
//!   snapshot (same base `Arc`, new overlay, version + 1). Queries started
//!   after the swap see the batch; queries started before do not. Writers
//!   serialize on an internal mutex; readers never take it.
//! * The snapshot **version** counts admitted batches. Compaction changes
//!   the representation, not the content, so it republishes under the
//!   *same* version: two snapshots with equal versions answer every query
//!   bit-for-bit identically.
//!
//! # Compaction
//!
//! Pending deltas cost the merged overlay sweep (and disable the pull
//! backend, see [`crate::view::GraphView`]). When the log exceeds
//! [`StoreOptions::compaction_threshold`] effective ops, the store folds
//! the resolved log into the base edge list, rebuilds a fresh base
//! [`Topology`] (same partition count, in-edge matrix, and pull mirrors as
//! the original), and republishes with an empty overlay. With
//! [`StoreOptions::background`] set, a dedicated worker thread does this
//! off the write path — `apply` just signals it; otherwise compaction runs
//! inline in the triggering `apply`. [`GraphStore::compact_now`] forces one
//! synchronously from any thread.
//!
//! The rebuild extracts the base edge list in the deterministic order of
//! [`Topology::to_edge_list`] and edits it with
//! [`graphmat_delta::apply_resolved_to_edges`], so repeated compactions of
//! the same history produce byte-identical topologies — and because the
//! overlay kernel folds messages per destination in the same
//! ascending-source order a rebuild would, query results are bit-for-bit
//! identical before and after a compaction.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, Weak};
use std::thread::JoinHandle;

use graphmat_delta::{
    apply_resolved_to_edges, BaseFacts, DeltaBatch, DeltaLog, DeltaOverlay, PairIndex,
};
use graphmat_io::edgelist::EdgeList;
use graphmat_sparse::Index;

use crate::error::{GraphMatError, Result};
use crate::topology::{GraphBuildOptions, Topology};
use crate::view::GraphView;

/// Default pending-op count above which the store compacts the delta into a
/// fresh base.
pub const DEFAULT_COMPACTION_THRESHOLD: usize = 4096;

/// Lock a store mutex, shrugging off poisoning. Safe for every mutex in the
/// store: the signal holds two independent flags, the worker slot a single
/// `Option`, and the writer state is only ever mutated at the *commit
/// point* of `apply`/`compact_locked` — everything fallible (overlay
/// compilation, topology rebuild) runs first, against immutable reads of
/// the writer state. A panic mid-`apply` therefore leaves the log exactly
/// as it was: the failed batch is gone without trace (exactly-once
/// publication, never torn state), and the next writer proceeds as if the
/// panicked one had never arrived. The store must keep serving reads and
/// accepting writes even if one writer thread panicked.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Read-lock the published-snapshot slot, shrugging off poisoning: the slot
/// holds a single `Arc` pointer, swapped atomically under the write lock —
/// there is no intermediate state a panic could expose.
fn read_published<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Write-lock the published-snapshot slot (see [`read_published`]).
fn write_published<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Tuning knobs for a [`GraphStore`].
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Compact once the resolved delta reaches this many effective ops
    /// (`usize::MAX` disables automatic compaction; [`GraphStore::compact_now`]
    /// still works).
    pub compaction_threshold: usize,
    /// Run compaction on a dedicated background thread instead of inline in
    /// the `apply` call that crosses the threshold.
    pub background: bool,
    /// Reject writes with [`GraphMatError::Overloaded`] while the published
    /// overlay holds at least this many effective pending ops. This is the
    /// ingest-storm relief valve: when compaction cannot keep up, writes
    /// degrade (callers see a typed, retryable rejection) instead of the
    /// overlay — and resolve cost, and memory — growing without bound.
    /// Reads are never affected. `usize::MAX` disables the watermark.
    pub overload_watermark: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            compaction_threshold: DEFAULT_COMPACTION_THRESHOLD,
            background: true,
            overload_watermark: usize::MAX,
        }
    }
}

/// One immutable published state of a [`GraphStore`]: a base [`Topology`]
/// plus an optional [`DeltaOverlay`] of pending edits.
///
/// Cheap to clone (two `Arc`s); queries hold one for their whole run.
/// `version` counts admitted batches — compaction republishes the same
/// version with `overlay == None`, and both representations answer every
/// query bit-for-bit identically.
#[derive(Clone, Debug)]
pub struct GraphSnapshot<E> {
    version: u64,
    base: Arc<Topology<E>>,
    overlay: Option<Arc<DeltaOverlay<E>>>,
}

impl<E> GraphSnapshot<E> {
    /// The number of update batches admitted before this snapshot was
    /// published.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The immutable base topology.
    pub fn base(&self) -> &Arc<Topology<E>> {
        &self.base
    }

    /// The pending overlay, if this snapshot carries uncompacted edits.
    pub fn overlay(&self) -> Option<&Arc<DeltaOverlay<E>>> {
        self.overlay.as_ref()
    }

    /// The `(base ⊕ delta)` view the engine traverses; pass it to
    /// [`crate::runner::run_program_view`] or a session run's `.view(…)`.
    pub fn view(&self) -> GraphView<'_, E> {
        GraphView::new(&self.base, self.overlay.as_deref())
    }

    /// Vertex count (updates never change it).
    pub fn num_vertices(&self) -> Index {
        self.base.num_vertices()
    }

    /// Directed edge count of the edited graph.
    pub fn num_edges(&self) -> usize {
        self.overlay
            .as_ref()
            .map_or(self.base.num_edges(), |o| o.num_edges())
    }

    /// Number of effective pending ops (0 right after a compaction).
    pub fn delta_len(&self) -> usize {
        self.overlay.as_ref().map_or(0, |o| o.len())
    }
}

/// Counters describing a store's current published state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Published snapshot version (admitted batches).
    pub version: u64,
    /// Directed edge count of the published `(base ⊕ delta)` graph.
    pub num_edges: usize,
    /// Effective pending ops in the published overlay.
    pub delta_edges: usize,
    /// Compactions performed since the store was created.
    pub compactions: u64,
    /// Compaction attempts that panicked (each one left the last published
    /// snapshot serving and the pending log intact).
    pub compaction_failures: u64,
    /// Times the background compaction lane restarted after a failure
    /// (capped exponential backoff between restarts).
    pub compaction_restarts: u64,
}

/// Mutable writer-side state, serialized behind one mutex. Readers never
/// touch this — they only clone the published `Arc`.
struct WriterState<E> {
    /// The base's edge list in [`Topology::to_edge_list`] order, materialized
    /// lazily on the first `apply` and kept in sync across compactions.
    base_edges: Option<Vec<(Index, Index, E)>>,
    /// Sorted multiset of the base's `(src, dst)` pairs.
    pair_index: Option<PairIndex>,
    /// Batches admitted since the last compaction.
    log: DeltaLog<E>,
}

#[derive(Default)]
struct Signal {
    pending: bool,
    shutdown: bool,
}

/// The streaming-update store: an immutable published [`GraphSnapshot`]
/// plus a serialized writer that admits [`DeltaBatch`]es and compacts them
/// into fresh bases. See the [module docs](self) for the isolation and
/// compaction semantics.
///
/// Constructed behind an `Arc` ([`GraphStore::new`]) so the background
/// compaction worker can hold a `Weak` reference; dropping the last `Arc`
/// shuts the worker down and joins it.
pub struct GraphStore<E> {
    published: RwLock<Arc<GraphSnapshot<E>>>,
    writer: Mutex<WriterState<E>>,
    options: StoreOptions,
    compactions: AtomicU64,
    compaction_failures: AtomicU64,
    compaction_restarts: AtomicU64,
    signal: Arc<(Mutex<Signal>, Condvar)>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl<E> std::fmt::Debug for GraphStore<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = read_published(&self.published);
        f.debug_struct("GraphStore")
            .field("version", &snap.version())
            .field("num_edges", &snap.num_edges())
            .field("delta_edges", &snap.delta_len())
            .field("compactions", &self.compactions.load(Ordering::Relaxed))
            .finish()
    }
}

impl<E: Clone + Send + Sync + 'static> GraphStore<E> {
    /// Wrap a base topology as version-0 of a mutable store. The topology is
    /// served exactly as provided — no dedup, no rebuild — so queries against
    /// the store's first snapshot match direct runs on `base` bit-for-bit.
    pub fn new(base: Arc<Topology<E>>, options: StoreOptions) -> Arc<Self> {
        let snapshot = Arc::new(GraphSnapshot {
            version: 0,
            base,
            overlay: None,
        });
        let signal: Arc<(Mutex<Signal>, Condvar)> = Arc::default();
        Arc::new_cyclic(|weak: &Weak<GraphStore<E>>| {
            let worker = if options.background {
                let weak = weak.clone();
                let signal = Arc::clone(&signal);
                Some(
                    std::thread::Builder::new()
                        .name("graphmat-compactor".into())
                        .spawn(move || compaction_worker(weak, signal))
                        // audit:allow(no-unwrap): store construction is
                        // setup-time; a host that cannot spawn one thread
                        // cannot run the store at all.
                        .expect("failed to spawn compaction worker"),
                )
            } else {
                None
            };
            GraphStore {
                published: RwLock::new(snapshot),
                writer: Mutex::new(WriterState {
                    base_edges: None,
                    pair_index: None,
                    log: DeltaLog::new(),
                }),
                options,
                compactions: AtomicU64::new(0),
                compaction_failures: AtomicU64::new(0),
                compaction_restarts: AtomicU64::new(0),
                signal,
                worker: Mutex::new(worker),
            }
        })
    }

    /// Wrap a base with the default options (background compaction at
    /// [`DEFAULT_COMPACTION_THRESHOLD`] pending ops).
    pub fn with_defaults(base: Arc<Topology<E>>) -> Arc<Self> {
        Self::new(base, StoreOptions::default())
    }

    /// Admit one update batch: publish a new snapshot whose overlay reflects
    /// every batch admitted so far, and return it. Triggers compaction
    /// (inline or signalled to the background worker) once the pending ops
    /// cross the threshold.
    ///
    /// # Errors
    ///
    /// [`GraphMatError::InvalidParameter`] when the batch is empty or sized
    /// for a different vertex count than the stored graph;
    /// [`GraphMatError::Overloaded`] when the published overlay sits at or
    /// past [`StoreOptions::overload_watermark`]. A failed `apply` — typed
    /// error or panic — publishes nothing and leaves no trace of the batch
    /// in the log (exactly-once): all fallible work runs before the batch
    /// is committed, and the commit itself is two infallible pointer
    /// updates.
    pub fn apply(&self, batch: DeltaBatch<E>) -> Result<Arc<GraphSnapshot<E>>> {
        if batch.is_empty() {
            return Err(GraphMatError::InvalidParameter(
                "update batch contains no operations",
            ));
        }
        let mut writer = lock(&self.writer);
        let current = self.snapshot();
        if batch.num_vertices() != current.base.num_vertices() {
            return Err(GraphMatError::InvalidParameter(
                "update batch vertex count does not match the stored graph",
            ));
        }
        let pending_now = current.delta_len();
        if pending_now >= self.options.overload_watermark {
            return Err(GraphMatError::Overloaded {
                pending: pending_now,
                watermark: self.options.overload_watermark,
            });
        }
        if graphmat_chaos::fire("store.apply.admit").is_some() {
            return Err(GraphMatError::Internal("chaos failpoint store.apply.admit"));
        }

        Self::materialize(&mut writer, &current.base);

        // Compile the candidate overlay WITHOUT touching the log: the log
        // stays exactly as it was until the commit point below, so a typed
        // error or a panic anywhere in here aborts the batch cleanly.
        let resolved = writer.log.resolve_with(&batch);
        let base = &current.base;
        let out_ranges = base.out_partition_ranges();
        let in_ranges = base.in_partition_ranges();
        let facts = BaseFacts {
            num_vertices: base.num_vertices(),
            num_edges: base.num_edges(),
            out_ranges: &out_ranges,
            in_ranges: in_ranges.as_deref(),
            out_degrees: base.out_degrees(),
            in_degrees: base.in_degrees(),
        };
        // audit:allow(no-unwrap): `materialize` two statements up fills both
        // writer slots.
        let pair_index = writer.pair_index.as_ref().expect("materialized above");
        if graphmat_chaos::fire("store.overlay.build").is_some() {
            return Err(GraphMatError::Internal(
                "chaos failpoint store.overlay.build",
            ));
        }
        let overlay = DeltaOverlay::build(&facts, pair_index, &resolved);
        let pending = overlay.len();

        let snapshot = Arc::new(GraphSnapshot {
            version: current.version + 1,
            base: Arc::clone(&current.base),
            overlay: if overlay.is_empty() {
                None
            } else {
                Some(Arc::new(overlay))
            },
        });

        // Commit point. A `panic` action on this failpoint unwinds with the
        // log still untouched — the poisoned-writer regression tests pin
        // down that nothing of the batch survives.
        let _ = graphmat_chaos::fire("store.apply.publish");
        writer.log.append(batch);
        self.publish(Arc::clone(&snapshot));

        if pending >= self.options.compaction_threshold {
            if self.options.background {
                drop(writer);
                let (signal, cvar) = &*self.signal;
                lock(signal).pending = true;
                cvar.notify_one();
            } else {
                self.compact_locked(&mut writer);
            }
        }
        Ok(snapshot)
    }

    /// Synchronously fold the pending delta into a fresh base and republish
    /// with an empty overlay. Returns `true` if anything was compacted.
    pub fn compact_now(&self) -> bool {
        let mut writer = lock(&self.writer);
        self.compact_locked(&mut writer)
    }

    fn compact_locked(&self, writer: &mut WriterState<E>) -> bool {
        if writer.log.is_empty() {
            return false;
        }
        let current = self.snapshot();
        Self::materialize(writer, &current.base);
        let _ = graphmat_chaos::fire("store.compact");

        // Build the compacted base against a *copy* of the writer's edge
        // list: the expensive, panic-prone work (topology rebuild) runs
        // before any writer state changes, so a failed compaction leaves
        // the pending log — and the published overlay snapshot — intact
        // for a clean retry.
        let resolved = writer.log.resolve();
        // audit:allow(no-unwrap): `materialize` two statements up fills both
        // writer slots.
        let mut edges = writer.base_edges.clone().expect("materialized above");
        apply_resolved_to_edges(&mut edges, &resolved);
        let pair_index = PairIndex::from_edges(&edges);

        let el = EdgeList::from_tuples(current.base.num_vertices(), edges.clone());
        let options = GraphBuildOptions::default()
            .with_partitions(current.base.num_partitions())
            .with_in_edges(current.base.has_in_edges())
            .with_pull_mirrors(current.base.has_pull_mirrors());
        let base = Arc::new(Topology::from_edge_list(&el, options));

        // Commit point: plain moves and an atomic pointer swap.
        writer.base_edges = Some(edges);
        writer.pair_index = Some(pair_index);
        writer.log.clear();
        // Same version: compaction changes the representation, not the graph.
        self.publish(Arc::new(GraphSnapshot {
            version: current.version,
            base,
            overlay: None,
        }));
        self.compactions.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn materialize(writer: &mut WriterState<E>, base: &Topology<E>) {
        if writer.base_edges.is_none() {
            let edges: Vec<(Index, Index, E)> = base.to_edge_list().edges().to_vec();
            writer.pair_index = Some(PairIndex::from_edges(&edges));
            writer.base_edges = Some(edges);
        }
    }
}

impl<E> GraphStore<E> {
    /// The currently published snapshot. Allocation-free (a read-lock and an
    /// `Arc` clone) — this is the steady-state serving read path.
    pub fn snapshot(&self) -> Arc<GraphSnapshot<E>> {
        Arc::clone(&read_published(&self.published))
    }

    /// Counters for the published state (the server's `STATS`/`UPDATE`
    /// replies read these).
    pub fn stats(&self) -> StoreStats {
        let snap = self.snapshot();
        StoreStats {
            version: snap.version(),
            num_edges: snap.num_edges(),
            delta_edges: snap.delta_len(),
            compactions: self.compactions.load(Ordering::Relaxed),
            compaction_failures: self.compaction_failures.load(Ordering::Relaxed),
            compaction_restarts: self.compaction_restarts.load(Ordering::Relaxed),
        }
    }

    /// Compactions performed since the store was created.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Compaction attempts that panicked (the published snapshot kept
    /// serving through every one of them).
    pub fn compaction_failures(&self) -> u64 {
        self.compaction_failures.load(Ordering::Relaxed)
    }

    /// Times the background compaction lane restarted after a failure.
    pub fn compaction_restarts(&self) -> u64 {
        self.compaction_restarts.load(Ordering::Relaxed)
    }

    fn publish(&self, snapshot: Arc<GraphSnapshot<E>>) {
        *write_published(&self.published) = snapshot;
    }
}

impl<E> Drop for GraphStore<E> {
    fn drop(&mut self) {
        if let Some(handle) = lock(&self.worker).take() {
            {
                let (signal, cvar) = &*self.signal;
                lock(signal).shutdown = true;
                cvar.notify_one();
            }
            let _ = handle.join();
        }
    }
}

/// Base delay after the first failed compaction attempt; doubles per
/// consecutive failure up to [`COMPACTION_BACKOFF_CAP_MS`].
const COMPACTION_BACKOFF_BASE_MS: u64 = 50;
/// Ceiling on the restart backoff, so a persistently failing compactor
/// retries every few seconds instead of never.
const COMPACTION_BACKOFF_CAP_MS: u64 = 5_000;

fn compaction_worker<E: Clone + Send + Sync + 'static>(
    store: Weak<GraphStore<E>>,
    signal: Arc<(Mutex<Signal>, Condvar)>,
) {
    let (signal, cvar) = &*signal;
    let mut consecutive_failures: u32 = 0;
    loop {
        {
            let mut guard = lock(signal);
            while !guard.pending && !guard.shutdown {
                guard = match cvar.wait(guard) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            if guard.shutdown {
                return;
            }
            guard.pending = false;
        }
        // Upgrade only for the duration of one compaction; if the store is
        // gone the worker exits (Drop also signals shutdown, belt and braces).
        let outcome = match store.upgrade() {
            Some(strong) => {
                // RECOVERY: a panicking compaction must not kill the lane.
                // The last published snapshot keeps serving (compact_locked
                // only publishes at its commit point, after all panic-prone
                // work) and the pending log is intact, so the failure is
                // counted, the lane backs off exponentially (capped), and
                // the same backlog is retried — a logical lane restart,
                // surfaced as `compaction_restarts`, with no thread churn.
                // No state is quarantined: the writer mutex guards data that
                // is only mutated post-commit, so nothing the panic touched
                // survives.
                let outcome = catch_unwind(AssertUnwindSafe(|| strong.compact_now()));
                if outcome.is_err() {
                    strong.compaction_failures.fetch_add(1, Ordering::Relaxed);
                    strong.compaction_restarts.fetch_add(1, Ordering::Relaxed);
                }
                outcome
                // `strong` drops here, before any backoff sleep: holding it
                // across the sleep could make this thread the one that runs
                // `GraphStore::drop` — which joins this thread.
            }
            None => return,
        };
        if outcome.is_ok() {
            consecutive_failures = 0;
            continue;
        }
        let backoff_ms = COMPACTION_BACKOFF_BASE_MS
            .saturating_mul(1u64 << consecutive_failures.min(10))
            .min(COMPACTION_BACKOFF_CAP_MS);
        consecutive_failures = consecutive_failures.saturating_add(1);
        // Back off under the signal condvar so shutdown cuts the sleep
        // short, then re-mark the backlog pending to retry it.
        let mut guard = lock(signal);
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(backoff_ms);
        loop {
            if guard.shutdown {
                return;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            guard = match cvar.wait_timeout(guard, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        guard.pending = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmat_delta::UpdateOp;

    fn base() -> Arc<Topology<f32>> {
        let el = EdgeList::from_tuples(
            5,
            vec![
                (0, 1, 1.0),
                (0, 2, 3.0),
                (1, 2, 1.0),
                (2, 3, 2.0),
                (3, 4, 2.0),
                (4, 0, 4.0),
            ],
        );
        Arc::new(Topology::from_edge_list(
            &el,
            GraphBuildOptions::default()
                .with_partitions(2)
                .with_pull_mirrors(true),
        ))
    }

    fn inline_store(threshold: usize) -> Arc<GraphStore<f32>> {
        GraphStore::new(
            base(),
            StoreOptions {
                compaction_threshold: threshold,
                background: false,
                overload_watermark: usize::MAX,
            },
        )
    }

    fn batch(ops: Vec<(Index, Index, UpdateOp<f32>)>) -> DeltaBatch<f32> {
        DeltaBatch::from_ops(5, ops).unwrap()
    }

    #[test]
    fn version_zero_serves_the_base_verbatim() {
        let b = base();
        let store = GraphStore::with_defaults(Arc::clone(&b));
        let snap = store.snapshot();
        assert_eq!(snap.version(), 0);
        assert!(snap.overlay().is_none());
        assert!(Arc::ptr_eq(snap.base(), &b));
        assert_eq!(snap.num_edges(), 6);
    }

    #[test]
    fn apply_publishes_new_snapshot_old_one_stays_frozen() {
        let store = inline_store(usize::MAX);
        let before = store.snapshot();
        let after = store
            .apply(batch(vec![
                (0, 3, UpdateOp::Insert(9.0)),
                (4, 0, UpdateOp::Delete),
            ]))
            .unwrap();
        assert_eq!(after.version(), 1);
        assert_eq!(after.num_edges(), 6); // +1 −1
        assert_eq!(after.delta_len(), 2);
        // The old snapshot is untouched: same base, no overlay.
        assert_eq!(before.version(), 0);
        assert_eq!(before.num_edges(), 6);
        assert!(before.overlay().is_none());
        assert!(Arc::ptr_eq(before.base(), after.base()));
        // Degrees through the new view reflect the edits.
        assert_eq!(after.view().out_degrees(), &[3, 1, 1, 1, 0]);
    }

    #[test]
    fn empty_and_mismatched_batches_are_rejected_without_publishing() {
        let store = inline_store(usize::MAX);
        let err = store
            .apply(DeltaBatch::new(5))
            .expect_err("empty batch must be rejected");
        assert!(matches!(err, GraphMatError::InvalidParameter(_)));
        let err = store
            .apply(DeltaBatch::from_ops(9, vec![(7, 8, UpdateOp::Insert(1.0))]).unwrap())
            .expect_err("mismatched vertex count must be rejected");
        assert!(matches!(err, GraphMatError::InvalidParameter(_)));
        assert_eq!(store.snapshot().version(), 0);
    }

    #[test]
    fn threshold_triggers_inline_compaction() {
        let store = inline_store(2);
        let s1 = store
            .apply(batch(vec![(1, 3, UpdateOp::Insert(7.0))]))
            .unwrap();
        assert_eq!(s1.delta_len(), 1);
        assert_eq!(store.compactions(), 0);
        store
            .apply(batch(vec![(2, 0, UpdateOp::Insert(8.0))]))
            .unwrap();
        assert_eq!(store.compactions(), 1);
        let snap = store.snapshot();
        assert_eq!(snap.version(), 2);
        assert!(snap.overlay().is_none());
        assert_eq!(snap.num_edges(), 8);
        // The rebuilt base keeps the original build shape.
        assert_eq!(snap.base().num_partitions(), 2);
        assert!(snap.base().has_in_edges());
        assert!(snap.base().has_pull_mirrors());
        assert_eq!(snap.base().out_degrees(), &[2, 2, 2, 1, 1]);
    }

    #[test]
    fn compaction_preserves_content_and_version() {
        let store = inline_store(usize::MAX);
        store
            .apply(batch(vec![
                (0, 1, UpdateOp::Insert(5.5)),
                (3, 4, UpdateOp::Delete),
                (4, 2, UpdateOp::Insert(1.25)),
            ]))
            .unwrap();
        let overlaid = store.snapshot();
        assert!(store.compact_now());
        assert!(!store.compact_now(), "second compaction has nothing to do");
        let compacted = store.snapshot();
        assert_eq!(compacted.version(), overlaid.version());
        assert!(compacted.overlay().is_none());
        assert_eq!(compacted.num_edges(), overlaid.num_edges());
        assert_eq!(
            compacted.base().out_degrees(),
            overlaid.view().out_degrees()
        );
        assert_eq!(compacted.base().in_degrees(), overlaid.view().in_degrees());
        // Stats reflect the compaction.
        let stats = store.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.delta_edges, 0);
    }

    #[test]
    fn repeated_compactions_are_byte_identical() {
        // Same history through different compaction points must converge to
        // the same edge list.
        let edits = [
            vec![(0, 3, UpdateOp::Insert(9.0)), (0, 1, UpdateOp::Delete)],
            vec![(0, 3, UpdateOp::Insert(2.0)), (2, 2, UpdateOp::Insert(1.0))],
            vec![(4, 0, UpdateOp::Delete), (1, 2, UpdateOp::Insert(6.0))],
        ];
        let every_batch = inline_store(1); // compacts after every apply
        let only_at_end = inline_store(usize::MAX);
        for ops in &edits {
            every_batch.apply(batch(ops.clone())).unwrap();
            only_at_end.apply(batch(ops.clone())).unwrap();
        }
        only_at_end.compact_now();
        let a = every_batch.snapshot().base().to_edge_list();
        let b = only_at_end.snapshot().base().to_edge_list();
        assert_eq!(a.edges().len(), b.edges().len());
        for (x, y) in a.edges().iter().zip(b.edges()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
            assert_eq!(x.2.to_bits(), y.2.to_bits());
        }
    }

    #[test]
    fn overload_watermark_rejects_writes_but_not_reads() {
        let store = GraphStore::new(
            base(),
            StoreOptions {
                compaction_threshold: usize::MAX,
                background: false,
                overload_watermark: 2,
            },
        );
        store
            .apply(batch(vec![
                (0, 3, UpdateOp::Insert(9.0)),
                (1, 4, UpdateOp::Insert(2.0)),
            ]))
            .unwrap();
        // Published overlay now holds 2 pending ops == watermark: writes shed.
        let err = store
            .apply(batch(vec![(2, 0, UpdateOp::Insert(1.0))]))
            .expect_err("write past the watermark must be rejected");
        assert_eq!(
            err,
            GraphMatError::Overloaded {
                pending: 2,
                watermark: 2
            }
        );
        // Reads keep serving the last published snapshot, untouched.
        let snap = store.snapshot();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.delta_len(), 2);
        // Draining the backlog (compaction) re-opens the write path.
        assert!(store.compact_now());
        store
            .apply(batch(vec![(2, 0, UpdateOp::Insert(1.0))]))
            .expect("writes succeed again after compaction drains the backlog");
        assert_eq!(store.snapshot().version(), 2);
    }

    /// Regression (PR-10 satellite): a writer that panics mid-`apply` used
    /// to poison the admission mutex and wedge every future writer. The
    /// store recovers the poison (the guarded data is only mutated at the
    /// commit point, so it is never torn) and the next writer proceeds.
    #[test]
    fn second_writer_succeeds_after_first_panicked_mid_apply() {
        let store = inline_store(usize::MAX);
        let poisoner = Arc::clone(&store);
        let handle = std::thread::spawn(move || {
            // Panic while holding the writer mutex — the exact lock a
            // panicking `apply` dies holding.
            let _guard = poisoner.writer.lock().unwrap();
            panic!("simulated writer panic mid-apply");
        });
        assert!(handle.join().is_err(), "poisoner thread must panic");
        assert!(store.writer.is_poisoned(), "writer mutex must be poisoned");
        // A second writer recovers the poison and commits normally.
        let snap = store
            .apply(batch(vec![(0, 3, UpdateOp::Insert(9.0))]))
            .expect("writer must survive a predecessor's panic");
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.delta_len(), 1);
        // And reads never noticed.
        assert_eq!(store.snapshot().view().out_degrees(), &[3, 1, 1, 1, 1]);
    }

    #[test]
    fn background_worker_compacts_and_store_drops_cleanly() {
        let store = GraphStore::new(
            base(),
            StoreOptions {
                compaction_threshold: 1,
                background: true,
                overload_watermark: usize::MAX,
            },
        );
        store
            .apply(batch(vec![(1, 4, UpdateOp::Insert(3.0))]))
            .unwrap();
        // The worker compacts asynchronously; wait (bounded) for it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while store.compactions() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(store.compactions(), 1);
        let snap = store.snapshot();
        assert_eq!(snap.version(), 1);
        assert!(snap.overlay().is_none());
        assert_eq!(snap.num_edges(), 7);
        drop(store); // must join the worker without hanging
    }
}
