//! [`Topology`]: the immutable, `Sync`-shareable build product of graph
//! construction.
//!
//! GraphMat's serving story (and the RedisGraph deployment of the same idea)
//! rests on one separation: the adjacency matrix is built **once** and then
//! answers many independent queries, while everything a query mutates lives
//! somewhere else. `Topology<E>` is the immutable half:
//!
//! * `Gᵀ` split into 1-D row partitions of DCSC (paper §4.4.1) — what
//!   out-edge message scattering multiplies against, because `y = Gᵀ·x`
//!   delivers each source's message to the rows (destinations) of its
//!   out-edges;
//! * optionally the non-transposed `G` for in-edge scattering;
//! * optionally row-major CSR **pull mirrors** of those matrices
//!   (`build_pull_mirrors` — on by default when building through the
//!   session's graph builder, off for the legacy facades), which the
//!   direction-optimized engine traverses when a superstep's frontier is
//!   dense enough to pull — they cost roughly the matrices' memory again
//!   ([`Topology::pull_bytes`]);
//! * the out-/in-degree arrays.
//!
//! A `Topology` has no interior mutability and is `Sync`, so wrap it in an
//! [`std::sync::Arc`] and run any number of concurrent vertex programs
//! against the same matrices — no cloning, no locks. The mutable per-run
//! half (vertex properties + active set) is [`crate::state::VertexState`].
//!
//! The number of partitions defaults to `8 × available threads`, matching
//! the `nthreads * 8` choice in the paper's appendix listing, and partitions
//! are balanced by edge count to keep skewed RMAT/social graphs from
//! serialising on one heavy partition.

use crate::error::{GraphMatError, Result};
use crate::program::VertexId;
use graphmat_io::edgelist::EdgeList;
use graphmat_sparse::parallel::available_threads;
use graphmat_sparse::partition::{PartitionedDcsc, RowPartitioner, RowRange};
use graphmat_sparse::pull::CsrMirror;

/// Options controlling topology construction.
#[derive(Clone, Copy, Debug)]
pub struct GraphBuildOptions {
    /// Number of matrix partitions; `0` picks `partition_factor × threads`.
    pub num_partitions: usize,
    /// Multiplier applied to the thread count when `num_partitions == 0`
    /// (the paper uses 8).
    pub partition_factor: usize,
    /// Balance partitions by edge count (`true`, the paper's load-balancing
    /// optimization) or split rows evenly (`false`, the naive layout used as
    /// the Figure 7 baseline).
    pub balance_partitions: bool,
    /// Also build the non-transposed matrix so programs can scatter along
    /// in-edges ([`crate::program::EdgeDirection::In`] / `Both`).
    pub build_in_edges: bool,
    /// Also materialize row-major CSR mirrors of the DCSC matrices so the
    /// engine can run the **dense pull** backend (direction optimization).
    /// Costs roughly the same memory again per mirrored matrix
    /// ([`Topology::pull_bytes`] reports exactly how much). The default
    /// matches the run defaults at each altitude: **off** here — the legacy
    /// facades pair `GraphBuildOptions::default()` with the always-push
    /// `RunOptions::default()`, which never reads a mirror — and **on** in
    /// the session's graph builder, whose runs default to the
    /// direction-optimized `VectorKind::Auto`
    /// ([`crate::session::GraphBuilder::pull_enabled`]). Without mirrors,
    /// `Auto` degrades gracefully to always-push.
    pub build_pull_mirrors: bool,
}

impl Default for GraphBuildOptions {
    fn default() -> Self {
        GraphBuildOptions {
            num_partitions: 0,
            partition_factor: 8,
            balance_partitions: true,
            build_in_edges: true,
            build_pull_mirrors: false,
        }
    }
}

impl GraphBuildOptions {
    /// Explicitly set the number of partitions.
    pub fn with_partitions(mut self, n: usize) -> Self {
        self.num_partitions = n;
        self
    }

    /// Enable or disable nnz-balanced partitioning.
    pub fn with_balancing(mut self, balance: bool) -> Self {
        self.balance_partitions = balance;
        self
    }

    /// Enable or disable construction of the in-edge matrix.
    pub fn with_in_edges(mut self, build: bool) -> Self {
        self.build_in_edges = build;
        self
    }

    /// Enable or disable construction of the row-major CSR mirrors the pull
    /// backend traverses (off by default here; the session's graph builder
    /// turns them on — see [`GraphBuildOptions::build_pull_mirrors`]).
    pub fn with_pull_mirrors(mut self, build: bool) -> Self {
        self.build_pull_mirrors = build;
        self
    }

    pub(crate) fn effective_partitions(&self) -> usize {
        self.effective_partitions_for(available_threads())
    }

    /// Resolve the partition count against an explicit thread count (the
    /// session passes its pool size here, so a small session on a big
    /// machine does not build an over-partitioned matrix).
    pub(crate) fn effective_partitions_for(&self, threads: usize) -> usize {
        if self.num_partitions == 0 {
            (self.partition_factor.max(1)) * threads.max(1)
        } else {
            self.num_partitions
        }
    }
}

/// The immutable structural half of a graph: partitioned DCSC adjacency
/// matrices plus degree arrays, generic over the edge value type `E` (`()`
/// matrices store no edge value bytes at all).
///
/// Build one with [`Topology::from_edge_list`] or through
/// [`crate::session::Session::build_graph`], wrap it in an `Arc`, and share
/// it between any number of concurrent runs — every method takes `&self` and
/// nothing here is ever mutated after construction.
#[derive(Clone, Debug)]
pub struct Topology<E> {
    nvertices: VertexId,
    nedges: usize,
    /// `Gᵀ`: row = destination, column = source. Used for out-edge scatter.
    out_matrix: PartitionedDcsc<E>,
    /// `G`: row = source, column = destination. Used for in-edge scatter.
    in_matrix: Option<PartitionedDcsc<E>>,
    /// Row-major mirror of `out_matrix`, traversed by the dense-pull
    /// backend for `Out`-direction programs.
    out_pull: Option<CsrMirror<E>>,
    /// Row-major mirror of `in_matrix`, for `In`/`Both`-direction pulls.
    in_pull: Option<CsrMirror<E>>,
    out_degrees: Vec<u32>,
    in_degrees: Vec<u32>,
}

impl<E: Clone> Topology<E> {
    /// Build a topology from an edge list. The edge value type of the edge
    /// list carries over into the DCSC matrices unchanged.
    pub fn from_edge_list(edges: &EdgeList<E>, options: GraphBuildOptions) -> Self {
        let n = edges.num_vertices();
        let nparts = options.effective_partitions().max(1);

        let transpose_coo = edges.to_transpose_coo();
        let out_matrix = if options.balance_partitions {
            let ranges = RowPartitioner::balanced_nnz(&transpose_coo.row_counts(), nparts);
            PartitionedDcsc::from_coo(&transpose_coo, &ranges)
        } else {
            PartitionedDcsc::from_coo_even(&transpose_coo, nparts)
        };

        let in_matrix = if options.build_in_edges {
            let adj_coo = edges.to_adjacency_coo();
            Some(if options.balance_partitions {
                let ranges = RowPartitioner::balanced_nnz(&adj_coo.row_counts(), nparts);
                PartitionedDcsc::from_coo(&adj_coo, &ranges)
            } else {
                PartitionedDcsc::from_coo_even(&adj_coo, nparts)
            })
        } else {
            None
        };

        let out_degrees: Vec<u32> = edges.out_degrees().into_iter().map(|d| d as u32).collect();
        let in_degrees: Vec<u32> = edges.in_degrees().into_iter().map(|d| d as u32).collect();

        let (out_pull, in_pull) = if options.build_pull_mirrors {
            (
                Some(CsrMirror::from_partitioned(&out_matrix)),
                in_matrix.as_ref().map(CsrMirror::from_partitioned),
            )
        } else {
            (None, None)
        };

        Topology {
            nvertices: n,
            nedges: edges.num_edges(),
            out_matrix,
            in_matrix,
            out_pull,
            in_pull,
            out_degrees,
            in_degrees,
        }
    }

    /// Reconstruct the edge list the topology stores, in a **deterministic**
    /// order: out-matrix partitions ascending, source (column) ascending
    /// within each partition, destination ascending within each column.
    /// Equal topologies therefore produce byte-identical lists — the
    /// property [`crate::store::GraphStore`]'s compaction relies on to make
    /// repeated rebuilds reproducible.
    pub fn to_edge_list(&self) -> EdgeList<E> {
        let mut el = EdgeList::new(self.nvertices);
        // Out matrix is Gᵀ: row = destination, column = source.
        for part in self.out_matrix.partitions() {
            for (src, dsts, weights) in part.matrix.iter_cols() {
                for (dst, w) in dsts.iter().zip(weights) {
                    el.push(src, *dst, w.clone());
                }
            }
        }
        el
    }
}

impl<E> Topology<E> {
    /// The row ranges of the out matrix's partitions (`Gᵀ`: row =
    /// destination) — what a delta overlay must be bucketed by to align with
    /// the push kernel's partition sweep.
    pub fn out_partition_ranges(&self) -> Vec<RowRange> {
        self.out_matrix
            .partitions()
            .iter()
            .map(|p| p.rows)
            .collect()
    }

    /// The row ranges of the in matrix's partitions (`G`: row = source), if
    /// the in-edge matrix was built.
    pub fn in_partition_ranges(&self) -> Option<Vec<RowRange>> {
        self.in_matrix
            .as_ref()
            .map(|m| m.partitions().iter().map(|p| p.rows).collect())
    }
    /// Number of vertices.
    pub fn num_vertices(&self) -> VertexId {
        self.nvertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.nedges
    }

    /// Out-degree of vertex `v`, or an error for an out-of-range id.
    pub fn try_out_degree(&self, v: VertexId) -> Result<u32> {
        self.out_degrees
            .get(v as usize)
            .copied()
            .ok_or(self.out_of_range(v))
    }

    /// In-degree of vertex `v`, or an error for an out-of-range id.
    pub fn try_in_degree(&self, v: VertexId) -> Result<u32> {
        self.in_degrees
            .get(v as usize)
            .copied()
            .ok_or(self.out_of_range(v))
    }

    /// Out-degree of vertex `v`. Panics with the vertex id and vertex count
    /// if `v` is out of range.
    pub fn out_degree(&self, v: VertexId) -> u32 {
        match self.out_degrees.get(v as usize) {
            Some(&d) => d,
            // audit:allow(no-unwrap): documented panicking variant;
            // `try_out_degree` is the fallible twin.
            None => panic!("{}", self.out_of_range(v)),
        }
    }

    /// In-degree of vertex `v`. Panics with the vertex id and vertex count
    /// if `v` is out of range.
    pub fn in_degree(&self, v: VertexId) -> u32 {
        match self.in_degrees.get(v as usize) {
            Some(&d) => d,
            // audit:allow(no-unwrap): documented panicking variant;
            // `try_in_degree` is the fallible twin.
            None => panic!("{}", self.out_of_range(v)),
        }
    }

    /// All out-degrees (indexed by vertex id).
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }

    /// All in-degrees (indexed by vertex id).
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degrees
    }

    /// The partitioned `Gᵀ` used for out-edge traversal.
    pub fn out_matrix(&self) -> &PartitionedDcsc<E> {
        &self.out_matrix
    }

    /// The partitioned `G` used for in-edge traversal, if it was built.
    pub fn in_matrix(&self) -> Option<&PartitionedDcsc<E>> {
        self.in_matrix.as_ref()
    }

    /// Whether the in-edge matrix was built (`In`/`Both`-direction programs
    /// need it).
    pub fn has_in_edges(&self) -> bool {
        self.in_matrix.is_some()
    }

    /// The row-major pull mirror of `Gᵀ` (out-edge traversal), if it was
    /// built.
    pub fn out_pull_mirror(&self) -> Option<&CsrMirror<E>> {
        self.out_pull.as_ref()
    }

    /// The row-major pull mirror of `G` (in-edge traversal), if it was
    /// built. Present exactly when pull mirrors are enabled *and* the
    /// in-edge matrix was built.
    pub fn in_pull_mirror(&self) -> Option<&CsrMirror<E>> {
        self.in_pull.as_ref()
    }

    /// Whether the pull mirrors were built. They mirror exactly the DCSC
    /// matrices present (out always; in iff `build_in_edges`), so one flag
    /// answers for every direction: a `Dense`-forced or `Auto`-selected pull
    /// can run iff this is `true` (and, for `In`/`Both`, iff
    /// [`Topology::has_in_edges`] — which those directions require anyway).
    pub fn has_pull_mirrors(&self) -> bool {
        self.out_pull.is_some()
    }

    /// Number of matrix partitions.
    pub fn num_partitions(&self) -> usize {
        self.out_matrix.n_partitions()
    }

    /// Total in-memory footprint of the adjacency matrices in bytes,
    /// including stored edge values **and the pull mirrors** (see
    /// [`Topology::pull_bytes`] for the mirrors' share alone). For `E = ()`
    /// this is pure index cost — the visible payoff of the unweighted fast
    /// path.
    pub fn matrix_bytes(&self) -> usize {
        self.out_matrix.bytes()
            + self.in_matrix.as_ref().map_or(0, |m| m.bytes())
            + self.pull_bytes()
    }

    /// The extra memory the row-major pull mirrors cost, in bytes — zero
    /// when the topology was built with `build_pull_mirrors = false`,
    /// otherwise roughly one more copy of each DCSC matrix (row pointers +
    /// column ids + edge values; zero value bytes for `E = ()`).
    pub fn pull_bytes(&self) -> usize {
        self.out_pull.as_ref().map_or(0, |m| m.bytes())
            + self.in_pull.as_ref().map_or(0, |m| m.bytes())
    }

    /// The error for using vertex id `v` against this topology.
    pub(crate) fn out_of_range(&self, v: VertexId) -> GraphMatError {
        GraphMatError::VertexOutOfRange {
            vertex: v,
            num_vertices: self.nvertices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn small_topology() -> Topology<f32> {
        let el = EdgeList::from_tuples(
            4,
            vec![
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 2, 3.0),
                (2, 3, 4.0),
                (3, 0, 5.0),
            ],
        );
        Topology::from_edge_list(&el, GraphBuildOptions::default().with_partitions(2))
    }

    #[test]
    fn construction_counts() {
        let t = small_topology();
        assert_eq!(t.num_vertices(), 4);
        assert_eq!(t.num_edges(), 5);
        assert_eq!(t.num_partitions(), 2);
        assert_eq!(t.out_matrix().nnz(), 5);
        assert_eq!(t.in_matrix().unwrap().nnz(), 5);
        assert!(t.has_in_edges());
    }

    #[test]
    fn topology_is_send_sync_and_arc_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Topology<f32>>();
        assert_send_sync::<Arc<Topology<()>>>();
        let t = Arc::new(small_topology());
        let t2 = Arc::clone(&t);
        std::thread::scope(|s| {
            s.spawn(move || assert_eq!(t2.num_edges(), 5));
        });
        assert_eq!(t.num_vertices(), 4);
    }

    #[test]
    fn degree_accessors_agree_with_arrays() {
        let t = small_topology();
        assert_eq!(t.out_degree(0), 2);
        assert_eq!(t.in_degree(2), 2);
        assert_eq!(t.try_out_degree(3), Ok(1));
        assert_eq!(
            t.try_in_degree(9),
            Err(GraphMatError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 4
            })
        );
    }

    #[test]
    fn out_of_range_degree_panics_with_id_and_count() {
        let t = small_topology();
        let err = std::panic::catch_unwind(|| t.out_degree(42)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("42") && msg.contains('4'), "{msg}");
    }

    #[test]
    fn in_edges_can_be_skipped() {
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let t = Topology::from_edge_list(&el, GraphBuildOptions::default().with_in_edges(false));
        assert!(t.in_matrix().is_none());
        assert!(!t.has_in_edges());
    }

    #[test]
    fn pull_mirrors_mirror_only_the_matrices_built() {
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let t = Topology::from_edge_list(
            &el,
            GraphBuildOptions::default()
                .with_in_edges(false)
                .with_pull_mirrors(true),
        );
        assert!(t.has_pull_mirrors());
        assert!(t.out_pull_mirror().is_some());
        assert!(t.in_pull_mirror().is_none());
    }

    #[test]
    fn pull_mirrors_match_their_matrices_and_report_bytes() {
        let el = EdgeList::from_tuples(
            4,
            vec![
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 2, 3.0),
                (2, 3, 4.0),
                (3, 0, 5.0),
            ],
        );
        let t = Topology::from_edge_list(
            &el,
            GraphBuildOptions::default()
                .with_partitions(2)
                .with_pull_mirrors(true),
        );
        let out_mirror = t.out_pull_mirror().unwrap();
        let in_mirror = t.in_pull_mirror().unwrap();
        assert_eq!(out_mirror.nnz(), t.out_matrix().nnz());
        assert_eq!(in_mirror.nnz(), t.in_matrix().unwrap().nnz());
        assert_eq!(out_mirror.n_partitions(), t.num_partitions());
        assert_eq!(t.pull_bytes(), out_mirror.bytes() + in_mirror.bytes());
        assert!(t.matrix_bytes() > t.pull_bytes());
    }

    #[test]
    fn edge_list_round_trip_is_deterministic_and_complete() {
        let t = small_topology();
        let el = t.to_edge_list();
        assert_eq!(el.num_vertices(), 4);
        assert_eq!(el.num_edges(), 5);
        // Same content as the construction input, up to order.
        let mut got = el.edges().to_vec();
        got.sort_by_key(|e| (e.0, e.1));
        assert_eq!(
            got,
            vec![
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 2, 3.0),
                (2, 3, 4.0),
                (3, 0, 5.0),
            ]
        );
        // A rebuild from the extracted list extracts byte-identically.
        let t2 = Topology::from_edge_list(&el, GraphBuildOptions::default().with_partitions(2));
        assert_eq!(t2.to_edge_list().edges(), el.edges());
        // Partition-range accessors mirror the matrices built.
        assert_eq!(t.out_partition_ranges().len(), 2);
        assert_eq!(t.in_partition_ranges().unwrap().len(), 2);
        let el2 = EdgeList::from_tuples(3, vec![(0, 1, 1.0)]);
        let no_in =
            Topology::from_edge_list(&el2, GraphBuildOptions::default().with_in_edges(false));
        assert!(no_in.in_partition_ranges().is_none());
    }

    #[test]
    fn pull_mirrors_are_off_in_the_legacy_default() {
        // GraphBuildOptions::default() pairs with the always-push
        // RunOptions::default(); mirrors it could never read are not built.
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let t = Topology::from_edge_list(&el, GraphBuildOptions::default());
        assert!(!t.has_pull_mirrors());
        assert!(t.out_pull_mirror().is_none());
        assert!(t.in_pull_mirror().is_none());
        assert_eq!(t.pull_bytes(), 0);
        // Without mirrors, matrix_bytes is the pure DCSC footprint.
        assert_eq!(
            t.matrix_bytes(),
            t.out_matrix().bytes() + t.in_matrix().unwrap().bytes()
        );
    }
}
