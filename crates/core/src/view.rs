//! [`GraphView`]: a borrowed `(base ⊕ delta)` pairing the engine traverses.
//!
//! The streaming-update layer publishes snapshots as an immutable base
//! [`Topology`] plus an optional [`DeltaOverlay`] of pending edits (see
//! [`crate::store::GraphStore`]). The engine never sees the snapshot type —
//! it takes a `GraphView`, a `Copy` pair of references resolving every
//! structural question a superstep asks (degrees, edge counts, which kernel
//! overlay to sweep) against the *edited* graph:
//!
//! * a view with no overlay behaves exactly like the bare topology — the
//!   construction normalizes an **empty** overlay to `None`, so the
//!   steady-state read path after compaction is byte-for-byte the
//!   pre-streaming code path;
//! * a view with a pending overlay reports the merged degree arrays and
//!   edge count, and hands the push SpMV the partition-aligned kernel
//!   overlays for the program's traversal direction.
//!
//! Only the **push** backend is overlay-aware: the dense pull mirrors are
//! rebuilt at compaction, not per batch, so a superstep over a pending
//! overlay always pushes ([`VectorKind::Auto`] selects push; forcing
//! [`VectorKind::Dense`] is a typed error). Results stay bit-for-bit
//! identical to a run over a topology rebuilt from the edited edge list —
//! the merged column walk of
//! [`graphmat_sparse::overlay::gspmv_overlay_into`] folds each
//! destination's products in the same ascending-source order a rebuild
//! would.
//!
//! [`VectorKind::Auto`]: crate::options::VectorKind::Auto
//! [`VectorKind::Dense`]: crate::options::VectorKind::Dense

use crate::program::VertexId;
use crate::topology::Topology;
use graphmat_delta::DeltaOverlay;
use graphmat_sparse::overlay::Overlay;

/// A borrowed view of a graph as the engine traverses it: an immutable base
/// [`Topology`] plus an optional [`DeltaOverlay`] of pending (uncompacted)
/// edge edits. `Copy`, two pointers wide — build one per superstep or per
/// run for free.
#[derive(Debug)]
pub struct GraphView<'a, E> {
    topology: &'a Topology<E>,
    overlay: Option<&'a DeltaOverlay<E>>,
}

impl<'a, E> Clone for GraphView<'a, E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, E> Copy for GraphView<'a, E> {}

impl<'a, E> GraphView<'a, E> {
    /// A view of the bare topology (no pending edits). Identical behaviour
    /// to every pre-streaming engine entry point.
    pub fn base(topology: &'a Topology<E>) -> Self {
        GraphView {
            topology,
            overlay: None,
        }
    }

    /// A view of `topology` with `overlay`'s pending edits applied. An
    /// empty overlay is normalized to `None` so the read path cannot pay
    /// the merged walk for a no-op.
    pub fn new(topology: &'a Topology<E>, overlay: Option<&'a DeltaOverlay<E>>) -> Self {
        GraphView {
            topology,
            overlay: overlay.filter(|o| !o.is_empty()),
        }
    }

    /// The base topology.
    pub fn topology(&self) -> &'a Topology<E> {
        self.topology
    }

    /// The pending overlay, if any (never `Some` of an empty overlay).
    pub fn overlay(&self) -> Option<&'a DeltaOverlay<E>> {
        self.overlay
    }

    /// `true` if the view carries pending edits.
    pub fn has_overlay(&self) -> bool {
        self.overlay.is_some()
    }

    /// Vertex count (overlays never change it).
    pub fn num_vertices(&self) -> VertexId {
        self.topology.num_vertices()
    }

    /// Directed edge count of the **edited** graph.
    pub fn num_edges(&self) -> usize {
        self.overlay
            .map_or(self.topology.num_edges(), |o| o.num_edges())
    }

    /// Out-degrees of the edited graph, indexed by vertex.
    pub fn out_degrees(&self) -> &'a [u32] {
        self.overlay
            .map_or(self.topology.out_degrees(), |o| o.out_degrees())
    }

    /// In-degrees of the edited graph, indexed by vertex.
    pub fn in_degrees(&self) -> &'a [u32] {
        self.overlay
            .map_or(self.topology.in_degrees(), |o| o.in_degrees())
    }

    /// Whether the base built its in-edge matrix (`In`/`Both` programs).
    pub fn has_in_edges(&self) -> bool {
        self.topology.has_in_edges()
    }

    /// The kernel overlay aligned to the out matrix (`Gᵀ`), if edits are
    /// pending.
    pub(crate) fn out_kernel_overlay(&self) -> Option<&'a Overlay<E>> {
        self.overlay.map(|o| o.out())
    }

    /// The kernel overlay aligned to the in matrix (`G`), if edits are
    /// pending **and** the overlay was compiled against an in matrix.
    pub(crate) fn in_kernel_overlay(&self) -> Option<&'a Overlay<E>> {
        self.overlay.and_then(|o| o.in_overlay())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::GraphBuildOptions;
    use graphmat_delta::{BaseFacts, DeltaOverlay, PairIndex, UpdateOp};
    use graphmat_io::edgelist::EdgeList;

    fn topo() -> Topology<f32> {
        let el = EdgeList::from_tuples(4, vec![(0, 1, 1.0), (0, 2, 2.0), (1, 2, 3.0), (2, 3, 4.0)]);
        Topology::from_edge_list(&el, GraphBuildOptions::default().with_partitions(2))
    }

    fn overlay_for(t: &Topology<f32>, resolved: &[(u32, u32, UpdateOp<f32>)]) -> DeltaOverlay<f32> {
        let el = t.to_edge_list();
        let idx = PairIndex::from_edges(el.edges());
        let out_ranges = t.out_partition_ranges();
        let in_ranges = t.in_partition_ranges();
        let facts = BaseFacts {
            num_vertices: t.num_vertices(),
            num_edges: t.num_edges(),
            out_ranges: &out_ranges,
            in_ranges: in_ranges.as_deref(),
            out_degrees: t.out_degrees(),
            in_degrees: t.in_degrees(),
        };
        DeltaOverlay::build(&facts, &idx, resolved)
    }

    #[test]
    fn base_view_mirrors_the_topology() {
        let t = topo();
        let v = GraphView::base(&t);
        assert!(!v.has_overlay());
        assert_eq!(v.num_vertices(), 4);
        assert_eq!(v.num_edges(), 4);
        assert_eq!(v.out_degrees(), t.out_degrees());
        assert_eq!(v.in_degrees(), t.in_degrees());
        assert!(v.has_in_edges());
        assert!(v.out_kernel_overlay().is_none());
        let copy = v; // Copy without E: Clone
        assert_eq!(copy.num_edges(), v.num_edges());
    }

    #[test]
    fn empty_overlay_is_normalized_away() {
        let t = topo();
        let ov = overlay_for(&t, &[]);
        assert!(ov.is_empty());
        let v = GraphView::new(&t, Some(&ov));
        assert!(!v.has_overlay());
        assert!(v.out_kernel_overlay().is_none());
    }

    #[test]
    fn pending_overlay_reports_merged_structure() {
        let t = topo();
        let ov = overlay_for(
            &t,
            &[(0, 1, UpdateOp::Delete), (3, 0, UpdateOp::Insert(5.0))],
        );
        let v = GraphView::new(&t, Some(&ov));
        assert!(v.has_overlay());
        assert_eq!(v.num_edges(), 4); // -1 +1
        assert_eq!(v.out_degrees(), &[1, 1, 1, 1]);
        assert_eq!(v.in_degrees(), &[1, 0, 2, 1]);
        assert!(v.out_kernel_overlay().is_some());
        assert!(v.in_kernel_overlay().is_some());
    }
}
