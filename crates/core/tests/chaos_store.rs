//! Chaos tests for the [`GraphStore`] write path: injected faults at every
//! store failpoint must leave the published snapshot serving, the pending
//! log consistent (exactly-once admission), and the compaction lane alive.
//!
//! Lives in its own integration-test binary because armed failpoints are
//! process-global: the lib test binary must never run with failpoints armed
//! under its feet. Each test serializes on [`registry_guard`] and resets the
//! registry before arming its own points.
#![cfg(feature = "chaos")]

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use graphmat_core::topology::GraphBuildOptions;
use graphmat_core::{GraphMatError, GraphStore, StoreOptions, Topology};
use graphmat_delta::{DeltaBatch, UpdateOp};
use graphmat_io::edgelist::EdgeList;
use graphmat_sparse::Index;

fn registry_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn base() -> Arc<Topology<f32>> {
    let el = EdgeList::from_tuples(
        5,
        vec![
            (0, 1, 1.0),
            (0, 2, 3.0),
            (1, 2, 1.0),
            (2, 3, 2.0),
            (3, 4, 2.0),
            (4, 0, 4.0),
        ],
    );
    Arc::new(Topology::from_edge_list(
        &el,
        GraphBuildOptions::default().with_partitions(2),
    ))
}

fn store(threshold: usize, background: bool) -> Arc<GraphStore<f32>> {
    GraphStore::new(
        base(),
        StoreOptions {
            compaction_threshold: threshold,
            background,
            overload_watermark: usize::MAX,
        },
    )
}

fn batch(ops: Vec<(Index, Index, UpdateOp<f32>)>) -> DeltaBatch<f32> {
    DeltaBatch::from_ops(5, ops).unwrap()
}

/// A panic injected at the commit point must abort the batch without trace:
/// nothing published, nothing logged — and the *same* batch, retried,
/// applies exactly once.
#[test]
fn publish_panic_aborts_the_batch_exactly_once() {
    let _g = registry_guard();
    graphmat_chaos::reset();
    graphmat_chaos::configure("store.apply.publish", "panic@n1").unwrap();

    let store = store(usize::MAX, false);
    let ops = vec![
        (0u32, 3u32, UpdateOp::Insert(9.0)),
        (4, 0, UpdateOp::Delete),
    ];

    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        store.apply(batch(ops.clone()))
    }));
    assert!(panicked.is_err(), "injected panic must unwind out of apply");
    let snap = store.snapshot();
    assert_eq!(snap.version(), 0, "failed apply must publish nothing");
    assert_eq!(snap.delta_len(), 0);

    // Retry commits exactly once: the panicked attempt left no half-admitted
    // ops for this one to double-fold.
    let snap = store
        .apply(batch(ops))
        .expect("store must accept writes after a panicked apply");
    assert_eq!(snap.version(), 1);
    assert_eq!(snap.delta_len(), 2);
    assert_eq!(snap.view().out_degrees(), &[3, 1, 1, 1, 0]);
    graphmat_chaos::reset();
}

/// Injected admission/overlay errors are typed, side-effect-free rejections.
#[test]
fn injected_apply_errors_reject_cleanly() {
    let _g = registry_guard();
    graphmat_chaos::reset();
    let store = store(usize::MAX, false);

    for point in ["store.apply.admit", "store.overlay.build"] {
        graphmat_chaos::configure(point, "error").unwrap();
        let err = store
            .apply(batch(vec![(1, 3, UpdateOp::Insert(7.0))]))
            .expect_err("armed failpoint must fail the apply");
        assert!(
            matches!(err, GraphMatError::Internal(site) if site.contains(point)),
            "{point}: got {err:?}"
        );
        assert_eq!(store.snapshot().version(), 0);
        graphmat_chaos::configure(point, "off").unwrap();
    }

    // Disarmed, the identical batch goes through.
    let snap = store
        .apply(batch(vec![(1, 3, UpdateOp::Insert(7.0))]))
        .unwrap();
    assert_eq!(snap.version(), 1);
    graphmat_chaos::reset();
}

/// A panicking background compaction leaves the overlaid snapshot serving
/// and the lane restarts (with backoff) to finish the job.
#[test]
fn background_compaction_panic_self_heals() {
    let _g = registry_guard();
    graphmat_chaos::reset();
    graphmat_chaos::configure("store.compact", "panic@n1").unwrap();

    let store = store(1, true);
    let snap = store
        .apply(batch(vec![(1, 4, UpdateOp::Insert(3.0))]))
        .unwrap();
    assert_eq!(snap.delta_len(), 1);

    // First compaction attempt panics; the lane must back off and retry.
    let deadline = Instant::now() + Duration::from_secs(10);
    while store.compactions() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
        // Reads keep serving the whole time.
        assert_eq!(store.snapshot().version(), 1);
    }
    assert_eq!(store.compactions(), 1, "retry must eventually compact");
    assert_eq!(store.compaction_failures(), 1);
    assert_eq!(store.compaction_restarts(), 1);

    let snap = store.snapshot();
    assert_eq!(snap.version(), 1);
    assert!(snap.overlay().is_none(), "backlog must be drained");
    assert_eq!(snap.num_edges(), 7);
    graphmat_chaos::reset();
    drop(store); // lane must join cleanly after having panicked once
}

/// Inline compaction panic unwinds to the caller, but the batch it rode on
/// is already committed and the store remains fully usable.
#[test]
fn inline_compaction_panic_leaves_store_usable() {
    let _g = registry_guard();
    graphmat_chaos::reset();
    graphmat_chaos::configure("store.compact", "panic@n1").unwrap();

    let store = store(1, false);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        store.apply(batch(vec![(1, 4, UpdateOp::Insert(3.0))]))
    }));
    assert!(panicked.is_err(), "inline compaction panic must propagate");

    // The apply itself committed before compaction ran.
    let snap = store.snapshot();
    assert_eq!(snap.version(), 1);
    assert_eq!(snap.delta_len(), 1);

    // Failpoint consumed: a manual retry compacts the surviving backlog.
    assert!(store.compact_now());
    let snap = store.snapshot();
    assert_eq!(snap.version(), 1);
    assert!(snap.overlay().is_none());
    assert_eq!(snap.num_edges(), 7);
    graphmat_chaos::reset();
}
