//! A tiny, dependency-free benchmark harness exposing the subset of the
//! `criterion` API that the GraphMat-RS benches use.
//!
//! The build environment is offline, so the real `criterion` crate cannot be
//! fetched; this workspace-local stand-in keeps the bench sources unchanged.
//! Semantics:
//!
//! * under `cargo bench` (cargo passes `--bench`) every benchmark runs a
//!   warm-up iteration followed by `sample_size` timed iterations and prints
//!   min / mean / max wall time;
//! * under `cargo test` (no `--bench` argument) every benchmark body runs a
//!   single iteration as a smoke test, exactly like the real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, normally constructed by [`criterion_main!`].
pub struct Criterion {
    bench_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

impl Criterion {
    /// Build a driver from the process arguments: `--bench` (what `cargo
    /// bench` passes) selects full measurement, anything else smoke mode.
    pub fn from_args() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            bench_mode,
            default_sample_size: 10,
        }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            bench_mode: self.bench_mode,
            name: name.into(),
            sample_size: self.default_sample_size,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let bench_mode = self.bench_mode;
        let samples = self.default_sample_size;
        run_one(bench_mode, "", &id.into().label, samples, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    bench_mode: bool,
    name: String,
    sample_size: usize,
    // lifetime parameter kept for API compatibility with the real criterion
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark in bench mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            self.bench_mode,
            &self.name,
            &id.into().label,
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            self.bench_mode,
            &self.name,
            &id.into().label,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Close the group (no-op; prints a separator in bench mode).
    pub fn finish(self) {
        if self.bench_mode {
            println!();
        }
    }
}

fn run_one<F>(bench_mode: bool, group: &str, label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if !bench_mode {
        // cargo test smoke run: one iteration, no timing output
        let mut b = Bencher {
            timed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        return;
    }
    // warm-up
    let mut b = Bencher {
        timed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            timed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            times.push(b.timed.as_secs_f64() / b.iters as f64);
        }
    }
    if times.is_empty() {
        println!("{full:<60} (no iterations)");
        return;
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{full:<60} min {:>10.3} ms   mean {:>10.3} ms   max {:>10.3} ms",
        min * 1e3,
        mean * 1e3,
        max * 1e3
    );
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    timed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one call of `f` (the caller loops us via sampling).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.timed += start.elapsed();
        self.iters += 1;
    }
}

/// Identifier combining a function name and a parameter, as in criterion.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Group several bench functions under one name, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate the `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_bench_once() {
        let mut c = Criterion {
            bench_mode: false,
            default_sample_size: 10,
        };
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.sample_size(50).bench_function("x", |b| {
            runs += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
