//! [`DeltaBatch`]: one validated batch of edge mutations.

use crate::DeltaError;
use graphmat_sparse::Index;

/// One edge mutation, keyed by its `(src, dst)` pair.
///
/// `Insert` is an **upsert**: if the pair already exists in the graph it is
/// reweighted (every stored copy of a duplicated pair is replaced by the one
/// new value), otherwise it is added. `Delete` removes every stored copy of
/// the pair and is a no-op if the pair is absent.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateOp<E> {
    /// Insert the edge, or replace its value if it already exists.
    Insert(E),
    /// Remove the edge (no-op if absent).
    Delete,
}

impl<E> UpdateOp<E> {
    /// `true` for [`UpdateOp::Insert`].
    pub fn is_insert(&self) -> bool {
        matches!(self, UpdateOp::Insert(_))
    }
}

/// A validated batch of edge mutations against a graph of a fixed vertex
/// count — the unit writers submit to a `GraphStore` and the payload of the
/// server's `UPDATE` opcode.
///
/// Ops within a batch apply in order; together with the log's batch order
/// this gives a total order over all mutations, resolved latest-wins per
/// `(src, dst)` pair at publication time.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaBatch<E> {
    num_vertices: Index,
    ops: Vec<(Index, Index, UpdateOp<E>)>,
}

impl<E> DeltaBatch<E> {
    /// Create an empty batch for a graph of `num_vertices` vertices.
    pub fn new(num_vertices: Index) -> Self {
        DeltaBatch {
            num_vertices,
            ops: Vec::new(),
        }
    }

    /// Build a batch from `(src, dst, op)` triples, validating every
    /// endpoint against the vertex count.
    ///
    /// # Errors
    /// [`DeltaError::VertexOutOfRange`] on the first out-of-range endpoint;
    /// [`DeltaError::EmptyBatch`] if `ops` is empty.
    pub fn from_ops(
        num_vertices: Index,
        ops: Vec<(Index, Index, UpdateOp<E>)>,
    ) -> Result<Self, DeltaError> {
        if ops.is_empty() {
            return Err(DeltaError::EmptyBatch);
        }
        for &(s, d, _) in &ops {
            for v in [s, d] {
                if v >= num_vertices {
                    return Err(DeltaError::VertexOutOfRange {
                        vertex: v,
                        num_vertices,
                    });
                }
            }
        }
        Ok(DeltaBatch { num_vertices, ops })
    }

    /// Append an insert/upsert of edge `src → dst` with value `weight`.
    ///
    /// # Errors
    /// [`DeltaError::VertexOutOfRange`] if an endpoint is out of range.
    pub fn insert(&mut self, src: Index, dst: Index, weight: E) -> Result<(), DeltaError> {
        self.check(src)?;
        self.check(dst)?;
        self.ops.push((src, dst, UpdateOp::Insert(weight)));
        Ok(())
    }

    /// Append a deletion of edge `src → dst`.
    ///
    /// # Errors
    /// [`DeltaError::VertexOutOfRange`] if an endpoint is out of range.
    pub fn delete(&mut self, src: Index, dst: Index) -> Result<(), DeltaError> {
        self.check(src)?;
        self.check(dst)?;
        self.ops.push((src, dst, UpdateOp::Delete));
        Ok(())
    }

    fn check(&self, v: Index) -> Result<(), DeltaError> {
        if v >= self.num_vertices {
            return Err(DeltaError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.num_vertices,
            });
        }
        Ok(())
    }

    /// The vertex count the batch was validated against.
    pub fn num_vertices(&self) -> Index {
        self.num_vertices
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations, in submission order.
    pub fn ops(&self) -> &[(Index, Index, UpdateOp<E>)] {
        &self.ops
    }

    /// Consume the batch and return its operations.
    pub fn into_ops(self) -> Vec<(Index, Index, UpdateOp<E>)> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_validates() {
        let mut b: DeltaBatch<f32> = DeltaBatch::new(4);
        assert!(b.is_empty());
        b.insert(0, 1, 2.5).unwrap();
        b.delete(3, 2).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.num_vertices(), 4);
        assert!(b.ops()[0].2.is_insert());
        assert!(!b.ops()[1].2.is_insert());
    }

    #[test]
    fn out_of_range_endpoints_are_rejected() {
        let mut b: DeltaBatch<f32> = DeltaBatch::new(4);
        assert_eq!(
            b.insert(0, 9, 1.0),
            Err(DeltaError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 4
            })
        );
        assert_eq!(
            b.delete(7, 0),
            Err(DeltaError::VertexOutOfRange {
                vertex: 7,
                num_vertices: 4
            })
        );
        assert!(b.is_empty(), "rejected ops must not be recorded");
    }

    #[test]
    fn from_ops_validates_everything() {
        let ok = DeltaBatch::from_ops(3, vec![(0, 1, UpdateOp::Insert(1.0f32))]).unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(
            DeltaBatch::from_ops(3, vec![(0, 5, UpdateOp::Insert(1.0f32))]),
            Err(DeltaError::VertexOutOfRange {
                vertex: 5,
                num_vertices: 3
            })
        );
        assert_eq!(
            DeltaBatch::<f32>::from_ops(3, vec![]),
            Err(DeltaError::EmptyBatch)
        );
    }
}
