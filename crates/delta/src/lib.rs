//! Streaming graph updates for GraphMat: the delta layer between an
//! immutable base [`Topology`] and a mutating edge stream.
//!
//! The serving story (RedisGraph-style ingest-while-serving) splits a
//! mutable graph into an immutable base plus a small, sorted edit set:
//!
//! * [`batch::DeltaBatch`] — one validated batch of edge insertions /
//!   deletions, the unit a writer submits (and the unit the server's
//!   `UPDATE` opcode carries over the wire);
//! * [`log::DeltaLog`] — the append-only sequence of admitted batches,
//!   resolved **latest-wins per `(src, dst)` pair** when a snapshot is
//!   published;
//! * [`overlay::DeltaOverlay`] — the resolved log compiled against a base's
//!   partitioning into kernel-ready [`graphmat_sparse::overlay::Overlay`]s
//!   (one per traversal direction) plus merged degree arrays and edge
//!   counts, so the engine sees `(base ⊕ delta)` without rebuilding the
//!   matrices.
//!
//! The crate deliberately knows nothing about vertex programs, snapshots or
//! wire formats — `graphmat-core`'s `GraphStore` owns publication and
//! compaction, `graphmat-server` owns the protocol. Like the rest of the
//! workspace it is `std`-only.
//!
//! [`Topology`]: ../graphmat_core/topology/struct.Topology.html

pub mod batch;
pub mod log;
pub mod overlay;

pub use batch::{DeltaBatch, UpdateOp};
pub use log::{apply_resolved_to_edges, DeltaLog};
pub use overlay::{BaseFacts, DeltaOverlay, PairIndex};

/// The kernel-level edit-set structure, re-exported under the paper-plan
/// name: a `DeltaMatrix` is a partition-aligned, column-major set of pending
/// ops that the overlay-aware SpMV sweeps together with the base DCSC.
pub type DeltaMatrix<E> = graphmat_sparse::overlay::Overlay<E>;

/// Typed failures of the delta layer.
///
/// `graphmat-core` converts these into `GraphMatError`, the server into
/// protocol status codes — updates never panic the serving process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge endpoint is not a vertex of the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: graphmat_sparse::Index,
        /// The graph's vertex count.
        num_vertices: graphmat_sparse::Index,
    },
    /// The batch contains no operations.
    EmptyBatch,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for a graph of {num_vertices} vertices"
            ),
            DeltaError::EmptyBatch => write!(f, "update batch contains no operations"),
        }
    }
}

impl std::error::Error for DeltaError {}
