//! [`DeltaLog`]: the append-only sequence of admitted update batches.

use crate::batch::{DeltaBatch, UpdateOp};
use graphmat_sparse::Index;

/// The ordered log of every operation admitted since the last compaction.
///
/// Batches append in admission order; [`DeltaLog::resolve`] collapses the
/// log to its **latest-wins** view — at most one effective op per
/// `(src, dst)` pair, sorted by pair — which is what overlays are compiled
/// from and what compaction folds into the base edge list.
#[derive(Clone, Debug, Default)]
pub struct DeltaLog<E> {
    ops: Vec<(Index, Index, UpdateOp<E>)>,
    batches: usize,
}

impl<E> DeltaLog<E> {
    /// Create an empty log.
    pub fn new() -> Self {
        DeltaLog {
            ops: Vec::new(),
            batches: 0,
        }
    }

    /// Append a validated batch.
    pub fn append(&mut self, batch: DeltaBatch<E>) {
        self.ops.extend(batch.into_ops());
        self.batches += 1;
    }

    /// Total number of logged operations (before latest-wins resolution).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no operations are pending.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of batches appended since the last [`DeltaLog::clear`].
    pub fn n_batches(&self) -> usize {
        self.batches
    }

    /// Drop every logged operation (compaction has folded them into the
    /// base).
    pub fn clear(&mut self) {
        self.ops.clear();
        self.batches = 0;
    }
}

impl<E: Clone> DeltaLog<E> {
    /// The latest-wins view of the log: one op per `(src, dst)` pair — the
    /// last one submitted — sorted by pair.
    pub fn resolve(&self) -> Vec<(Index, Index, UpdateOp<E>)> {
        self.resolve_ops(&[])
    }

    /// The latest-wins view of the log **as if** `batch` had already been
    /// appended, without mutating the log. The store's exactly-once `apply`
    /// uses this to compile the candidate overlay *before* committing the
    /// batch: if overlay compilation fails (or a fault is injected there),
    /// the log is untouched and no trace of the batch survives.
    pub fn resolve_with(&self, batch: &DeltaBatch<E>) -> Vec<(Index, Index, UpdateOp<E>)> {
        self.resolve_ops(batch.ops())
    }

    fn resolve_ops(
        &self,
        extra: &[(Index, Index, UpdateOp<E>)],
    ) -> Vec<(Index, Index, UpdateOp<E>)> {
        // Logged ops order before `extra` ops: latest-wins ties break toward
        // the batch being admitted, matching what append-then-resolve yields.
        let mut seq: Vec<(Index, Index, usize)> = self
            .ops
            .iter()
            .chain(extra)
            .enumerate()
            .map(|(i, &(s, d, _))| (s, d, i))
            .collect();
        seq.sort_unstable();
        let op_at = |i: usize| -> UpdateOp<E> {
            if i < self.ops.len() {
                self.ops[i].2.clone()
            } else {
                extra[i - self.ops.len()].2.clone()
            }
        };
        let mut resolved: Vec<(Index, Index, UpdateOp<E>)> = Vec::new();
        for (s, d, i) in seq {
            let op = op_at(i);
            match resolved.last_mut() {
                Some(last) if last.0 == s && last.1 == d => last.2 = op,
                _ => resolved.push((s, d, op)),
            }
        }
        resolved
    }
}

/// Fold resolved ops into an edge list, the way compaction rebuilds the
/// base: every stored copy of an edited pair is dropped, then the upserts
/// are appended in `(src, dst)` order. The result is deterministic given
/// the input order of `edges`, so repeated compactions of the same history
/// produce byte-identical edge lists.
pub fn apply_resolved_to_edges<E: Clone>(
    edges: &mut Vec<(Index, Index, E)>,
    resolved: &[(Index, Index, UpdateOp<E>)],
) {
    if resolved.is_empty() {
        return;
    }
    debug_assert!(
        resolved
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
        "resolved ops must be sorted and pair-unique"
    );
    edges.retain(|&(s, d, _)| {
        resolved
            .binary_search_by(|probe| (probe.0, probe.1).cmp(&(s, d)))
            .is_err()
    });
    for (s, d, op) in resolved {
        if let UpdateOp::Insert(w) = op {
            edges.push((*s, *d, w.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(num_vertices: Index, ops: Vec<(Index, Index, UpdateOp<f32>)>) -> DeltaBatch<f32> {
        DeltaBatch::from_ops(num_vertices, ops).unwrap()
    }

    #[test]
    fn append_counts() {
        let mut log = DeltaLog::new();
        assert!(log.is_empty());
        log.append(batch(4, vec![(0, 1, UpdateOp::Insert(1.0))]));
        log.append(batch(
            4,
            vec![(1, 2, UpdateOp::Delete), (2, 3, UpdateOp::Insert(2.0))],
        ));
        assert_eq!(log.len(), 3);
        assert_eq!(log.n_batches(), 2);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.n_batches(), 0);
    }

    #[test]
    fn resolve_is_latest_wins_per_pair() {
        let mut log = DeltaLog::new();
        log.append(batch(
            4,
            vec![(0, 1, UpdateOp::Insert(1.0)), (2, 3, UpdateOp::Insert(5.0))],
        ));
        log.append(batch(4, vec![(0, 1, UpdateOp::Delete)]));
        log.append(batch(4, vec![(0, 1, UpdateOp::Insert(9.0))]));
        let resolved = log.resolve();
        assert_eq!(
            resolved,
            vec![(0, 1, UpdateOp::Insert(9.0)), (2, 3, UpdateOp::Insert(5.0)),]
        );
    }

    #[test]
    fn resolve_with_previews_a_batch_without_mutating_the_log() {
        let mut log = DeltaLog::new();
        log.append(batch(
            4,
            vec![(0, 1, UpdateOp::Insert(1.0)), (2, 3, UpdateOp::Insert(5.0))],
        ));
        let pending = batch(
            4,
            vec![(0, 1, UpdateOp::Insert(9.0)), (3, 0, UpdateOp::Delete)],
        );
        let preview = log.resolve_with(&pending);
        // The batch's op wins its pair; the log itself is unchanged.
        assert_eq!(
            preview,
            vec![
                (0, 1, UpdateOp::Insert(9.0)),
                (2, 3, UpdateOp::Insert(5.0)),
                (3, 0, UpdateOp::Delete),
            ]
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.n_batches(), 1);
        // Appending then resolving yields the identical view.
        log.append(pending);
        assert_eq!(log.resolve(), preview);
    }

    #[test]
    fn resolve_keeps_terminal_deletes() {
        let mut log = DeltaLog::new();
        log.append(batch(4, vec![(0, 1, UpdateOp::Insert(1.0))]));
        log.append(batch(4, vec![(0, 1, UpdateOp::Delete)]));
        assert_eq!(log.resolve(), vec![(0, 1, UpdateOp::Delete)]);
    }

    #[test]
    fn apply_resolved_edits_the_edge_list() {
        let mut edges = vec![(0u32, 1u32, 1.0f32), (1, 2, 2.0), (0, 1, 7.0), (2, 3, 3.0)];
        let resolved = vec![
            (0, 1, UpdateOp::Insert(9.0)), // replaces both copies
            (1, 2, UpdateOp::Delete),
            (3, 0, UpdateOp::Insert(4.0)), // fresh edge
        ];
        apply_resolved_to_edges(&mut edges, &resolved);
        assert_eq!(edges, vec![(2, 3, 3.0), (0, 1, 9.0), (3, 0, 4.0)]);
    }

    #[test]
    fn apply_empty_resolution_is_a_noop() {
        let mut edges = vec![(0u32, 1u32, 1.0f32)];
        apply_resolved_to_edges(&mut edges, &[]);
        assert_eq!(edges, vec![(0, 1, 1.0)]);
    }
}
