//! [`DeltaOverlay`]: the resolved delta log compiled against a base
//! topology's layout, ready for the overlay-aware SpMV.
//!
//! A published `(base ⊕ delta)` snapshot needs more than the kernel
//! [`Overlay`]s: the engine also reads per-vertex degrees (PageRank's
//! rank/degree normalization, the Beamer backend selector's edge counts)
//! and the total edge count. This module computes all of it from three
//! inputs — the base's structural facts ([`BaseFacts`]), a sorted index of
//! the base's `(src, dst)` pairs ([`PairIndex`]), and the latest-wins
//! resolution of the log — without touching the base matrices.

use crate::batch::UpdateOp;
use graphmat_sparse::overlay::{Overlay, OverlayOp};
use graphmat_sparse::partition::RowRange;
use graphmat_sparse::Index;

/// Sorted multiset of a base graph's `(src, dst)` pairs, used to tell
/// whether a delta op inserts a new edge, reweights existing copies, or
/// deletes `m ≥ 1` stored copies — the difference drives degree and edge
/// accounting.
#[derive(Clone, Debug, Default)]
pub struct PairIndex {
    pairs: Vec<(Index, Index)>,
}

impl PairIndex {
    /// Build from a base edge list's `(src, dst, _)` triples (any order,
    /// duplicates allowed).
    pub fn from_edges<E>(edges: &[(Index, Index, E)]) -> Self {
        let mut pairs: Vec<(Index, Index)> = edges.iter().map(|&(s, d, _)| (s, d)).collect();
        pairs.sort_unstable();
        PairIndex { pairs }
    }

    /// Number of stored copies of edge `src → dst` in the base.
    pub fn count(&self, src: Index, dst: Index) -> usize {
        let lo = self.pairs.partition_point(|&p| p < (src, dst));
        let hi = self.pairs.partition_point(|&p| p <= (src, dst));
        hi - lo
    }

    /// Total number of indexed pairs (the base edge count).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` if the base has no edges.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// The structural facts of a base topology that overlay compilation needs —
/// extracted by the store so this crate stays independent of
/// `graphmat-core`.
#[derive(Clone, Copy, Debug)]
pub struct BaseFacts<'a> {
    /// Vertex count of the base graph.
    pub num_vertices: Index,
    /// Directed edge count of the base graph.
    pub num_edges: usize,
    /// Row ranges of the base's out matrix (`Gᵀ`: row = destination).
    pub out_ranges: &'a [RowRange],
    /// Row ranges of the base's in matrix (`G`: row = source), if built.
    pub in_ranges: Option<&'a [RowRange]>,
    /// Base out-degrees, indexed by vertex.
    pub out_degrees: &'a [u32],
    /// Base in-degrees, indexed by vertex.
    pub in_degrees: &'a [u32],
}

/// The pending edits of a snapshot, compiled against its base's layout:
/// kernel overlays per traversal direction plus the merged degree arrays
/// and edge count of the *edited* graph.
///
/// Immutable once built — a snapshot shares it behind an `Arc` exactly like
/// the base topology.
#[derive(Clone, Debug)]
pub struct DeltaOverlay<E> {
    out: Overlay<E>,
    in_: Option<Overlay<E>>,
    out_degrees: Vec<u32>,
    in_degrees: Vec<u32>,
    num_edges: usize,
    n_ops: usize,
}

impl<E: Clone> DeltaOverlay<E> {
    /// Compile resolved (latest-wins, pair-sorted) ops against a base.
    ///
    /// Deletes of pairs absent from the base are dropped (they change
    /// nothing); an op on a pair the base stores `m > 1` times masks all
    /// `m` copies, and the degree/edge accounting reflects that.
    pub fn build(
        facts: &BaseFacts<'_>,
        pair_index: &PairIndex,
        resolved: &[(Index, Index, UpdateOp<E>)],
    ) -> Self {
        let n = facts.num_vertices;
        let mut out_degrees: Vec<u32> = facts.out_degrees.to_vec();
        let mut in_degrees: Vec<u32> = facts.in_degrees.to_vec();
        let mut num_edges = facts.num_edges as isize;

        let mut out_entries: Vec<(Index, Index, OverlayOp<E>)> = Vec::new();
        let mut in_entries: Vec<(Index, Index, OverlayOp<E>)> = Vec::new();
        let mut n_ops = 0usize;
        for (s, d, op) in resolved {
            let m = pair_index.count(*s, *d) as isize;
            let (kernel_op, copies_after) = match op {
                UpdateOp::Insert(w) => (OverlayOp::Upsert(w.clone()), 1isize),
                UpdateOp::Delete => {
                    if m == 0 {
                        continue; // deleting an absent edge changes nothing
                    }
                    (OverlayOp::Delete, 0)
                }
            };
            let delta = copies_after - m;
            out_degrees[*s as usize] = (out_degrees[*s as usize] as isize + delta) as u32;
            in_degrees[*d as usize] = (in_degrees[*d as usize] as isize + delta) as u32;
            num_edges += delta;
            n_ops += 1;
            // Out matrix is Gᵀ (row = dst, col = src); in matrix is G.
            out_entries.push((*d, *s, kernel_op.clone()));
            if facts.in_ranges.is_some() {
                in_entries.push((*s, *d, kernel_op));
            }
        }

        let out = Overlay::from_entries(n, n, facts.out_ranges, out_entries);
        let in_ = facts
            .in_ranges
            .map(|ranges| Overlay::from_entries(n, n, ranges, in_entries));

        DeltaOverlay {
            out,
            in_,
            out_degrees,
            in_degrees,
            num_edges: num_edges as usize,
            n_ops,
        }
    }
}

impl<E> DeltaOverlay<E> {
    /// The kernel overlay for out-edge traversal (aligned to `Gᵀ`).
    pub fn out(&self) -> &Overlay<E> {
        &self.out
    }

    /// The kernel overlay for in-edge traversal (aligned to `G`), if the
    /// base built its in matrix.
    pub fn in_overlay(&self) -> Option<&Overlay<E>> {
        self.in_.as_ref()
    }

    /// Out-degrees of the edited graph, indexed by vertex.
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }

    /// In-degrees of the edited graph, indexed by vertex.
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degrees
    }

    /// Directed edge count of the edited graph.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of effective pending ops (after dropping absent-pair deletes).
    pub fn len(&self) -> usize {
        self.n_ops
    }

    /// `true` if the overlay changes nothing.
    pub fn is_empty(&self) -> bool {
        self.n_ops == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.out.bytes()
            + self.in_.as_ref().map_or(0, |o| o.bytes())
            + (self.out_degrees.len() + self.in_degrees.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_edges() -> Vec<(Index, Index, f32)> {
        vec![
            (0, 1, 1.0),
            (0, 2, 3.0),
            (1, 2, 1.0),
            (2, 3, 2.0),
            (3, 4, 2.0),
            (4, 0, 4.0),
        ]
    }

    fn ranges() -> Vec<RowRange> {
        vec![RowRange { start: 0, end: 3 }, RowRange { start: 3, end: 5 }]
    }

    fn facts<'a>(
        out_ranges: &'a [RowRange],
        in_ranges: Option<&'a [RowRange]>,
        out_deg: &'a [u32],
        in_deg: &'a [u32],
    ) -> BaseFacts<'a> {
        BaseFacts {
            num_vertices: 5,
            num_edges: 6,
            out_ranges,
            in_ranges,
            out_degrees: out_deg,
            in_degrees: in_deg,
        }
    }

    #[test]
    fn pair_index_counts_duplicates() {
        let mut edges = base_edges();
        edges.push((0, 1, 9.0));
        let idx = PairIndex::from_edges(&edges);
        assert_eq!(idx.count(0, 1), 2);
        assert_eq!(idx.count(1, 2), 1);
        assert_eq!(idx.count(3, 3), 0);
        assert_eq!(idx.len(), 7);
        assert!(!idx.is_empty());
    }

    #[test]
    fn degrees_and_edge_count_track_ops() {
        let edges = base_edges();
        let idx = PairIndex::from_edges(&edges);
        let out_deg = [2u32, 1, 1, 1, 1];
        let in_deg = [1u32, 1, 2, 1, 1];
        let r = ranges();
        let f = facts(&r, Some(&r), &out_deg, &in_deg);
        let resolved = vec![
            (0, 1, UpdateOp::Delete),      // existing: degrees drop
            (1, 2, UpdateOp::Insert(9.0)), // reweight: degrees unchanged
            (2, 0, UpdateOp::Insert(1.0)), // fresh insert: degrees grow
            (3, 3, UpdateOp::Delete),      // absent: dropped entirely
        ];
        let ov = DeltaOverlay::build(&f, &idx, &resolved);
        assert_eq!(ov.len(), 3);
        assert_eq!(ov.num_edges(), 6); // -1 +0 +1
        assert_eq!(ov.out_degrees(), &[1, 1, 2, 1, 1]);
        assert_eq!(ov.in_degrees(), &[2, 0, 2, 1, 1]);
        assert_eq!(ov.out().nnz(), 3);
        assert_eq!(ov.in_overlay().unwrap().nnz(), 3);
        assert!(!ov.is_empty());
        assert!(ov.bytes() > 0);
    }

    #[test]
    fn duplicate_base_copies_are_fully_masked() {
        let mut edges = base_edges();
        edges.push((0, 1, 9.0)); // (0,1) now stored twice
        let idx = PairIndex::from_edges(&edges);
        let out_deg = [3u32, 1, 1, 1, 1];
        let in_deg = [1u32, 2, 2, 1, 1];
        let r = ranges();
        let f = BaseFacts {
            num_edges: 7,
            ..facts(&r, None, &out_deg, &in_deg)
        };
        // Upsert collapses both copies to one; delete removes both.
        let ov = DeltaOverlay::build(&f, &idx, &[(0, 1, UpdateOp::Insert(5.0))]);
        assert_eq!(ov.num_edges(), 6);
        assert_eq!(ov.out_degrees()[0], 2);
        assert_eq!(ov.in_degrees()[1], 1);
        let ov = DeltaOverlay::build(&f, &idx, &[(0, 1, UpdateOp::<f32>::Delete)]);
        assert_eq!(ov.num_edges(), 5);
        assert_eq!(ov.out_degrees()[0], 1);
        assert_eq!(ov.in_degrees()[1], 0);
        assert!(ov.in_overlay().is_none());
    }

    #[test]
    fn empty_resolution_builds_empty_overlay() {
        let edges = base_edges();
        let idx = PairIndex::from_edges(&edges);
        let out_deg = [2u32, 1, 1, 1, 1];
        let in_deg = [1u32, 1, 2, 1, 1];
        let r = ranges();
        let f = facts(&r, Some(&r), &out_deg, &in_deg);
        let ov: DeltaOverlay<f32> = DeltaOverlay::build(&f, &idx, &[]);
        assert!(ov.is_empty());
        assert_eq!(ov.num_edges(), 6);
        assert_eq!(ov.out_degrees(), &out_deg);
    }
}
