//! Synthetic bipartite ratings generator (the Netflix stand-in).
//!
//! The paper's collaborative-filtering experiments use the Netflix Prize
//! dataset (480k users × 17.8k movies, 99M ratings) and a much larger
//! synthetic bipartite graph "similar in distribution to the real-world
//! Netflix challenge graph" generated as described in \[27\] (§5.1).
//!
//! This module provides that synthetic generator. Users and items get
//! popularity weights drawn from a power-law-ish distribution (a small number
//! of very popular items attract most ratings, as in Netflix); each rating is
//! an edge from a user vertex to an item vertex with a value in
//! `rating_range`. The resulting graph is bipartite by construction: vertices
//! `0..num_users` are users and `num_users..num_users+num_items` are items.

use crate::edgelist::EdgeList;
use crate::rng::StdRng;
use graphmat_sparse::Index;

/// Configuration for the bipartite ratings generator.
#[derive(Clone, Copy, Debug)]
pub struct BipartiteConfig {
    /// Number of user vertices.
    pub num_users: Index,
    /// Number of item vertices.
    pub num_items: Index,
    /// Total number of ratings (edges) to generate.
    pub num_ratings: usize,
    /// Inclusive rating value range, e.g. `(1.0, 5.0)` like Netflix stars.
    pub rating_range: (f32, f32),
    /// Popularity skew exponent; larger values concentrate ratings on fewer
    /// items (0 gives a uniform distribution).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BipartiteConfig {
    fn default() -> Self {
        BipartiteConfig {
            num_users: 10_000,
            num_items: 500,
            num_ratings: 200_000,
            rating_range: (1.0, 5.0),
            skew: 1.0,
            seed: 42,
        }
    }
}

impl BipartiteConfig {
    /// A laptop-scale Netflix-like workload.
    pub fn netflix_like(num_users: Index, num_items: Index, num_ratings: usize) -> Self {
        BipartiteConfig {
            num_users,
            num_items,
            num_ratings,
            ..Default::default()
        }
    }

    /// Total number of vertices (users + items).
    pub fn num_vertices(&self) -> Index {
        self.num_users + self.num_items
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The generated ratings graph together with the user/item split.
#[derive(Clone, Debug)]
pub struct RatingsGraph {
    /// Edges run from user vertices to item vertices; weights are ratings.
    pub edges: EdgeList,
    /// Number of user vertices (`0..num_users`).
    pub num_users: Index,
    /// Number of item vertices (`num_users..num_users + num_items`).
    pub num_items: Index,
}

impl RatingsGraph {
    /// `true` if vertex `v` is a user.
    pub fn is_user(&self, v: Index) -> bool {
        v < self.num_users
    }

    /// `true` if vertex `v` is an item.
    pub fn is_item(&self, v: Index) -> bool {
        v >= self.num_users && v < self.num_users + self.num_items
    }
}

/// Generate a synthetic bipartite ratings graph.
///
/// Duplicate (user, item) pairs are removed, so the returned edge count can
/// be slightly below `num_ratings` for dense configurations.
pub fn generate(config: &BipartiteConfig) -> RatingsGraph {
    assert!(config.num_users > 0 && config.num_items > 0);
    assert!(config.rating_range.0 <= config.rating_range.1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_vertices();

    // Zipf-like item popularity: weight(i) ∝ 1 / (i+1)^skew.
    let item_weights: Vec<f64> = (0..config.num_items)
        .map(|i| 1.0 / ((i as f64 + 1.0).powf(config.skew)))
        .collect();
    let cumulative: Vec<f64> = item_weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    // audit:allow(no-unwrap): non-empty — `num_items > 0` asserted above.
    let total = *cumulative.last().unwrap();

    let mut el = EdgeList::new(n);
    let (rlo, rhi) = config.rating_range;
    for _ in 0..config.num_ratings {
        let user: Index = rng.gen_range(0..config.num_users);
        // inverse-CDF sample of the item popularity distribution
        let target = rng.gen::<f64>() * total;
        let item_idx = cumulative.partition_point(|&c| c < target) as Index;
        let item = config.num_users + item_idx.min(config.num_items - 1);
        let rating = if (rhi - rlo).abs() < f32::EPSILON {
            rlo
        } else {
            (rng.gen_range(rlo..=rhi) * 2.0).round() / 2.0 // half-star granularity
        };
        el.push(user, item, rating);
    }
    el.dedup();
    RatingsGraph {
        edges: el,
        num_users: config.num_users,
        num_items: config.num_items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_bipartite_structure() {
        let cfg = BipartiteConfig {
            num_users: 100,
            num_items: 20,
            num_ratings: 1000,
            ..Default::default()
        };
        let g = generate(&cfg);
        assert_eq!(g.edges.num_vertices(), 120);
        for &(u, i, _) in g.edges.edges() {
            assert!(g.is_user(u), "source {u} must be a user");
            assert!(g.is_item(i), "target {i} must be an item");
        }
    }

    #[test]
    fn ratings_in_range() {
        let g = generate(&BipartiteConfig::default());
        assert!(g
            .edges
            .edges()
            .iter()
            .all(|&(_, _, r)| (1.0..=5.0).contains(&r)));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BipartiteConfig {
            num_users: 50,
            num_items: 10,
            num_ratings: 500,
            ..Default::default()
        };
        assert_eq!(generate(&cfg).edges, generate(&cfg).edges);
        assert_ne!(generate(&cfg).edges, generate(&cfg.with_seed(99)).edges);
    }

    #[test]
    fn no_duplicate_ratings() {
        let cfg = BipartiteConfig {
            num_users: 20,
            num_items: 5,
            num_ratings: 2000, // forces many collisions
            ..Default::default()
        };
        let g = generate(&cfg);
        let mut pairs: Vec<(u32, u32)> = g.edges.edges().iter().map(|&(u, i, _)| (u, i)).collect();
        let before = pairs.len();
        pairs.sort();
        pairs.dedup();
        assert_eq!(before, pairs.len());
        assert!(before <= 20 * 5);
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = BipartiteConfig {
            num_users: 2000,
            num_items: 200,
            num_ratings: 20_000,
            skew: 1.2,
            ..Default::default()
        };
        let g = generate(&cfg);
        let in_deg = g.edges.in_degrees();
        let item_degrees: Vec<usize> = (cfg.num_users..cfg.num_vertices())
            .map(|v| in_deg[v as usize])
            .collect();
        let max = *item_degrees.iter().max().unwrap();
        let avg = item_degrees.iter().sum::<usize>() as f64 / item_degrees.len() as f64;
        assert!(max as f64 > 3.0 * avg, "max {max} avg {avg}");
    }

    #[test]
    fn user_item_classification() {
        let g = generate(&BipartiteConfig {
            num_users: 10,
            num_items: 5,
            num_ratings: 20,
            ..Default::default()
        });
        assert!(g.is_user(0));
        assert!(g.is_user(9));
        assert!(!g.is_user(10));
        assert!(g.is_item(10));
        assert!(g.is_item(14));
        assert!(!g.is_item(15));
    }
}
