//! Named benchmark datasets (the Table 1 stand-ins).
//!
//! The paper's Table 1 lists five real-world datasets and four synthetic
//! ones. The real data cannot be bundled, so each entry here is a synthetic
//! stand-in generated to match the *structural property that matters for the
//! experiment it appears in*:
//!
//! | Paper dataset            | Stand-in here        | Preserved property |
//! |--------------------------|----------------------|--------------------|
//! | RMAT scale 20/23/24      | RMAT at reduced scale| power-law degrees, same A/B/C |
//! | LiveJournal / Facebook / Wikipedia | RMAT "powerlaw" graphs with distinct seeds | skewed social-graph structure |
//! | Netflix + synthetic CF   | bipartite generator  | bipartite, skewed item popularity |
//! | Flickr                   | RMAT with lower density | moderate-degree crawl graph |
//! | USA road (CAL)           | 2-D grid road network| high diameter, low degree |
//!
//! Every dataset is generated deterministically from a fixed seed, and the
//! default scales are chosen so the full Figure 4 suite runs in minutes on a
//! laptop. `DatasetScale::Paper` produces sizes closer to the paper's (only
//! use it on a machine with tens of GB of memory and patience).

use crate::bipartite::{self, BipartiteConfig, RatingsGraph};
use crate::edgelist::EdgeList;
use crate::grid::{self, GridConfig};
use crate::rmat::{self, RmatConfig};

/// How large the generated stand-ins should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetScale {
    /// Tiny graphs for unit/integration tests (runs in milliseconds).
    Tiny,
    /// Default laptop-friendly benchmark scale.
    Small,
    /// Larger graphs for more faithful benchmark shapes (tens of seconds).
    Medium,
    /// Sizes close to the paper's (requires a large-memory machine).
    Paper,
}

impl DatasetScale {
    /// RMAT scale (log2 vertices) used for the main synthetic graphs.
    fn rmat_scale(self) -> u32 {
        match self {
            DatasetScale::Tiny => 8,
            DatasetScale::Small => 14,
            DatasetScale::Medium => 17,
            DatasetScale::Paper => 23,
        }
    }

    /// RMAT scale for the triangle-counting graph (paper uses scale 20 vs 23).
    fn tc_scale(self) -> u32 {
        self.rmat_scale().saturating_sub(3).max(6)
    }

    /// Side length of the road-network grid.
    fn grid_side(self) -> u32 {
        match self {
            DatasetScale::Tiny => 24,
            DatasetScale::Small => 180,
            DatasetScale::Medium => 400,
            DatasetScale::Paper => 1400,
        }
    }

    /// (users, items, ratings) of the collaborative-filtering dataset.
    fn cf_size(self) -> (u32, u32, usize) {
        match self {
            DatasetScale::Tiny => (300, 40, 3_000),
            DatasetScale::Small => (12_000, 600, 250_000),
            DatasetScale::Medium => (60_000, 2_000, 2_000_000),
            DatasetScale::Paper => (480_189, 17_770, 99_072_112),
        }
    }
}

/// Identifier of a benchmark graph (mirrors the rows of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// RMAT with Graph500 PR/BFS/SSSP parameters — the paper's "RMAT Scale 23".
    RmatGraph500,
    /// RMAT with triangle-counting parameters — the paper's "RMAT Scale 20".
    RmatTriangle,
    /// RMAT with the A=0.5 parameters — the paper's "RMAT Scale 24" SSSP graph.
    RmatSssp,
    /// Power-law social-graph stand-in for LiveJournal.
    LiveJournalLike,
    /// Power-law social-graph stand-in for the Facebook interaction graph.
    FacebookLike,
    /// Power-law stand-in for the Wikipedia link graph.
    WikipediaLike,
    /// Moderate-density crawl-graph stand-in for Flickr.
    FlickrLike,
    /// High-diameter road network stand-in for USA-road (CAL).
    UsaRoadLike,
    /// Bipartite ratings stand-in for the Netflix Prize data.
    NetflixLike,
    /// Larger synthetic bipartite ratings graph (the paper's "Synthetic CF").
    SyntheticCf,
}

impl DatasetId {
    /// All datasets, in Table 1 order.
    pub fn all() -> &'static [DatasetId] {
        &[
            DatasetId::RmatTriangle,
            DatasetId::RmatGraph500,
            DatasetId::RmatSssp,
            DatasetId::LiveJournalLike,
            DatasetId::FacebookLike,
            DatasetId::WikipediaLike,
            DatasetId::NetflixLike,
            DatasetId::SyntheticCf,
            DatasetId::FlickrLike,
            DatasetId::UsaRoadLike,
        ]
    }

    /// Short name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::RmatGraph500 => "rmat-g500",
            DatasetId::RmatTriangle => "rmat-tc",
            DatasetId::RmatSssp => "rmat-sssp",
            DatasetId::LiveJournalLike => "livejournal-like",
            DatasetId::FacebookLike => "facebook-like",
            DatasetId::WikipediaLike => "wikipedia-like",
            DatasetId::FlickrLike => "flickr-like",
            DatasetId::UsaRoadLike => "usa-road-like",
            DatasetId::NetflixLike => "netflix-like",
            DatasetId::SyntheticCf => "synthetic-cf",
        }
    }

    /// The paper dataset this one stands in for.
    pub fn paper_dataset(&self) -> &'static str {
        match self {
            DatasetId::RmatGraph500 => "Synthetic Graph500 RMAT Scale 23",
            DatasetId::RmatTriangle => "Synthetic Graph500 RMAT Scale 20",
            DatasetId::RmatSssp => "Synthetic Graph500 RMAT Scale 24",
            DatasetId::LiveJournalLike => "LiveJournal follower graph",
            DatasetId::FacebookLike => "Facebook user interaction graph",
            DatasetId::WikipediaLike => "Wikipedia link graph",
            DatasetId::FlickrLike => "Flickr crawl",
            DatasetId::UsaRoadLike => "USA road (CAL) DIMACS9",
            DatasetId::NetflixLike => "Netflix Prize ratings",
            DatasetId::SyntheticCf => "Synthetic Collaborative Filtering",
        }
    }

    /// Which algorithms the paper runs on this dataset (Table 1 column).
    pub fn algorithms(&self) -> &'static str {
        match self {
            DatasetId::RmatGraph500 => "Pagerank, BFS, SSSP",
            DatasetId::RmatTriangle => "Tri Count",
            DatasetId::RmatSssp => "SSSP",
            DatasetId::LiveJournalLike | DatasetId::FacebookLike | DatasetId::WikipediaLike => {
                "Pagerank, BFS, Tri Count"
            }
            DatasetId::FlickrLike | DatasetId::UsaRoadLike => "SSSP",
            DatasetId::NetflixLike | DatasetId::SyntheticCf => "Collaborative Filtering",
        }
    }
}

/// Load (generate) a non-bipartite dataset at the given scale.
///
/// # Panics
/// Panics if called with one of the bipartite (CF) dataset ids; use
/// [`load_ratings`] for those.
pub fn load(id: DatasetId, scale: DatasetScale) -> EdgeList {
    let s = scale.rmat_scale();
    match id {
        DatasetId::RmatGraph500 => with_weights(
            rmat::generate(&RmatConfig::graph500(s).with_seed(101)),
            1,
            16,
        ),
        DatasetId::RmatTriangle => {
            rmat::generate(&RmatConfig::triangle_counting(scale.tc_scale()).with_seed(102))
        }
        DatasetId::RmatSssp => rmat::generate(&RmatConfig::sssp_extra(s).with_seed(103)),
        DatasetId::LiveJournalLike => with_weights(
            rmat::generate(&RmatConfig::graph500(s).with_seed(201).with_edge_factor(14)),
            1,
            16,
        ),
        DatasetId::FacebookLike => with_weights(
            rmat::generate(
                &RmatConfig::graph500(s.saturating_sub(1))
                    .with_seed(202)
                    .with_edge_factor(14),
            ),
            1,
            16,
        ),
        DatasetId::WikipediaLike => with_weights(
            rmat::generate(&RmatConfig::graph500(s).with_seed(203).with_edge_factor(12)),
            1,
            16,
        ),
        DatasetId::FlickrLike => with_weights(
            rmat::generate(
                &RmatConfig::graph500(s.saturating_sub(2))
                    .with_seed(204)
                    .with_edge_factor(12),
            ),
            1,
            64,
        ),
        DatasetId::UsaRoadLike => grid::generate(
            &GridConfig {
                removal_fraction: 0.08,
                num_shortcuts: 32,
                ..GridConfig::square(scale.grid_side())
            }
            .with_seed(205),
        ),
        DatasetId::NetflixLike | DatasetId::SyntheticCf => {
            // audit:allow(no-unwrap): documented panic — `load` is specified
            // to reject bipartite dataset ids.
            panic!("{id:?} is a bipartite ratings dataset; use load_ratings()")
        }
    }
}

/// Load (generate) one of the bipartite collaborative-filtering datasets.
///
/// # Panics
/// Panics if called with a non-bipartite dataset id.
pub fn load_ratings(id: DatasetId, scale: DatasetScale) -> RatingsGraph {
    let (users, items, ratings) = scale.cf_size();
    match id {
        DatasetId::NetflixLike => bipartite::generate(
            &BipartiteConfig::netflix_like(users, items, ratings).with_seed(301),
        ),
        DatasetId::SyntheticCf => bipartite::generate(
            &BipartiteConfig::netflix_like(users * 2, items * 2, ratings * 2).with_seed(302),
        ),
        // audit:allow(no-unwrap): documented panic (see `# Panics` above).
        _ => panic!("{id:?} is not a bipartite ratings dataset; use load()"),
    }
}

fn with_weights(mut el: EdgeList, lo: u32, hi: u32) -> EdgeList {
    // deterministic pseudo-random weights derived from the endpoints, so the
    // same dataset id always produces identical weights
    el.map_weights(|s, d, _| {
        let h = (s as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((d as u64).wrapping_mul(0xC2B2AE3D27D4EB4F));
        (lo + ((h >> 33) as u32 % (hi - lo + 1))) as f32
    });
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_non_bipartite_datasets_load_at_tiny_scale() {
        for &id in DatasetId::all() {
            if matches!(id, DatasetId::NetflixLike | DatasetId::SyntheticCf) {
                continue;
            }
            let el = load(id, DatasetScale::Tiny);
            assert!(el.num_edges() > 0, "{id:?} generated no edges");
            assert!(el.num_vertices() > 0);
        }
    }

    #[test]
    fn bipartite_datasets_load() {
        let netflix = load_ratings(DatasetId::NetflixLike, DatasetScale::Tiny);
        assert!(netflix.edges.num_edges() > 0);
        let synth = load_ratings(DatasetId::SyntheticCf, DatasetScale::Tiny);
        assert!(synth.edges.num_edges() > netflix.edges.num_edges() / 2);
    }

    #[test]
    #[should_panic]
    fn load_rejects_bipartite_ids() {
        let _ = load(DatasetId::NetflixLike, DatasetScale::Tiny);
    }

    #[test]
    #[should_panic]
    fn load_ratings_rejects_graph_ids() {
        let _ = load_ratings(DatasetId::RmatGraph500, DatasetScale::Tiny);
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = load(DatasetId::FacebookLike, DatasetScale::Tiny);
        let b = load(DatasetId::FacebookLike, DatasetScale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn scales_are_ordered() {
        let tiny = load(DatasetId::RmatGraph500, DatasetScale::Tiny);
        let small = load(DatasetId::RmatGraph500, DatasetScale::Small);
        assert!(small.num_vertices() > tiny.num_vertices());
        assert!(small.num_edges() > tiny.num_edges());
    }

    #[test]
    fn road_network_differs_structurally_from_social() {
        let road = load(DatasetId::UsaRoadLike, DatasetScale::Tiny).stats();
        let social = load(DatasetId::FacebookLike, DatasetScale::Tiny).stats();
        // road: bounded degree; social: heavy tail
        assert!(road.max_out_degree <= 8);
        assert!(social.max_out_degree > 20);
    }

    #[test]
    fn names_and_metadata_exist() {
        for &id in DatasetId::all() {
            assert!(!id.name().is_empty());
            assert!(!id.paper_dataset().is_empty());
            assert!(!id.algorithms().is_empty());
        }
    }

    #[test]
    fn weights_in_expected_range() {
        let el = load(DatasetId::RmatGraph500, DatasetScale::Tiny);
        assert!(el
            .edges()
            .iter()
            .all(|&(_, _, w)| (1.0..=16.0).contains(&w)));
    }
}
