//! In-memory edge lists and the paper's pre-processing passes.
//!
//! Every generator and reader in this crate produces an [`EdgeList`]; the
//! graph structures in `graphmat-core` and the baselines are built from one.
//! The pre-processing methods implement §5.1 of the paper:
//!
//! * self-loops are always removed;
//! * PageRank / SSSP work on the directed graph as-is;
//! * BFS symmetrizes the graph;
//! * Triangle Counting symmetrizes and then keeps only the upper triangle
//!   (making the graph a DAG);
//! * Collaborative Filtering requires a bipartite graph (users × items).

use graphmat_sparse::coo::Coo;
use graphmat_sparse::Index;

/// A weighted directed edge list with a fixed vertex count.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeList {
    num_vertices: Index,
    edges: Vec<(Index, Index, f32)>,
}

impl EdgeList {
    /// Create an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: Index) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Create an edge list from `(src, dst, weight)` tuples.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_tuples(num_vertices: Index, edges: Vec<(Index, Index, f32)>) -> Self {
        for &(s, d, _) in &edges {
            assert!(
                s < num_vertices && d < num_vertices,
                "edge ({s},{d}) out of range for {num_vertices} vertices"
            );
        }
        EdgeList {
            num_vertices,
            edges,
        }
    }

    /// Create an unweighted (weight 1.0) edge list from `(src, dst)` pairs.
    pub fn from_pairs(num_vertices: Index, pairs: impl IntoIterator<Item = (Index, Index)>) -> Self {
        let edges = pairs.into_iter().map(|(s, d)| (s, d, 1.0)).collect();
        Self::from_tuples(num_vertices, edges)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> Index {
        self.num_vertices
    }

    /// Number of edges currently stored.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` if there are no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Append an edge.
    pub fn push(&mut self, src: Index, dst: Index, weight: f32) {
        assert!(src < self.num_vertices && dst < self.num_vertices);
        self.edges.push((src, dst, weight));
    }

    /// The edges as `(src, dst, weight)` tuples.
    pub fn edges(&self) -> &[(Index, Index, f32)] {
        &self.edges
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.num_vertices as usize];
        for &(s, _, _) in &self.edges {
            d[s as usize] += 1;
        }
        d
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.num_vertices as usize];
        for &(_, t, _) in &self.edges {
            d[t as usize] += 1;
        }
        d
    }

    /// Remove self-loops (always done by the paper, §5.1).
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|&(s, d, _)| s != d);
    }

    /// Remove duplicate `(src, dst)` pairs, keeping the first weight.
    pub fn dedup(&mut self) {
        self.edges.sort_unstable_by_key(|&(s, d, _)| (s, d));
        self.edges.dedup_by_key(|&mut (s, d, _)| (s, d));
    }

    /// Return a symmetrized copy (both directions of every edge), as the
    /// paper does for BFS and as the first step of triangle counting.
    pub fn symmetrized(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        for &(s, d, w) in &self.edges {
            edges.push((s, d, w));
            if s != d {
                edges.push((d, s, w));
            }
        }
        let mut out = EdgeList {
            num_vertices: self.num_vertices,
            edges,
        };
        out.dedup();
        out
    }

    /// Return the DAG used for triangle counting: symmetrize, then keep only
    /// edges with `dst > src` (the strict upper triangle of the adjacency
    /// matrix).
    pub fn to_dag(&self) -> EdgeList {
        let sym = self.symmetrized();
        EdgeList {
            num_vertices: sym.num_vertices,
            edges: sym
                .edges
                .into_iter()
                .filter(|&(s, d, _)| d > s)
                .collect(),
        }
    }

    /// Replace every weight using `f(src, dst, weight)`.
    pub fn map_weights(&mut self, mut f: impl FnMut(Index, Index, f32) -> f32) {
        for (s, d, w) in &mut self.edges {
            *w = f(*s, *d, *w);
        }
    }

    /// Convert to a COO adjacency matrix `A` (row = src, col = dst).
    pub fn to_adjacency_coo(&self) -> Coo<f32> {
        let mut coo = Coo::with_capacity(self.num_vertices, self.num_vertices, self.edges.len());
        for &(s, d, w) in &self.edges {
            coo.push(s, d, w);
        }
        coo
    }

    /// Convert to the transposed adjacency matrix `Aᵀ` (row = dst, col = src),
    /// which is what the GraphMat SpMV over out-edges consumes.
    pub fn to_transpose_coo(&self) -> Coo<f32> {
        let mut coo = Coo::with_capacity(self.num_vertices, self.num_vertices, self.edges.len());
        for &(s, d, w) in &self.edges {
            coo.push(d, s, w);
        }
        coo
    }

    /// Basic structural statistics, used to print Table 1.
    pub fn stats(&self) -> EdgeListStats {
        let out = self.out_degrees();
        let max_out = out.iter().copied().max().unwrap_or(0);
        let isolated = out
            .iter()
            .zip(self.in_degrees())
            .filter(|&(o, i)| *o == 0 && i == 0)
            .count();
        EdgeListStats {
            num_vertices: self.num_vertices as usize,
            num_edges: self.edges.len(),
            max_out_degree: max_out,
            avg_degree: if self.num_vertices == 0 {
                0.0
            } else {
                self.edges.len() as f64 / self.num_vertices as f64
            },
            isolated_vertices: isolated,
        }
    }
}

/// Summary statistics of an [`EdgeList`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeListStats {
    /// Number of vertices (including isolated ones).
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Largest out-degree.
    pub max_out_degree: usize,
    /// Edges per vertex.
    pub avg_degree: f64,
    /// Vertices with neither in- nor out-edges.
    pub isolated_vertices: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::from_tuples(
            5,
            vec![
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 0, 3.0),
                (2, 2, 9.0), // self loop
                (0, 1, 4.0), // duplicate
                (3, 4, 5.0),
            ],
        )
    }

    #[test]
    fn counts() {
        let el = sample();
        assert_eq!(el.num_vertices(), 5);
        assert_eq!(el.num_edges(), 6);
        assert!(!el.is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        EdgeList::from_tuples(2, vec![(0, 5, 1.0)]);
    }

    #[test]
    fn degrees() {
        let el = sample();
        assert_eq!(el.out_degrees(), vec![2, 1, 2, 1, 0]);
        assert_eq!(el.in_degrees(), vec![1, 2, 2, 0, 1]);
    }

    #[test]
    fn remove_self_loops_and_dedup() {
        let mut el = sample();
        el.remove_self_loops();
        assert_eq!(el.num_edges(), 5);
        el.dedup();
        assert_eq!(el.num_edges(), 4);
        // kept the first weight for (0,1)
        assert!(el.edges().contains(&(0, 1, 1.0)));
        assert!(!el.edges().contains(&(0, 1, 4.0)));
    }

    #[test]
    fn symmetrized_has_both_directions() {
        let mut el = sample();
        el.remove_self_loops();
        el.dedup();
        let sym = el.symmetrized();
        assert!(sym.edges().iter().any(|&(s, d, _)| s == 1 && d == 0));
        assert!(sym.edges().iter().any(|&(s, d, _)| s == 0 && d == 1));
        assert_eq!(sym.num_edges(), 8);
    }

    #[test]
    fn dag_keeps_upper_triangle_only() {
        let el = sample();
        let dag = el.to_dag();
        assert!(dag.edges().iter().all(|&(s, d, _)| d > s));
        // undirected edges {0,1},{1,2},{0,2},{3,4} -> 4 DAG edges
        assert_eq!(dag.num_edges(), 4);
    }

    #[test]
    fn adjacency_and_transpose_are_consistent() {
        let el = sample();
        let a = el.to_adjacency_coo();
        let at = el.to_transpose_coo();
        assert_eq!(a.nnz(), at.nnz());
        for (r, c, v) in a.entries() {
            assert!(at.entries().contains(&(*c, *r, *v)));
        }
    }

    #[test]
    fn map_weights_rewrites() {
        let mut el = sample();
        el.map_weights(|s, d, _| (s + d) as f32);
        assert!(el.edges().iter().all(|&(s, d, w)| w == (s + d) as f32));
    }

    #[test]
    fn stats_are_consistent() {
        let el = sample();
        let st = el.stats();
        assert_eq!(st.num_vertices, 5);
        assert_eq!(st.num_edges, 6);
        assert_eq!(st.max_out_degree, 2);
        assert!((st.avg_degree - 1.2).abs() < 1e-9);
        assert_eq!(st.isolated_vertices, 0);
    }

    #[test]
    fn from_pairs_gives_unit_weights() {
        let el = EdgeList::from_pairs(3, vec![(0, 1), (1, 2)]);
        assert!(el.edges().iter().all(|&(_, _, w)| w == 1.0));
    }
}
