//! In-memory edge lists and the paper's pre-processing passes.
//!
//! Every generator and reader in this crate produces an [`EdgeList`]; the
//! graph structures in `graphmat-core` and the baselines are built from one.
//!
//! The edge list is **generic over the edge value type `E`**, mirroring the
//! original GraphMat C++ frontend which templatizes the edge type alongside
//! the three vertex-program types (paper §4.2 and appendix):
//!
//! * `EdgeList<f32>` (the default) is a conventionally weighted graph;
//! * `EdgeList<()>` is an *unweighted* graph whose edge values occupy zero
//!   bytes — DCSC matrices built from it store no value array at all, which
//!   removes 4 bytes/edge of memory traffic from the bandwidth-bound SpMV;
//! * any other `E` (integer weights, `u8` capacities, struct-valued edges)
//!   flows through the whole stack unchanged.
//!
//! The pre-processing methods implement §5.1 of the paper:
//!
//! * self-loops are always removed;
//! * PageRank / SSSP work on the directed graph as-is;
//! * BFS symmetrizes the graph;
//! * Triangle Counting symmetrizes and then keeps only the upper triangle
//!   (making the graph a DAG);
//! * Collaborative Filtering requires a bipartite graph (users × items).

use graphmat_sparse::coo::Coo;
use graphmat_sparse::Index;

/// Edge values that can be read as a scalar weight.
///
/// Algorithms that consume weights (SSSP's distance relaxation,
/// collaborative filtering's ratings) accept any `E: EdgeWeight` instead of
/// hardcoding `f32`. The `()` impl treats every edge as weight `1`, so
/// unweighted graphs run through weighted algorithms with hop-count
/// semantics.
pub trait EdgeWeight: Clone + Send + Sync {
    /// The scalar weight of this edge value.
    fn weight(&self) -> f32;
}

impl EdgeWeight for f32 {
    #[inline(always)]
    fn weight(&self) -> f32 {
        *self
    }
}

impl EdgeWeight for f64 {
    #[inline(always)]
    fn weight(&self) -> f32 {
        *self as f32
    }
}

impl EdgeWeight for u8 {
    #[inline(always)]
    fn weight(&self) -> f32 {
        *self as f32
    }
}

impl EdgeWeight for u16 {
    #[inline(always)]
    fn weight(&self) -> f32 {
        *self as f32
    }
}

impl EdgeWeight for u32 {
    #[inline(always)]
    fn weight(&self) -> f32 {
        *self as f32
    }
}

impl EdgeWeight for i32 {
    #[inline(always)]
    fn weight(&self) -> f32 {
        *self as f32
    }
}

impl EdgeWeight for () {
    /// An unweighted edge counts as one unit (hop).
    #[inline(always)]
    fn weight(&self) -> f32 {
        1.0
    }
}

/// A directed edge list with a fixed vertex count and edge values of type
/// `E` (`f32` weights by default; `()` for unweighted graphs).
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeList<E = f32> {
    num_vertices: Index,
    edges: Vec<(Index, Index, E)>,
}

impl<E> EdgeList<E> {
    /// Create an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: Index) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Create an edge list from `(src, dst, weight)` tuples.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_tuples(num_vertices: Index, edges: Vec<(Index, Index, E)>) -> Self {
        for &(s, d, _) in &edges {
            assert!(
                s < num_vertices && d < num_vertices,
                "edge ({s},{d}) out of range for {num_vertices} vertices"
            );
        }
        EdgeList {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> Index {
        self.num_vertices
    }

    /// Number of edges currently stored.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` if there are no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Append an edge with value `weight`.
    pub fn push(&mut self, src: Index, dst: Index, weight: E) {
        assert!(src < self.num_vertices && dst < self.num_vertices);
        self.edges.push((src, dst, weight));
    }

    /// The edges as `(src, dst, weight)` tuples.
    pub fn edges(&self) -> &[(Index, Index, E)] {
        &self.edges
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.num_vertices as usize];
        for &(s, _, _) in &self.edges {
            d[s as usize] += 1;
        }
        d
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.num_vertices as usize];
        for &(_, t, _) in &self.edges {
            d[t as usize] += 1;
        }
        d
    }

    /// Remove self-loops (always done by the paper, §5.1).
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|&(s, d, _)| s != d);
    }

    /// Remove duplicate `(src, dst)` pairs, keeping the first weight.
    pub fn dedup(&mut self) {
        self.edges.sort_by_key(|&(s, d, _)| (s, d));
        self.edges.dedup_by_key(|&mut (s, d, _)| (s, d));
    }

    /// Replace every edge value using `f(src, dst, &weight)`.
    pub fn map_weights(&mut self, mut f: impl FnMut(Index, Index, &E) -> E) {
        for (s, d, w) in &mut self.edges {
            *w = f(*s, *d, w);
        }
    }

    /// Convert to a new edge list with edge values of a different type,
    /// produced by `f(src, dst, &weight)`. This is how a weighted graph is
    /// re-typed (e.g. `f32` → `u32` integer weights) without rebuilding it.
    pub fn map_values<E2>(&self, mut f: impl FnMut(Index, Index, &E) -> E2) -> EdgeList<E2> {
        EdgeList {
            num_vertices: self.num_vertices,
            edges: self
                .edges
                .iter()
                .map(|(s, d, w)| (*s, *d, f(*s, *d, w)))
                .collect(),
        }
    }

    /// The unweighted view of this graph: same vertices and edges, `()`
    /// values. Graphs built from the result store **no edge value bytes** in
    /// their DCSC matrices — the zero-cost fast path for BFS, connected
    /// components, degree and triangle counting.
    pub fn topology(&self) -> EdgeList<()> {
        EdgeList {
            num_vertices: self.num_vertices,
            edges: self.edges.iter().map(|&(s, d, _)| (s, d, ())).collect(),
        }
    }

    /// Basic structural statistics, used to print Table 1.
    pub fn stats(&self) -> EdgeListStats {
        let out = self.out_degrees();
        let max_out = out.iter().copied().max().unwrap_or(0);
        let isolated = out
            .iter()
            .zip(self.in_degrees())
            .filter(|&(o, i)| *o == 0 && i == 0)
            .count();
        EdgeListStats {
            num_vertices: self.num_vertices as usize,
            num_edges: self.edges.len(),
            max_out_degree: max_out,
            avg_degree: if self.num_vertices == 0 {
                0.0
            } else {
                self.edges.len() as f64 / self.num_vertices as f64
            },
            isolated_vertices: isolated,
        }
    }
}

impl<E: Clone> EdgeList<E> {
    /// Return a symmetrized copy (both directions of every edge, each keeping
    /// the original edge value), as the paper does for BFS and as the first
    /// step of triangle counting.
    pub fn symmetrized(&self) -> EdgeList<E> {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        for (s, d, w) in &self.edges {
            edges.push((*s, *d, w.clone()));
            if s != d {
                edges.push((*d, *s, w.clone()));
            }
        }
        let mut out = EdgeList {
            num_vertices: self.num_vertices,
            edges,
        };
        out.dedup();
        out
    }

    /// Return the DAG used for triangle counting: symmetrize, then keep only
    /// edges with `dst > src` (the strict upper triangle of the adjacency
    /// matrix). Edge values ride along unchanged.
    pub fn to_dag(&self) -> EdgeList<E> {
        let sym = self.symmetrized();
        EdgeList {
            num_vertices: sym.num_vertices,
            edges: sym.edges.into_iter().filter(|&(s, d, _)| d > s).collect(),
        }
    }

    /// Convert to a COO adjacency matrix `A` (row = src, col = dst).
    pub fn to_adjacency_coo(&self) -> Coo<E> {
        let mut coo = Coo::with_capacity(self.num_vertices, self.num_vertices, self.edges.len());
        for (s, d, w) in &self.edges {
            coo.push(*s, *d, w.clone());
        }
        coo
    }

    /// Convert to the transposed adjacency matrix `Aᵀ` (row = dst, col = src),
    /// which is what the GraphMat SpMV over out-edges consumes.
    pub fn to_transpose_coo(&self) -> Coo<E> {
        let mut coo = Coo::with_capacity(self.num_vertices, self.num_vertices, self.edges.len());
        for (s, d, w) in &self.edges {
            coo.push(*d, *s, w.clone());
        }
        coo
    }
}

impl EdgeList<()> {
    /// Create an unweighted edge list from `(src, dst)` pairs.
    ///
    /// The result is `EdgeList<()>`: edge values occupy zero bytes end to
    /// end, so the DCSC matrices of graphs built from it carry no value
    /// array. Use [`EdgeList::map_values`] (or build with
    /// [`EdgeList::from_tuples`]) when actual weights are needed.
    pub fn from_pairs(
        num_vertices: Index,
        pairs: impl IntoIterator<Item = (Index, Index)>,
    ) -> Self {
        let edges = pairs.into_iter().map(|(s, d)| (s, d, ())).collect();
        Self::from_tuples(num_vertices, edges)
    }

    /// Attach weights to an unweighted graph, producing `EdgeList<E>` with
    /// `f(src, dst)` as each edge's value.
    pub fn with_weights<E>(&self, mut f: impl FnMut(Index, Index) -> E) -> EdgeList<E> {
        self.map_values(|s, d, _| f(s, d))
    }
}

/// Summary statistics of an [`EdgeList`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeListStats {
    /// Number of vertices (including isolated ones).
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Largest out-degree.
    pub max_out_degree: usize,
    /// Edges per vertex.
    pub avg_degree: f64,
    /// Vertices with neither in- nor out-edges.
    pub isolated_vertices: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::from_tuples(
            5,
            vec![
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 0, 3.0),
                (2, 2, 9.0), // self loop
                (0, 1, 4.0), // duplicate
                (3, 4, 5.0),
            ],
        )
    }

    #[test]
    fn counts() {
        let el = sample();
        assert_eq!(el.num_vertices(), 5);
        assert_eq!(el.num_edges(), 6);
        assert!(!el.is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        EdgeList::from_tuples(2, vec![(0, 5, 1.0)]);
    }

    #[test]
    fn degrees() {
        let el = sample();
        assert_eq!(el.out_degrees(), vec![2, 1, 2, 1, 0]);
        assert_eq!(el.in_degrees(), vec![1, 2, 2, 0, 1]);
    }

    #[test]
    fn remove_self_loops_and_dedup() {
        let mut el = sample();
        el.remove_self_loops();
        assert_eq!(el.num_edges(), 5);
        el.dedup();
        assert_eq!(el.num_edges(), 4);
        // kept the first weight for (0,1)
        assert!(el.edges().contains(&(0, 1, 1.0)));
        assert!(!el.edges().contains(&(0, 1, 4.0)));
    }

    #[test]
    fn symmetrized_has_both_directions() {
        let mut el = sample();
        el.remove_self_loops();
        el.dedup();
        let sym = el.symmetrized();
        assert!(sym.edges().iter().any(|&(s, d, _)| s == 1 && d == 0));
        assert!(sym.edges().iter().any(|&(s, d, _)| s == 0 && d == 1));
        assert_eq!(sym.num_edges(), 8);
    }

    #[test]
    fn symmetrized_preserves_generic_edge_values() {
        // integer-weighted graph: the reverse edge carries the same value
        let el: EdgeList<u32> = EdgeList::from_tuples(3, vec![(0, 1, 7), (1, 2, 9)]);
        let sym = el.symmetrized();
        assert!(sym.edges().contains(&(1, 0, 7)));
        assert!(sym.edges().contains(&(2, 1, 9)));
        // and unweighted graphs symmetrize too
        let unweighted = EdgeList::from_pairs(3, vec![(0, 1)]);
        assert_eq!(unweighted.symmetrized().num_edges(), 2);
    }

    #[test]
    fn dag_keeps_upper_triangle_only() {
        let el = sample();
        let dag = el.to_dag();
        assert!(dag.edges().iter().all(|&(s, d, _)| d > s));
        // undirected edges {0,1},{1,2},{0,2},{3,4} -> 4 DAG edges
        assert_eq!(dag.num_edges(), 4);
    }

    #[test]
    fn dag_preserves_generic_edge_values() {
        let el: EdgeList<u32> = EdgeList::from_tuples(3, vec![(1, 0, 5)]);
        let dag = el.to_dag();
        assert_eq!(dag.edges(), &[(0, 1, 5)]);
    }

    #[test]
    fn adjacency_and_transpose_are_consistent() {
        let el = sample();
        let a = el.to_adjacency_coo();
        let at = el.to_transpose_coo();
        assert_eq!(a.nnz(), at.nnz());
        for (r, c, v) in a.entries() {
            assert!(at.entries().contains(&(*c, *r, *v)));
        }
    }

    #[test]
    fn map_weights_rewrites() {
        let mut el = sample();
        el.map_weights(|s, d, _| (s + d) as f32);
        assert!(el.edges().iter().all(|&(s, d, w)| w == (s + d) as f32));
    }

    #[test]
    fn map_values_changes_edge_type() {
        let el = sample();
        let ints: EdgeList<u32> = el.map_values(|_, _, w| *w as u32);
        assert_eq!(ints.num_edges(), el.num_edges());
        assert!(ints.edges().contains(&(3, 4, 5)));
    }

    #[test]
    fn topology_drops_weights() {
        let el = sample();
        let topo = el.topology();
        assert_eq!(topo.num_edges(), el.num_edges());
        assert_eq!(topo.num_vertices(), el.num_vertices());
        assert!(topo.edges().contains(&(3, 4, ())));
    }

    #[test]
    fn with_weights_reattaches() {
        let topo = EdgeList::from_pairs(3, vec![(0, 1), (1, 2)]);
        let weighted: EdgeList<f32> = topo.with_weights(|s, d| (s + d) as f32);
        assert!(weighted.edges().contains(&(1, 2, 3.0)));
    }

    #[test]
    fn stats_are_consistent() {
        let el = sample();
        let st = el.stats();
        assert_eq!(st.num_vertices, 5);
        assert_eq!(st.num_edges, 6);
        assert_eq!(st.max_out_degree, 2);
        assert!((st.avg_degree - 1.2).abs() < 1e-9);
        assert_eq!(st.isolated_vertices, 0);
    }

    #[test]
    fn from_pairs_is_unweighted() {
        let el = EdgeList::from_pairs(3, vec![(0, 1), (1, 2)]);
        assert_eq!(el.num_edges(), 2);
        assert_eq!(std::mem::size_of_val(&el.edges()[0]), 8); // two u32 ids, zero value bytes
    }

    #[test]
    fn edge_weight_trait_reads_scalars() {
        assert_eq!(2.5f32.weight(), 2.5);
        assert_eq!(3u32.weight(), 3.0);
        assert_eq!(7u8.weight(), 7.0);
        assert_eq!((-2i32).weight(), -2.0);
        assert_eq!(().weight(), 1.0);
    }
}
