//! 2-D grid "road network" generator.
//!
//! The paper's SSSP evaluation includes the USA-road (California/Nevada)
//! graph and notes that such high-diameter graphs take many iterations each
//! doing little work, which is where GraphMat's low per-iteration overhead
//! shines (§5.2.1). The DIMACS road data is not bundled here, so this module
//! generates a structurally similar stand-in: a `width × height` 4-connected
//! grid with random positive edge weights, optionally with a fraction of
//! edges removed to create detours (making shortest-path trees less trivial)
//! and a few long-range "highway" shortcuts.

use crate::edgelist::EdgeList;
use crate::rng::StdRng;
use graphmat_sparse::Index;

/// Configuration for the grid road-network generator.
#[derive(Clone, Copy, Debug)]
pub struct GridConfig {
    /// Number of columns of the grid.
    pub width: u32,
    /// Number of rows of the grid.
    pub height: u32,
    /// Inclusive edge-weight range (e.g. road segment lengths).
    pub weight_range: (u32, u32),
    /// Fraction of grid edges randomly removed (0.0 keeps the full grid).
    pub removal_fraction: f64,
    /// Number of random long-range shortcut edges to add ("highways").
    pub num_shortcuts: usize,
    /// If `true`, every edge is added in both directions (road networks are
    /// usually symmetric).
    pub bidirectional: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            width: 128,
            height: 128,
            weight_range: (1, 100),
            removal_fraction: 0.05,
            num_shortcuts: 0,
            bidirectional: true,
            seed: 42,
        }
    }
}

impl GridConfig {
    /// A square grid of the given side length.
    pub fn square(side: u32) -> Self {
        GridConfig {
            width: side,
            height: side,
            ..Default::default()
        }
    }

    /// Total number of vertices.
    pub fn num_vertices(&self) -> Index {
        self.width * self.height
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Vertex id of grid cell `(x, y)`.
    pub fn vertex(&self, x: u32, y: u32) -> Index {
        y * self.width + x
    }
}

/// Generate a grid road network.
pub fn generate(config: &GridConfig) -> EdgeList {
    assert!(config.width >= 2 && config.height >= 2, "grid too small");
    assert!((0.0..1.0).contains(&config.removal_fraction));
    let (wlo, whi) = config.weight_range;
    assert!(wlo >= 1 && wlo <= whi);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_vertices();
    let mut el = EdgeList::new(n);

    let push_edge = |el: &mut EdgeList, rng: &mut StdRng, a: Index, b: Index| {
        let w = if wlo == whi {
            wlo as f32
        } else {
            rng.gen_range(wlo..=whi) as f32
        };
        el.push(a, b, w);
        if config.bidirectional {
            el.push(b, a, w);
        }
    };

    for y in 0..config.height {
        for x in 0..config.width {
            let v = config.vertex(x, y);
            // right neighbour
            if x + 1 < config.width && rng.gen::<f64>() >= config.removal_fraction {
                push_edge(&mut el, &mut rng, v, config.vertex(x + 1, y));
            }
            // down neighbour
            if y + 1 < config.height && rng.gen::<f64>() >= config.removal_fraction {
                push_edge(&mut el, &mut rng, v, config.vertex(x, y + 1));
            }
        }
    }

    for _ in 0..config.num_shortcuts {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            push_edge(&mut el, &mut rng, a, b);
        }
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_edge_count() {
        let cfg = GridConfig {
            width: 10,
            height: 8,
            removal_fraction: 0.0,
            num_shortcuts: 0,
            bidirectional: false,
            ..Default::default()
        };
        let el = generate(&cfg);
        // horizontal: (10-1)*8, vertical: 10*(8-1)
        assert_eq!(el.num_edges(), 9 * 8 + 10 * 7);
        assert_eq!(el.num_vertices(), 80);
    }

    #[test]
    fn bidirectional_doubles_edges() {
        let uni = generate(&GridConfig {
            width: 6,
            height: 6,
            removal_fraction: 0.0,
            bidirectional: false,
            ..Default::default()
        });
        let bi = generate(&GridConfig {
            width: 6,
            height: 6,
            removal_fraction: 0.0,
            bidirectional: true,
            ..Default::default()
        });
        assert_eq!(bi.num_edges(), uni.num_edges() * 2);
    }

    #[test]
    fn removal_reduces_edges() {
        let full = generate(&GridConfig {
            removal_fraction: 0.0,
            ..GridConfig::square(32)
        });
        let sparse = generate(&GridConfig {
            removal_fraction: 0.3,
            ..GridConfig::square(32)
        });
        assert!(sparse.num_edges() < full.num_edges());
    }

    #[test]
    fn weights_in_range() {
        let el = generate(&GridConfig::square(16));
        assert!(el
            .edges()
            .iter()
            .all(|&(_, _, w)| (1.0..=100.0).contains(&w)));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GridConfig::square(12).with_seed(5);
        assert_eq!(generate(&cfg), generate(&cfg));
        assert_ne!(
            generate(&cfg),
            generate(&GridConfig::square(12).with_seed(6))
        );
    }

    #[test]
    fn shortcuts_are_added() {
        let base = generate(&GridConfig {
            num_shortcuts: 0,
            removal_fraction: 0.0,
            ..GridConfig::square(16)
        });
        let with = generate(&GridConfig {
            num_shortcuts: 50,
            removal_fraction: 0.0,
            ..GridConfig::square(16)
        });
        assert!(with.num_edges() > base.num_edges());
    }

    #[test]
    fn vertex_numbering_is_row_major() {
        let cfg = GridConfig::square(8);
        assert_eq!(cfg.vertex(0, 0), 0);
        assert_eq!(cfg.vertex(7, 0), 7);
        assert_eq!(cfg.vertex(0, 1), 8);
        assert_eq!(cfg.vertex(7, 7), 63);
    }

    #[test]
    fn grid_has_high_diameter() {
        // A grid's (unweighted) diameter ≈ width + height, far larger than an
        // RMAT graph of similar size — this is exactly why the paper includes
        // road networks for SSSP.
        let cfg = GridConfig {
            removal_fraction: 0.0,
            ..GridConfig::square(32)
        };
        let el = generate(&cfg);
        // BFS from corner 0 to estimate eccentricity
        let n = el.num_vertices() as usize;
        let mut adj = vec![Vec::new(); n];
        for &(s, d, _) in el.edges() {
            adj[s as usize].push(d as usize);
        }
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[0] = 0;
        queue.push_back(0usize);
        let mut max_d = 0;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    max_d = max_d.max(dist[v]);
                    queue.push_back(v);
                }
            }
        }
        assert!(max_d >= 62, "expected diameter ≈ 62, got {max_d}");
    }
}
