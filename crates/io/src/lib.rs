//! Graph data: generators, file IO and pre-processing.
//!
//! The paper evaluates on a mix of real-world graphs (LiveJournal, Facebook,
//! Wikipedia, Netflix, Flickr, USA-road) and synthetic graphs (Graph500 RMAT,
//! a synthetic bipartite ratings generator). The real datasets are not
//! redistributable here, so this crate provides:
//!
//! * [`rmat`] — the Graph500 RMAT generator the paper uses for its synthetic
//!   graphs (§5.1), with the exact parameter sets the paper lists.
//! * [`bipartite`] — the synthetic bipartite ratings generator standing in
//!   for the Netflix collaborative-filtering dataset.
//! * [`grid`] — a 2-D grid road-network generator standing in for the
//!   USA-road / long-diameter graphs on which per-iteration overhead matters.
//! * [`uniform`] — an Erdős–Rényi generator for unskewed control workloads.
//! * [`mtx`] — MatrixMarket coordinate-format reader/writer (the format the
//!   original GraphMat's `ReadMTX` consumed).
//! * [`edgelist`] — the in-memory edge-list container (generic over the edge
//!   value type `E`, with `EdgeList<()>` as the zero-cost unweighted case)
//!   plus the pre-processing passes of §5.1 (self-loop removal,
//!   deduplication, symmetrization, upper-triangle DAG extraction).
//! * [`datasets`] — a registry of named benchmark datasets mirroring Table 1
//!   at laptop-friendly scales.
//! * [`rng`] — the deterministic SplitMix64 generator backing every
//!   generator above.
//!
//! # Feeding the session frontend
//!
//! An [`EdgeList`] is the input to topology construction in `graphmat-core`
//! (`session.build_graph(&edges).finish()` → `Arc<Topology<E>>`). The
//! session-side builders deliberately do **no** graph preprocessing, so the
//! passes in [`edgelist`] are where an edge list gets shaped before the
//! matrix is built once and shared:
//!
//! * undirected algorithms (BFS, connected components) →
//!   [`EdgeList::symmetrized`];
//! * triangle counting → [`EdgeList::to_dag`] (symmetrize + strict upper
//!   triangle);
//! * structure-only algorithms → [`EdgeList::topology`] /
//!   [`EdgeList::from_pairs`] for the zero-byte-per-edge unweighted case.

pub mod bipartite;
pub mod datasets;
pub mod edgelist;
pub mod grid;
pub mod mtx;
pub mod rmat;
pub mod rng;
pub mod uniform;

pub use edgelist::{EdgeList, EdgeWeight};
