//! MatrixMarket coordinate-format reader and writer.
//!
//! The original GraphMat loaded graphs with `Graph::ReadMTX` (see the paper's
//! appendix listing). This module implements the subset of the MatrixMarket
//! exchange format that graph datasets use: the `matrix coordinate`
//! object/format with `real`, `integer` or `pattern` fields and `general` or
//! `symmetric` symmetry. Vertex ids in the file are 1-based, as the format
//! specifies, and are converted to 0-based ids in the [`EdgeList`].

use crate::edgelist::EdgeList;
use graphmat_sparse::Index;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced by the MatrixMarket reader.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The file violates the MatrixMarket format; the string describes how.
    Parse(String),
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "I/O error reading MatrixMarket data: {e}"),
            MtxError::Parse(msg) => write!(f, "invalid MatrixMarket data: {msg}"),
        }
    }
}

impl std::error::Error for MtxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MtxError::Io(e) => Some(e),
            MtxError::Parse(_) => None,
        }
    }
}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MtxError {
    MtxError::Parse(msg.into())
}

/// Read a MatrixMarket graph from any reader.
///
/// Rectangular matrices are supported (useful for bipartite ratings
/// matrices): the resulting edge list has `max(nrows, ncols)` vertices, and
/// for rectangular inputs the column ids are shifted by `nrows` so that rows
/// and columns occupy disjoint vertex ranges.
pub fn read<R: Read>(reader: R) -> Result<EdgeList, MtxError> {
    let mut lines = BufReader::new(reader).lines();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty file"))??;
    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || !tokens[0].starts_with("%%matrixmarket") {
        return Err(parse_err(format!("bad header line: {header}")));
    }
    if tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(parse_err("only 'matrix coordinate' files are supported"));
    }
    let field = tokens[3];
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported field type: {field}")));
    }
    let symmetry = tokens[4];
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(parse_err(format!("unsupported symmetry: {symmetry}")));
    }
    let pattern = field == "pattern";
    let symmetric = symmetry == "symmetric";

    // Skip comments, read size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(parse_err(format!("bad size line: {size_line}")));
    }
    let nrows: u64 = dims[0].parse().map_err(|_| parse_err("bad row count"))?;
    let ncols: u64 = dims[1].parse().map_err(|_| parse_err("bad column count"))?;
    let nnz: usize = dims[2].parse().map_err(|_| parse_err("bad nnz count"))?;

    let rectangular = nrows != ncols;
    let num_vertices: u64 = if rectangular { nrows + ncols } else { nrows };
    if num_vertices > u32::MAX as u64 {
        return Err(parse_err("matrix too large for 32-bit vertex ids"));
    }

    let mut el = EdgeList::new(num_vertices as Index);
    let mut count = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: u64 = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let c: u64 = it
            .next()
            .ok_or_else(|| parse_err("missing column index"))?
            .parse()
            .map_err(|_| parse_err("bad column index"))?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(parse_err(format!("entry ({r},{c}) out of bounds")));
        }
        let value: f32 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?
        };
        let src = (r - 1) as Index;
        let dst = if rectangular {
            (nrows + c - 1) as Index
        } else {
            (c - 1) as Index
        };
        el.push(src, dst, value);
        if symmetric && src != dst {
            el.push(dst, src, value);
        }
        count += 1;
    }
    if count != nnz {
        return Err(parse_err(format!(
            "size line promised {nnz} entries but file contains {count}"
        )));
    }
    Ok(el)
}

/// Read a MatrixMarket file from disk.
pub fn read_file(path: impl AsRef<Path>) -> Result<EdgeList, MtxError> {
    read(std::fs::File::open(path)?)
}

/// Write an edge list as a `general real` MatrixMarket coordinate file.
pub fn write<W: Write>(el: &EdgeList, mut writer: W) -> Result<(), MtxError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by graphmat-io")?;
    writeln!(
        writer,
        "{} {} {}",
        el.num_vertices(),
        el.num_vertices(),
        el.num_edges()
    )?;
    for &(s, d, w) in el.edges() {
        writeln!(writer, "{} {} {}", s + 1, d + 1, w)?;
    }
    Ok(())
}

/// Write an edge list to a file on disk.
pub fn write_file(el: &EdgeList, path: impl AsRef<Path>) -> Result<(), MtxError> {
    write(el, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_general_real() {
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 3\n\
                    1 2 1.5\n\
                    2 3 2.5\n\
                    3 1 3.5\n";
        let el = read(data.as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.num_edges(), 3);
        assert!(el.edges().contains(&(0, 1, 1.5)));
        assert!(el.edges().contains(&(2, 0, 3.5)));
    }

    #[test]
    fn reads_pattern_symmetric() {
        let data = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    4 4 2\n\
                    2 1\n\
                    4 3\n";
        let el = read(data.as_bytes()).unwrap();
        // each symmetric entry expands to two directed edges with weight 1
        assert_eq!(el.num_edges(), 4);
        assert!(el.edges().contains(&(1, 0, 1.0)));
        assert!(el.edges().contains(&(0, 1, 1.0)));
    }

    #[test]
    fn reads_rectangular_as_bipartite() {
        let data = "%%MatrixMarket matrix coordinate integer general\n\
                    2 3 2\n\
                    1 1 5\n\
                    2 3 4\n";
        let el = read(data.as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 5); // 2 rows + 3 cols
        assert!(el.edges().contains(&(0, 2, 5.0)));
        assert!(el.edges().contains(&(1, 4, 4.0)));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read("not a matrix\n1 1 0\n".as_bytes()).is_err());
        assert!(read("%%MatrixMarket matrix array real general\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 3\n\
                    1 2 1.0\n";
        assert!(matches!(read(data.as_bytes()), Err(MtxError::Parse(_))));
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 1\n\
                    3 1 1.0\n";
        assert!(read(data.as_bytes()).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let el = EdgeList::from_tuples(4, vec![(0, 1, 1.0), (2, 3, 2.0), (3, 0, 0.5)]);
        let mut buf = Vec::new();
        write(&el, &mut buf).unwrap();
        let back = read(buf.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), 4);
        let mut a: Vec<_> = el.edges().to_vec();
        let mut b: Vec<_> = back.edges().to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("graphmat_mtx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mtx");
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 2.0)]);
        write_file(&el, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let err = read("".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("MatrixMarket"));
    }
}
