//! MatrixMarket coordinate-format reader and writer.
//!
//! The original GraphMat loaded graphs with `Graph::ReadMTX` (see the paper's
//! appendix listing). This module implements the subset of the MatrixMarket
//! exchange format that graph datasets use: the `matrix coordinate`
//! object/format with `real`, `integer` or `pattern` fields and `general` or
//! `symmetric` symmetry. Vertex ids in the file are 1-based, as the format
//! specifies, and are converted to 0-based ids in the [`EdgeList`].

use crate::edgelist::EdgeList;
use graphmat_sparse::Index;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Edge value types that can round-trip through a MatrixMarket file.
///
/// `f32` is the conventional choice; `()` maps to the `pattern` field type
/// (structure only, no stored values); integers map to `integer`.
pub trait MtxValue: Sized {
    /// The MatrixMarket field type [`write()`] emits for this edge type
    /// (`real`, `integer` or `pattern`).
    const FIELD: &'static str = "real";
    /// `true` for value-less (`pattern`) edge types such as `()`.
    const PATTERN: bool = false;
    /// Build an edge value from a parsed scalar (`1.0` for pattern files).
    fn from_f64(value: f64) -> Self;
    /// The scalar written to the file for this edge value.
    fn to_f64(&self) -> f64;
}

impl MtxValue for f32 {
    fn from_f64(value: f64) -> Self {
        value as f32
    }

    fn to_f64(&self) -> f64 {
        *self as f64
    }
}

impl MtxValue for f64 {
    fn from_f64(value: f64) -> Self {
        value
    }

    fn to_f64(&self) -> f64 {
        *self
    }
}

impl MtxValue for u32 {
    const FIELD: &'static str = "integer";

    fn from_f64(value: f64) -> Self {
        value as u32
    }

    fn to_f64(&self) -> f64 {
        *self as f64
    }
}

impl MtxValue for i32 {
    const FIELD: &'static str = "integer";

    fn from_f64(value: f64) -> Self {
        value as i32
    }

    fn to_f64(&self) -> f64 {
        *self as f64
    }
}

impl MtxValue for () {
    const FIELD: &'static str = "pattern";
    const PATTERN: bool = true;

    fn from_f64(_value: f64) -> Self {}

    fn to_f64(&self) -> f64 {
        1.0
    }
}

/// Errors produced by the MatrixMarket reader.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The file violates the MatrixMarket format; the string describes how.
    Parse(String),
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "I/O error reading MatrixMarket data: {e}"),
            MtxError::Parse(msg) => write!(f, "invalid MatrixMarket data: {msg}"),
        }
    }
}

impl std::error::Error for MtxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MtxError::Io(e) => Some(e),
            MtxError::Parse(_) => None,
        }
    }
}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MtxError {
    MtxError::Parse(msg.into())
}

/// Read a MatrixMarket graph with `f32` edge weights (the common case).
///
/// See [`read_typed`] for other edge value types, including the unweighted
/// `EdgeList<()>`.
pub fn read<R: Read>(reader: R) -> Result<EdgeList, MtxError> {
    read_typed(reader)
}

/// Read a MatrixMarket graph from any reader into an `EdgeList<E>`.
///
/// Rectangular matrices are supported (useful for bipartite ratings
/// matrices): the resulting edge list has `max(nrows, ncols)` vertices, and
/// for rectangular inputs the column ids are shifted by `nrows` so that rows
/// and columns occupy disjoint vertex ranges.
pub fn read_typed<E: MtxValue, R: Read>(reader: R) -> Result<EdgeList<E>, MtxError> {
    let mut lines = BufReader::new(reader).lines();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let header_lc = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || !tokens[0].starts_with("%%matrixmarket") {
        return Err(parse_err(format!("bad header line: {header}")));
    }
    if tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(parse_err("only 'matrix coordinate' files are supported"));
    }
    let field = tokens[3];
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported field type: {field}")));
    }
    let symmetry = tokens[4];
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(parse_err(format!("unsupported symmetry: {symmetry}")));
    }
    let pattern = field == "pattern";
    let symmetric = symmetry == "symmetric";

    // Skip comments, read size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(parse_err(format!("bad size line: {size_line}")));
    }
    let nrows: u64 = dims[0].parse().map_err(|_| parse_err("bad row count"))?;
    let ncols: u64 = dims[1].parse().map_err(|_| parse_err("bad column count"))?;
    let nnz: usize = dims[2].parse().map_err(|_| parse_err("bad nnz count"))?;

    let rectangular = nrows != ncols;
    let num_vertices: u64 = if rectangular { nrows + ncols } else { nrows };
    if num_vertices > u32::MAX as u64 {
        return Err(parse_err("matrix too large for 32-bit vertex ids"));
    }

    let mut el = EdgeList::new(num_vertices as Index);
    let mut count = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: u64 = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let c: u64 = it
            .next()
            .ok_or_else(|| parse_err("missing column index"))?
            .parse()
            .map_err(|_| parse_err("bad column index"))?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(parse_err(format!("entry ({r},{c}) out of bounds")));
        }
        let value: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?
        };
        let src = (r - 1) as Index;
        let dst = if rectangular {
            (nrows + c - 1) as Index
        } else {
            (c - 1) as Index
        };
        el.push(src, dst, E::from_f64(value));
        if symmetric && src != dst {
            el.push(dst, src, E::from_f64(value));
        }
        count += 1;
    }
    if count != nnz {
        return Err(parse_err(format!(
            "size line promised {nnz} entries but file contains {count}"
        )));
    }
    Ok(el)
}

/// Read a MatrixMarket file from disk with `f32` edge weights.
pub fn read_file(path: impl AsRef<Path>) -> Result<EdgeList, MtxError> {
    read(std::fs::File::open(path)?)
}

/// Read a MatrixMarket file from disk into an `EdgeList<E>`.
pub fn read_file_typed<E: MtxValue>(path: impl AsRef<Path>) -> Result<EdgeList<E>, MtxError> {
    read_typed(std::fs::File::open(path)?)
}

/// Write an edge list as a `general` MatrixMarket coordinate file.
///
/// The field type follows the edge type ([`MtxValue::FIELD`]): floats
/// produce a `real` file, integers an `integer` file, and `EdgeList<()>` a
/// `pattern` file with no stored values.
pub fn write<E: MtxValue, W: Write>(el: &EdgeList<E>, mut writer: W) -> Result<(), MtxError> {
    let field = E::FIELD;
    writeln!(writer, "%%MatrixMarket matrix coordinate {field} general")?;
    writeln!(writer, "% written by graphmat-io")?;
    writeln!(
        writer,
        "{} {} {}",
        el.num_vertices(),
        el.num_vertices(),
        el.num_edges()
    )?;
    for (s, d, w) in el.edges() {
        if E::PATTERN {
            writeln!(writer, "{} {}", s + 1, d + 1)?;
        } else {
            writeln!(writer, "{} {} {}", s + 1, d + 1, w.to_f64())?;
        }
    }
    Ok(())
}

/// Write an edge list to a file on disk.
pub fn write_file<E: MtxValue>(el: &EdgeList<E>, path: impl AsRef<Path>) -> Result<(), MtxError> {
    write(el, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_general_real() {
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 3\n\
                    1 2 1.5\n\
                    2 3 2.5\n\
                    3 1 3.5\n";
        let el = read(data.as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.num_edges(), 3);
        assert!(el.edges().contains(&(0, 1, 1.5)));
        assert!(el.edges().contains(&(2, 0, 3.5)));
    }

    #[test]
    fn reads_pattern_symmetric() {
        let data = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    4 4 2\n\
                    2 1\n\
                    4 3\n";
        let el = read(data.as_bytes()).unwrap();
        // each symmetric entry expands to two directed edges with weight 1
        assert_eq!(el.num_edges(), 4);
        assert!(el.edges().contains(&(1, 0, 1.0)));
        assert!(el.edges().contains(&(0, 1, 1.0)));
    }

    #[test]
    fn reads_rectangular_as_bipartite() {
        let data = "%%MatrixMarket matrix coordinate integer general\n\
                    2 3 2\n\
                    1 1 5\n\
                    2 3 4\n";
        let el = read(data.as_bytes()).unwrap();
        assert_eq!(el.num_vertices(), 5); // 2 rows + 3 cols
        assert!(el.edges().contains(&(0, 2, 5.0)));
        assert!(el.edges().contains(&(1, 4, 4.0)));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read("not a matrix\n1 1 0\n".as_bytes()).is_err());
        assert!(read("%%MatrixMarket matrix array real general\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 3\n\
                    1 2 1.0\n";
        assert!(matches!(read(data.as_bytes()), Err(MtxError::Parse(_))));
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 1\n\
                    3 1 1.0\n";
        assert!(read(data.as_bytes()).is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let el = EdgeList::from_tuples(4, vec![(0, 1, 1.0), (2, 3, 2.0), (3, 0, 0.5)]);
        let mut buf = Vec::new();
        write(&el, &mut buf).unwrap();
        let back = read(buf.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), 4);
        let mut a: Vec<_> = el.edges().to_vec();
        let mut b: Vec<_> = back.edges().to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("graphmat_mtx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mtx");
        let el = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 2.0)]);
        write_file(&el, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unweighted_pattern_roundtrip() {
        let el = EdgeList::from_pairs(4, vec![(0, 1), (2, 3), (3, 0)]);
        let mut buf = Vec::new();
        write(&el, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("%%MatrixMarket matrix coordinate pattern general"));
        let back: EdgeList<()> = read_typed(buf.as_slice()).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn integer_weights_roundtrip_as_integer_field() {
        let el: EdgeList<u32> = EdgeList::from_tuples(3, vec![(0, 1, 4), (1, 2, 9)]);
        let mut buf = Vec::new();
        write(&el, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("%%MatrixMarket matrix coordinate integer general"));
        let back: EdgeList<u32> = read_typed(buf.as_slice()).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn error_display_is_informative() {
        let err = read("".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("MatrixMarket"));
    }
}
