//! Graph500 RMAT (Recursive MATrix) graph generator.
//!
//! The paper's synthetic graphs come from the Graph500 RMAT generator with
//! three parameter sets (§5.1):
//!
//! * PageRank / BFS / SSSP: `A = 0.57, B = C = 0.19` (scale 23);
//! * Triangle Counting: `A = 0.45, B = C = 0.15` (scale 20);
//! * one extra SSSP graph: `A = 0.50, B = C = 0.10` (scale 24).
//!
//! An RMAT graph with scale `s` has `2^s` vertices; each edge is placed by
//! recursively choosing one of the four quadrants of the adjacency matrix
//! with probabilities `A`, `B`, `C`, `D = 1 − A − B − C` until a single cell
//! is reached. Skewed parameters produce the heavy-tailed degree
//! distributions of social graphs, which is what stresses load balancing.

use crate::edgelist::EdgeList;
use crate::rng::StdRng;
use graphmat_sparse::Index;

/// Configuration for the RMAT generator.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average number of directed edges per vertex (Graph500 uses 16).
    pub edge_factor: usize,
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
    /// If `true`, add a small random perturbation to the quadrant
    /// probabilities at every level, as the Graph500 reference does, to avoid
    /// exactly self-similar artefacts.
    pub noise: bool,
    /// Range of random integer edge weights, inclusive (e.g. `(1, 10)` for
    /// SSSP); `(1, 1)` gives an unweighted graph.
    pub weight_range: (u32, u32),
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 14,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 42,
            noise: true,
            weight_range: (1, 1),
        }
    }
}

impl RmatConfig {
    /// The paper's PageRank/BFS/SSSP parameter set (`A=0.57, B=C=0.19`).
    pub fn graph500(scale: u32) -> Self {
        RmatConfig {
            scale,
            ..Default::default()
        }
    }

    /// The paper's Triangle Counting parameter set (`A=0.45, B=C=0.15`).
    pub fn triangle_counting(scale: u32) -> Self {
        RmatConfig {
            scale,
            a: 0.45,
            b: 0.15,
            c: 0.15,
            ..Default::default()
        }
    }

    /// The paper's extra SSSP parameter set (`A=0.50, B=C=0.10`), used for
    /// the RMAT scale-24 graph matching [13, 24].
    pub fn sssp_extra(scale: u32) -> Self {
        RmatConfig {
            scale,
            a: 0.50,
            b: 0.10,
            c: 0.10,
            weight_range: (1, 255),
            ..Default::default()
        }
    }

    /// Number of vertices this configuration produces.
    pub fn num_vertices(&self) -> Index {
        1u32 << self.scale
    }

    /// Number of directed edges this configuration produces.
    pub fn num_edges(&self) -> usize {
        (self.num_vertices() as usize) * self.edge_factor
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the edge factor.
    pub fn with_edge_factor(mut self, edge_factor: usize) -> Self {
        self.edge_factor = edge_factor;
        self
    }

    /// Override the weight range.
    pub fn with_weights(mut self, lo: u32, hi: u32) -> Self {
        self.weight_range = (lo, hi);
        self
    }
}

/// Generate an RMAT edge list. Self-loops are removed (as the paper always
/// does); duplicate edges are kept, matching the Graph500 specification.
pub fn generate(config: &RmatConfig) -> EdgeList {
    assert!(
        config.scale >= 1 && config.scale <= 30,
        "scale out of range"
    );
    assert!(
        config.a + config.b + config.c <= 1.0 + 1e-9,
        "quadrant probabilities must sum to at most 1"
    );
    let n = config.num_vertices();
    let num_edges = config.num_edges();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut edges = Vec::with_capacity(num_edges);
    let (wlo, whi) = config.weight_range;
    assert!(wlo <= whi && wlo >= 1, "invalid weight range");

    for _ in 0..num_edges {
        let (src, dst) = sample_edge(config, &mut rng);
        if src == dst {
            continue; // paper removes self loops
        }
        let w = if wlo == whi {
            wlo as f32
        } else {
            rng.gen_range(wlo..=whi) as f32
        };
        edges.push((src, dst, w));
    }
    EdgeList::from_tuples(n, edges)
}

fn sample_edge(config: &RmatConfig, rng: &mut StdRng) -> (Index, Index) {
    let mut row = 0u32;
    let mut col = 0u32;
    let (mut a, mut b, mut c) = (config.a, config.b, config.c);
    for level in 0..config.scale {
        let d = (1.0 - a - b - c).max(0.0);
        let r: f64 = rng.gen();
        let bit = 1u32 << (config.scale - 1 - level);
        if r < a {
            // top-left: neither bit set
        } else if r < a + b {
            col |= bit;
        } else if r < a + b + c {
            row |= bit;
        } else {
            let _ = d;
            row |= bit;
            col |= bit;
        }
        if config.noise {
            // Graph500-style noise: jitter each probability by up to ±5% and
            // renormalise, keeping determinism through the shared RNG.
            let jitter = |p: f64, rng: &mut StdRng| p * (0.95 + 0.1 * rng.gen::<f64>());
            let (na, nb, nc, nd) = (
                jitter(config.a, rng),
                jitter(config.b, rng),
                jitter(config.c, rng),
                jitter((1.0 - config.a - config.b - config.c).max(0.0), rng),
            );
            let total = na + nb + nc + nd;
            a = na / total;
            b = nb / total;
            c = nc / total;
        }
    }
    (row, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let cfg = RmatConfig::graph500(8).with_seed(7);
        let el = generate(&cfg);
        assert_eq!(el.num_vertices(), 256);
        // self loops removed, so <= scale * edge_factor
        assert!(el.num_edges() <= cfg.num_edges());
        assert!(el.num_edges() > cfg.num_edges() / 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RmatConfig::graph500(7).with_seed(123);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        let c = generate(&RmatConfig::graph500(7).with_seed(124));
        assert_ne!(a, c);
    }

    #[test]
    fn no_self_loops() {
        let el = generate(&RmatConfig::graph500(8));
        assert!(el.edges().iter().all(|&(s, d, _)| s != d));
    }

    #[test]
    fn endpoints_in_range() {
        let cfg = RmatConfig::triangle_counting(9);
        let el = generate(&cfg);
        let n = cfg.num_vertices();
        assert!(el.edges().iter().all(|&(s, d, _)| s < n && d < n));
    }

    #[test]
    fn skewed_parameters_produce_skewed_degrees() {
        // With A=0.57 the degree distribution must be heavy-tailed: the max
        // out-degree should far exceed the average.
        let el = generate(&RmatConfig::graph500(10).with_seed(3));
        let st = el.stats();
        assert!(
            st.max_out_degree as f64 > 5.0 * st.avg_degree,
            "max {} avg {}",
            st.max_out_degree,
            st.avg_degree
        );
    }

    #[test]
    fn uniform_parameters_are_less_skewed_than_graph500() {
        let skewed = generate(&RmatConfig::graph500(10).with_seed(5)).stats();
        let flat = generate(&RmatConfig {
            scale: 10,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            seed: 5,
            ..Default::default()
        })
        .stats();
        assert!(skewed.max_out_degree > flat.max_out_degree);
    }

    #[test]
    fn weights_respect_range() {
        let cfg = RmatConfig::sssp_extra(8);
        let el = generate(&cfg);
        assert!(el
            .edges()
            .iter()
            .all(|&(_, _, w)| (1.0..=255.0).contains(&w)));
    }

    #[test]
    fn paper_parameter_sets() {
        let pr = RmatConfig::graph500(20);
        assert!((pr.a - 0.57).abs() < 1e-12 && (pr.b - 0.19).abs() < 1e-12);
        let tc = RmatConfig::triangle_counting(20);
        assert!((tc.a - 0.45).abs() < 1e-12 && (tc.b - 0.15).abs() < 1e-12);
        let ss = RmatConfig::sssp_extra(24);
        assert!((ss.a - 0.50).abs() < 1e-12 && (ss.b - 0.10).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_probabilities_panic() {
        let cfg = RmatConfig {
            a: 0.8,
            b: 0.3,
            c: 0.3,
            ..Default::default()
        };
        let _ = generate(&cfg);
    }
}
