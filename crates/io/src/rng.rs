//! Deterministic pseudo-random number generation for the graph generators.
//!
//! The generators only need a small, seedable, statistically reasonable RNG —
//! reproducibility matters far more than cryptographic quality, because every
//! dataset in [`crate::datasets`] is defined as "the graph this seed
//! produces". This module implements SplitMix64 (Steele et al., "Fast
//! splittable pseudorandom number generators", OOPSLA 2014): one 64-bit state
//! word, a Weyl-sequence increment and a 2-round mixing finaliser. It passes
//! the statistical tests that matter at our scale and is used by the
//! reference Graph500 code for exactly this purpose (seeding / perturbation).
//!
//! The API mirrors the subset of the `rand` crate the generators use
//! (`StdRng::seed_from_u64`, `gen`, `gen_range`), so generator code reads
//! identically to its `rand`-based equivalent.

/// A seedable SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Create a generator from a 64-bit seed. Equal seeds yield equal
    /// sequences; different seeds yield (with overwhelming probability)
    /// entirely different sequences.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Sample a value of a type with a canonical "standard" distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range).
    #[inline]
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(lo..=hi)`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Types [`StdRng::gen`] can produce directly.
pub trait Standard {
    /// Draw one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

#[inline]
fn uniform_below(rng: &mut StdRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire-style rejection keeps the distribution exactly uniform.
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

impl SampleRange for std::ops::Range<u32> {
    type Output = u32;

    #[inline]
    fn sample(self, rng: &mut StdRng) -> u32 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_below(rng, span) as u32
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;

    #[inline]
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_below(rng, span) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<u32> {
    type Output = u32;

    #[inline]
    fn sample(self, rng: &mut StdRng) -> u32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + uniform_below(rng, span) as u32
    }
}

impl SampleRange for std::ops::RangeInclusive<f32> {
    type Output = f32;

    #[inline]
    fn sample(self, rng: &mut StdRng) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * rng.gen::<f64>() as f32
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;

    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let a = rng.gen_range(3u32..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&b));
            let c = rng.gen_range(1.0f32..=5.0);
            assert!((1.0..=5.0).contains(&c));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0u32..=3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn output_is_roughly_uniform() {
        // mean of 10k unit samples should be close to 0.5
        let mut rng = StdRng::seed_from_u64(4);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
