//! Erdős–Rényi style uniform random graph generator.
//!
//! Not used by the paper directly, but useful as an unskewed control
//! workload: on a uniform graph the load-balancing optimization of §4.5
//! should matter much less than on RMAT, which the ablation benchmarks
//! exploit. Also the workhorse for property tests that need "some random
//! graph" without RMAT's heavy tail.

use crate::edgelist::EdgeList;
use crate::rng::StdRng;
use graphmat_sparse::Index;

/// Configuration for the uniform random graph generator.
#[derive(Clone, Copy, Debug)]
pub struct UniformConfig {
    /// Number of vertices.
    pub num_vertices: Index,
    /// Number of directed edges to draw (duplicates allowed, self-loops
    /// skipped).
    pub num_edges: usize,
    /// Inclusive integer weight range.
    pub weight_range: (u32, u32),
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniformConfig {
    fn default() -> Self {
        UniformConfig {
            num_vertices: 1024,
            num_edges: 8192,
            weight_range: (1, 1),
            seed: 42,
        }
    }
}

impl UniformConfig {
    /// Create a configuration with the given size and default weights/seed.
    pub fn new(num_vertices: Index, num_edges: usize) -> Self {
        UniformConfig {
            num_vertices,
            num_edges,
            ..Default::default()
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the weight range.
    pub fn with_weights(mut self, lo: u32, hi: u32) -> Self {
        self.weight_range = (lo, hi);
        self
    }
}

/// Generate a uniform random directed graph.
pub fn generate(config: &UniformConfig) -> EdgeList {
    assert!(config.num_vertices >= 2);
    let (wlo, whi) = config.weight_range;
    assert!(wlo >= 1 && wlo <= whi);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut el = EdgeList::new(config.num_vertices);
    for _ in 0..config.num_edges {
        let s = rng.gen_range(0..config.num_vertices);
        let d = rng.gen_range(0..config.num_vertices);
        if s == d {
            continue;
        }
        let w = if wlo == whi {
            wlo as f32
        } else {
            rng.gen_range(wlo..=whi) as f32
        };
        el.push(s, d, w);
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_size_and_determinism() {
        let cfg = UniformConfig::new(100, 1000).with_seed(1);
        let a = generate(&cfg);
        assert_eq!(a.num_vertices(), 100);
        assert!(a.num_edges() <= 1000 && a.num_edges() > 900);
        assert_eq!(a, generate(&cfg));
    }

    #[test]
    fn no_self_loops_and_in_range() {
        let el = generate(&UniformConfig::new(50, 500));
        assert!(el
            .edges()
            .iter()
            .all(|&(s, d, _)| s != d && s < 50 && d < 50));
    }

    #[test]
    fn degree_distribution_is_flat() {
        let el = generate(&UniformConfig::new(256, 256 * 16).with_seed(9));
        let st = el.stats();
        // uniform graph: max degree within a small factor of the average
        assert!((st.max_out_degree as f64) < 3.5 * st.avg_degree);
    }

    #[test]
    fn weighted_generation() {
        let el = generate(&UniformConfig::new(64, 512).with_weights(5, 9));
        assert!(el.edges().iter().all(|&(_, _, w)| (5.0..=9.0).contains(&w)));
    }
}
