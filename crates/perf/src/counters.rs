//! Abstract operation counters.

use std::ops::{Add, AddAssign};

/// Counts of abstract operations performed during one framework run.
///
/// All engines in the workspace (GraphMat itself and the comparator
/// baselines) fill one of these in while executing, using the same accounting
/// rules so the numbers are comparable:
///
/// * one `edge_op` per edge traversal that contributes to the algorithm
///   (message processed, relaxation attempted, intersection step, …);
/// * one `vertex_op` per vertex-level update (APPLY, rank write, …);
/// * one `message` per message materialised in memory;
/// * one `overhead_op` per unit of framework bookkeeping that a
///   hand-optimized native implementation would not perform (queue pushes,
///   virtual calls, buffer copies, lock acquisitions, …);
/// * `bytes_read` / `bytes_written` estimate data movement from the sizes of
///   the structures actually touched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostCounters {
    /// Edge-level useful work items.
    pub edge_ops: u64,
    /// Vertex-level useful work items.
    pub vertex_ops: u64,
    /// Messages materialised.
    pub messages: u64,
    /// Framework bookkeeping operations.
    pub overhead_ops: u64,
    /// Estimated bytes read from memory.
    pub bytes_read: u64,
    /// Estimated bytes written to memory.
    pub bytes_written: u64,
}

impl CostCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total operations (work + overhead) — the "instructions executed"
    /// proxy of Figure 6.
    pub fn total_ops(&self) -> u64 {
        self.edge_ops + self.vertex_ops + self.messages + self.overhead_ops
    }

    /// Useful (non-overhead) operations.
    pub fn useful_ops(&self) -> u64 {
        self.edge_ops + self.vertex_ops
    }

    /// Total estimated bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Record `n` edge operations.
    pub fn add_edge_ops(&mut self, n: u64) {
        self.edge_ops += n;
    }

    /// Record `n` vertex operations.
    pub fn add_vertex_ops(&mut self, n: u64) {
        self.vertex_ops += n;
    }

    /// Record `n` messages.
    pub fn add_messages(&mut self, n: u64) {
        self.messages += n;
    }

    /// Record `n` overhead operations.
    pub fn add_overhead(&mut self, n: u64) {
        self.overhead_ops += n;
    }

    /// Record an estimated read of `n` bytes.
    pub fn add_bytes_read(&mut self, n: u64) {
        self.bytes_read += n;
    }

    /// Record an estimated write of `n` bytes.
    pub fn add_bytes_written(&mut self, n: u64) {
        self.bytes_written += n;
    }
}

impl Add for CostCounters {
    type Output = CostCounters;

    fn add(self, rhs: CostCounters) -> CostCounters {
        CostCounters {
            edge_ops: self.edge_ops + rhs.edge_ops,
            vertex_ops: self.vertex_ops + rhs.vertex_ops,
            messages: self.messages + rhs.messages,
            overhead_ops: self.overhead_ops + rhs.overhead_ops,
            bytes_read: self.bytes_read + rhs.bytes_read,
            bytes_written: self.bytes_written + rhs.bytes_written,
        }
    }
}

impl AddAssign for CostCounters {
    fn add_assign(&mut self, rhs: CostCounters) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_by_default() {
        let c = CostCounters::new();
        assert_eq!(c.total_ops(), 0);
        assert_eq!(c.bytes_total(), 0);
    }

    #[test]
    fn accumulation_methods() {
        let mut c = CostCounters::new();
        c.add_edge_ops(10);
        c.add_vertex_ops(5);
        c.add_messages(3);
        c.add_overhead(2);
        c.add_bytes_read(100);
        c.add_bytes_written(50);
        assert_eq!(c.total_ops(), 20);
        assert_eq!(c.useful_ops(), 15);
        assert_eq!(c.bytes_total(), 150);
    }

    #[test]
    fn add_combines_fields() {
        let a = CostCounters {
            edge_ops: 1,
            vertex_ops: 2,
            messages: 3,
            overhead_ops: 4,
            bytes_read: 5,
            bytes_written: 6,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.edge_ops, 2);
        assert_eq!(c.overhead_ops, 8);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }
}
