//! Software cost model standing in for hardware performance counters.
//!
//! The paper explains *why* GraphMat beats the other frameworks with Intel
//! PMU counters (Figure 6): instructions executed, stall cycles, read
//! bandwidth and IPC. Those counters are not portable (and not available in a
//! pure-Rust, laptop-scale reproduction), so this crate provides an abstract
//! cost model that every engine in the workspace reports into:
//!
//! * **work operations** — per-edge and per-vertex useful work
//!   ([`CostCounters::edge_ops`], [`CostCounters::vertex_ops`]);
//! * **overhead operations** — framework bookkeeping that does not advance
//!   the algorithm (copies, queue management, virtual dispatch, MPI-style
//!   buffer packing in the CombBLAS-like baseline);
//! * **bytes touched** — an estimate of memory traffic.
//!
//! [`PerfReport::from_counters`] then derives the Figure 6 proxies:
//! an *instruction proxy* (work + overhead), a *stall proxy* (bytes touched
//! that miss in a modelled cache), *read bandwidth* (bytes / second) and an
//! *IPC proxy* (useful work per unit time). The absolute numbers are
//! meaningless; what the benchmark reproduces is the *ordering and rough
//! ratios between frameworks*, which is all Figure 6 is used for in the
//! paper's argument (§5.3).

pub mod counters;
pub mod model;

pub use counters::CostCounters;
pub use model::PerfReport;
