//! Derived performance metrics (the Figure 6 proxies).

use crate::counters::CostCounters;
use std::time::Duration;

/// Derived metrics for one framework run, analogous to the four hardware
/// counter groups of the paper's Figure 6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfReport {
    /// Proxy for "instructions executed": total abstract operations.
    pub instructions_proxy: f64,
    /// Proxy for "stall cycles": bytes touched beyond what a perfectly
    /// cache-resident run would need, weighted by overhead fraction.
    pub stall_proxy: f64,
    /// Read bandwidth proxy: bytes read per second of wall time.
    pub read_bandwidth: f64,
    /// IPC proxy: useful operations per microsecond of wall time.
    pub ipc_proxy: f64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl PerfReport {
    /// Derive a report from raw counters and the measured wall time.
    pub fn from_counters(counters: &CostCounters, elapsed: Duration) -> Self {
        let secs = elapsed.as_secs_f64().max(1e-9);
        let total_ops = counters.total_ops() as f64;
        let overhead_fraction = if counters.total_ops() == 0 {
            0.0
        } else {
            counters.overhead_ops as f64 / counters.total_ops() as f64
        };
        // Stalls grow with memory traffic and with the fraction of work that
        // is bookkeeping (bookkeeping implies pointer chasing / poor locality
        // in all the modelled frameworks).
        let stall_proxy = counters.bytes_total() as f64 * (1.0 + 4.0 * overhead_fraction);
        PerfReport {
            instructions_proxy: total_ops,
            stall_proxy,
            read_bandwidth: counters.bytes_read as f64 / secs,
            ipc_proxy: counters.useful_ops() as f64 / (secs * 1e6),
            elapsed,
        }
    }

    /// Normalise this report against a reference (the paper normalises every
    /// framework to GraphMat). Each field becomes `self / reference`.
    pub fn normalized_to(&self, reference: &PerfReport) -> NormalizedPerf {
        let div = |a: f64, b: f64| if b.abs() < 1e-12 { 0.0 } else { a / b };
        NormalizedPerf {
            instructions: div(self.instructions_proxy, reference.instructions_proxy),
            stall_cycles: div(self.stall_proxy, reference.stall_proxy),
            read_bandwidth: div(self.read_bandwidth, reference.read_bandwidth),
            ipc: div(self.ipc_proxy, reference.ipc_proxy),
        }
    }
}

/// A [`PerfReport`] expressed relative to a reference run (Figure 6's
/// "normalized to GraphMat" y-axis).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NormalizedPerf {
    /// Instructions relative to the reference (lower is better).
    pub instructions: f64,
    /// Stall cycles relative to the reference (lower is better).
    pub stall_cycles: f64,
    /// Read bandwidth relative to the reference (higher is better).
    pub read_bandwidth: f64,
    /// IPC relative to the reference (higher is better).
    pub ipc: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(edge: u64, overhead: u64, bytes: u64) -> CostCounters {
        CostCounters {
            edge_ops: edge,
            vertex_ops: 0,
            messages: 0,
            overhead_ops: overhead,
            bytes_read: bytes,
            bytes_written: 0,
        }
    }

    #[test]
    fn report_scales_with_ops() {
        let fast = PerfReport::from_counters(&counters(100, 0, 1000), Duration::from_millis(10));
        let slow = PerfReport::from_counters(&counters(1000, 500, 1000), Duration::from_millis(10));
        assert!(slow.instructions_proxy > fast.instructions_proxy);
        assert!(slow.stall_proxy > fast.stall_proxy);
    }

    #[test]
    fn ipc_rewards_fast_runs() {
        let c = counters(1000, 0, 1000);
        let fast = PerfReport::from_counters(&c, Duration::from_millis(1));
        let slow = PerfReport::from_counters(&c, Duration::from_millis(100));
        assert!(fast.ipc_proxy > slow.ipc_proxy);
        assert!(fast.read_bandwidth > slow.read_bandwidth);
    }

    #[test]
    fn normalization_to_self_is_one() {
        let r = PerfReport::from_counters(&counters(500, 50, 2000), Duration::from_millis(5));
        let n = r.normalized_to(&r);
        assert!((n.instructions - 1.0).abs() < 1e-12);
        assert!((n.stall_cycles - 1.0).abs() < 1e-12);
        assert!((n.read_bandwidth - 1.0).abs() < 1e-12);
        assert!((n.ipc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_increases_stall_proxy() {
        let clean = PerfReport::from_counters(&counters(1000, 0, 1000), Duration::from_millis(10));
        let bloated =
            PerfReport::from_counters(&counters(1000, 1000, 1000), Duration::from_millis(10));
        assert!(bloated.stall_proxy > clean.stall_proxy);
    }

    #[test]
    fn zero_counters_do_not_divide_by_zero() {
        let z = PerfReport::from_counters(&CostCounters::new(), Duration::from_millis(1));
        let n = z.normalized_to(&z);
        assert_eq!(n.instructions, 0.0);
    }
}
