//! The GraphMat query server binary.
//!
//! Loads one graph at startup (an RMAT sample or a Matrix Market file),
//! builds the resident topology through a session, and serves protocol
//! requests until a `SHUTDOWN` frame arrives.
//!
//! ```text
//! graphmat-serve [--listen ADDR] [--rmat-scale N] [--edge-factor N]
//!                [--seed N] [--mtx PATH] [--symmetrize]
//!                [--session-threads N] [--workers N] [--queue-depth N]
//!                [--timeout-ms N] [--stats-interval-secs N]
//! ```

use graphmat_core::Session;
use graphmat_io::edgelist::EdgeList;
use graphmat_io::rmat::RmatConfig;
use graphmat_server::{GraphService, Server, ServerConfig};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    listen: String,
    rmat_scale: u32,
    edge_factor: usize,
    seed: u64,
    mtx: Option<String>,
    symmetrize: bool,
    session_threads: usize,
    workers: usize,
    queue_depth: usize,
    timeout_ms: u64,
    stats_interval_secs: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            listen: "127.0.0.1:4617".into(),
            rmat_scale: 14,
            edge_factor: 16,
            seed: 42,
            mtx: None,
            symmetrize: false,
            session_threads: 0, // 0 = all available cores
            workers: 2,
            queue_depth: 64,
            timeout_ms: 0, // 0 = no default deadline
            stats_interval_secs: 30,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--rmat-scale" => {
                args.rmat_scale = value("--rmat-scale")?
                    .parse()
                    .map_err(|e| format!("--rmat-scale: {e}"))?
            }
            "--edge-factor" => {
                args.edge_factor = value("--edge-factor")?
                    .parse()
                    .map_err(|e| format!("--edge-factor: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--mtx" => args.mtx = Some(value("--mtx")?),
            "--symmetrize" => args.symmetrize = true,
            "--session-threads" => {
                args.session_threads = value("--session-threads")?
                    .parse()
                    .map_err(|e| format!("--session-threads: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue-depth" => {
                args.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?
            }
            "--timeout-ms" => {
                args.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?
            }
            "--stats-interval-secs" => {
                args.stats_interval_secs = value("--stats-interval-secs")?
                    .parse()
                    .map_err(|e| format!("--stats-interval-secs: {e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: graphmat-serve [--listen ADDR] [--rmat-scale N] \
                     [--edge-factor N] [--seed N] [--mtx PATH] [--symmetrize] \
                     [--session-threads N] [--workers N] [--queue-depth N] \
                     [--timeout-ms N] [--stats-interval-secs N]"
                    .into())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let load_start = Instant::now();
    let edges: EdgeList<f32> = match &args.mtx {
        Some(path) => match graphmat_io::mtx::read_file(path) {
            Ok(edges) => edges,
            Err(err) => {
                eprintln!("failed to read {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => graphmat_io::rmat::generate(
            &RmatConfig::graph500(args.rmat_scale)
                .with_edge_factor(args.edge_factor)
                .with_seed(args.seed)
                .with_weights(1, 10),
        ),
    };
    let edges = if args.symmetrize {
        edges.symmetrized()
    } else {
        edges
    };

    let session = if args.session_threads == 0 {
        Session::with_defaults()
    } else {
        Session::with_threads(args.session_threads)
    };
    let session = match session {
        Ok(session) => session,
        Err(err) => {
            eprintln!("failed to start session: {err}");
            return ExitCode::FAILURE;
        }
    };
    // In-edges on, so the in-degree algorithm (and any future pull-heavy
    // one) works out of the box.
    let topology = match session.build_graph(&edges).finish() {
        Ok(topology) => topology,
        Err(err) => {
            eprintln!("failed to build topology: {err}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[graphmat-serve] loaded {} vertices / {} edges in {:.2}s ({} session threads, {:.1} MiB matrices)",
        topology.num_vertices(),
        topology.num_edges(),
        load_start.elapsed().as_secs_f64(),
        session.nthreads(),
        topology.matrix_bytes() as f64 / (1024.0 * 1024.0),
    );

    let config = ServerConfig {
        workers: args.workers,
        queue_depth: args.queue_depth,
        default_timeout: (args.timeout_ms > 0).then(|| Duration::from_millis(args.timeout_ms)),
        stats_log_interval: (args.stats_interval_secs > 0)
            .then(|| Duration::from_secs(args.stats_interval_secs)),
        ..ServerConfig::default()
    };
    let server = match Server::bind(&args.listen, GraphService::new(session, topology), config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("failed to bind {}: {err}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[graphmat-serve] listening on {} ({} workers, queue depth {})",
        server.local_addr(),
        args.workers,
        args.queue_depth,
    );
    server.wait();
    eprintln!("[graphmat-serve] drained and stopped");
    ExitCode::SUCCESS
}
