//! Closed-loop load generator for the GraphMat query server.
//!
//! Opens N connections, each issuing back-to-back requests drawn from a
//! weighted algorithm mix for a fixed duration, then reports request
//! counts, QPS and exact latency quantiles as JSON (the `BENCH_serving`
//! series). Also doubles as the CI smoke test via `--smoke`.
//!
//! With `--mutate-rate` each connection interleaves UPDATE batches of
//! random edge edits among its queries (mixed read/write serving — the
//! `BENCH_serving` report then also carries an `updates` tally).
//!
//! With `--retries` each connection goes through [`ResilientClient`]:
//! idempotent requests that fail transiently are retried with backoff, and
//! the report carries a `resilience` block (attempts, retries, reconnects,
//! breaker trips). Failed requests make the exit code nonzero unless
//! `--allow-failures` (for fault-injection legs where failures are the
//! point).
//!
//! ```text
//! loadgen --addr HOST:PORT [--connections N] [--duration-secs N]
//!         [--mix pagerank:1,bfs:4,...] [--mutate-rate F] [--mutate-batch N]
//!         [--timeout-ms N] [--iterations N] [--seed N] [--retries N]
//!         [--allow-failures] [--json PATH]
//!         [--smoke] [--ping-only] [--shutdown-after]
//! ```

use graphmat_server::{
    Algorithm, BreakerConfig, Client, EdgeEdit, ResilienceStats, ResilientClient, RetryPolicy,
    RunRequest, Status,
};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    connections: usize,
    duration_secs: u64,
    mix: Vec<(Algorithm, u32)>,
    mutate_rate: f64,
    mutate_batch: usize,
    timeout_ms: u32,
    iterations: u32,
    seed: u64,
    retries: u32,
    allow_failures: bool,
    json: Option<String>,
    smoke: bool,
    ping_only: bool,
    shutdown_after: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:4617".into(),
            connections: 4,
            duration_secs: 10,
            mix: vec![
                (Algorithm::Bfs, 4),
                (Algorithm::Sssp, 2),
                (Algorithm::PageRank, 1),
                (Algorithm::ConnectedComponents, 1),
                (Algorithm::InDegrees, 1),
            ],
            mutate_rate: 0.0,
            mutate_batch: 16,
            timeout_ms: 0,
            iterations: 10,
            seed: 1,
            retries: 0,
            allow_failures: false,
            json: None,
            smoke: false,
            ping_only: false,
            shutdown_after: false,
        }
    }
}

fn parse_mix(spec: &str) -> Result<Vec<(Algorithm, u32)>, String> {
    let mut mix = Vec::new();
    for part in spec.split(',') {
        let (name, weight) = part
            .split_once(':')
            .ok_or_else(|| format!("mix entry {part:?} must be name:weight"))?;
        let algorithm = Algorithm::ALL
            .into_iter()
            .find(|a| a.name() == name)
            .ok_or_else(|| format!("unknown algorithm {name:?} in mix"))?;
        let weight: u32 = weight
            .parse()
            .map_err(|e| format!("mix weight for {name}: {e}"))?;
        if weight > 0 {
            mix.push((algorithm, weight));
        }
    }
    if mix.is_empty() {
        return Err("mix selects no algorithms".into());
    }
    Ok(mix)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?
            }
            "--duration-secs" => {
                args.duration_secs = value("--duration-secs")?
                    .parse()
                    .map_err(|e| format!("--duration-secs: {e}"))?
            }
            "--mix" => args.mix = parse_mix(&value("--mix")?)?,
            "--mutate-rate" => {
                args.mutate_rate = value("--mutate-rate")?
                    .parse()
                    .map_err(|e| format!("--mutate-rate: {e}"))?;
                if !(0.0..=1.0).contains(&args.mutate_rate) {
                    return Err("--mutate-rate must be in [0, 1]".into());
                }
            }
            "--mutate-batch" => {
                args.mutate_batch = value("--mutate-batch")?
                    .parse()
                    .map_err(|e| format!("--mutate-batch: {e}"))?;
                if args.mutate_batch == 0 {
                    return Err("--mutate-batch must be at least 1".into());
                }
            }
            "--timeout-ms" => {
                args.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?
            }
            "--iterations" => {
                args.iterations = value("--iterations")?
                    .parse()
                    .map_err(|e| format!("--iterations: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--retries" => {
                args.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--allow-failures" => args.allow_failures = true,
            "--json" => args.json = Some(value("--json")?),
            "--smoke" => args.smoke = true,
            "--ping-only" => args.ping_only = true,
            "--shutdown-after" => args.shutdown_after = true,
            "--help" | "-h" => {
                return Err("usage: loadgen --addr HOST:PORT [--connections N] \
                     [--duration-secs N] [--mix pagerank:1,bfs:4,...] \
                     [--mutate-rate F] [--mutate-batch N] [--timeout-ms N] \
                     [--iterations N] [--seed N] [--retries N] \
                     [--allow-failures] [--json PATH] \
                     [--smoke] [--ping-only] [--shutdown-after]"
                    .into())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

/// splitmix64 step — deterministic per-connection randomness.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pull `"key":<integer>` out of the STATS JSON without a JSON parser.
fn scrape_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let digits: String = json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[derive(Default)]
struct Tally {
    ok: u64,
    busy: u64,
    timeout: u64,
    failed: u64,
    latencies_us: Vec<u64>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.ok += other.ok;
        self.busy += other.busy;
        self.timeout += other.timeout;
        self.failed += other.failed;
        self.latencies_us.extend(other.latencies_us);
    }

    fn requests(&self) -> u64 {
        self.ok + self.busy + self.timeout + self.failed
    }
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn tally_json(name: &str, tally: &Tally, sorted: &[u64], elapsed_secs: f64) -> String {
    let mean = if sorted.is_empty() {
        0
    } else {
        sorted.iter().sum::<u64>() / sorted.len() as u64
    };
    format!(
        "\"{name}\":{{\"requests\":{},\"ok\":{},\"busy\":{},\"timeout\":{},\
         \"failed\":{},\"qps\":{:.2},\"latency_us\":{{\"mean\":{mean},\
         \"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}}}",
        tally.requests(),
        tally.ok,
        tally.busy,
        tally.timeout,
        tally.failed,
        tally.ok as f64 / elapsed_secs.max(1e-9),
        quantile(sorted, 0.50),
        quantile(sorted, 0.95),
        quantile(sorted, 0.99),
        sorted.last().copied().unwrap_or(0),
    )
}

fn run_smoke(args: &Args) -> Result<(), String> {
    let mut client =
        Client::connect(&args.addr).map_err(|e| format!("connect {}: {e}", args.addr))?;
    client.ping().map_err(|e| format!("ping: {e}"))?;
    for algorithm in Algorithm::ALL {
        let request = RunRequest::new(algorithm)
            .seed(0)
            .iterations(args.iterations)
            .timeout_ms(if args.timeout_ms > 0 {
                args.timeout_ms
            } else {
                60_000
            });
        let reply = client
            .run(&request)
            .map_err(|e| format!("{}: {e}", algorithm.name()))?;
        if !reply.is_ok() {
            return Err(format!(
                "{}: status {:?}: {}",
                algorithm.name(),
                reply.status,
                reply.message
            ));
        }
        println!(
            "smoke {}: ok in {} us, {} iterations, checksum {:#018x}",
            algorithm.name(),
            reply.elapsed_micros,
            reply.iterations,
            reply.checksum
        );
    }
    // Streaming path: push an UPDATE batch, re-run a query on the new
    // snapshot, then confirm STATS reflects the store state.
    let before = client
        .run(&RunRequest::new(Algorithm::ConnectedComponents).iterations(args.iterations))
        .map_err(|e| format!("pre-update run: {e}"))?;
    let reply = client
        .update(&[
            EdgeEdit::insert(0, 1, 1.0),
            EdgeEdit::insert(1, 0, 1.0),
            EdgeEdit::delete(0, 1),
        ])
        .map_err(|e| format!("update: {e}"))?;
    if !reply.is_ok() {
        return Err(format!(
            "update: status {:?}: {}",
            reply.status, reply.message
        ));
    }
    if reply.snapshot_version <= before.snapshot_version {
        return Err(format!(
            "update did not advance the snapshot version ({} -> {})",
            before.snapshot_version, reply.snapshot_version
        ));
    }
    let after = client
        .run(&RunRequest::new(Algorithm::ConnectedComponents).iterations(args.iterations))
        .map_err(|e| format!("post-update run: {e}"))?;
    if !after.is_ok() {
        return Err(format!(
            "post-update run: status {:?}: {}",
            after.status, after.message
        ));
    }
    if after.snapshot_version != reply.snapshot_version {
        return Err(format!(
            "post-update query served snapshot {} instead of {}",
            after.snapshot_version, reply.snapshot_version
        ));
    }
    println!(
        "smoke update: ok, snapshot version {} ({} delta edges), query checksum {:#018x}",
        reply.snapshot_version, reply.delta_edges, after.checksum
    );
    let stats = client.stats_json().map_err(|e| format!("stats: {e}"))?;
    println!("smoke stats: {stats}");
    let ok = scrape_u64(&stats, "ok").unwrap_or(0);
    if ok < Algorithm::ALL.len() as u64 {
        return Err(format!(
            "stats reports only {ok} ok requests after {} smoke runs",
            Algorithm::ALL.len()
        ));
    }
    if scrape_u64(&stats, "updates") != Some(1) {
        return Err(format!("stats does not report the smoke update: {stats}"));
    }
    if scrape_u64(&stats, "snapshot_version").unwrap_or(0) < reply.snapshot_version {
        return Err(format!("stats snapshot_version is stale: {stats}"));
    }
    if args.shutdown_after {
        client
            .shutdown_server()
            .map_err(|e| format!("shutdown: {e}"))?;
        println!("smoke shutdown: acknowledged");
    }
    Ok(())
}

/// Retry policy derived from the CLI: `--retries N` allows N retries per
/// idempotent request (N+1 attempts).
fn retry_policy(args: &Args, lane: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: args.retries + 1,
        seed: args.seed ^ (lane.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        ..RetryPolicy::default()
    }
}

fn run_load(args: &Args) -> Result<(String, u64), String> {
    // One scouting connection learns the graph size for seed sampling.
    // It gets the retry policy too, so a transient fault (e.g. an injected
    // chaos failpoint) cannot kill the run before it starts.
    let mut scout = ResilientClient::new(
        &args.addr,
        retry_policy(args, u64::MAX),
        BreakerConfig::default(),
    );
    let stats = scout.stats_json().map_err(|e| format!("stats: {e}"))?;
    let num_vertices = scrape_u64(&stats, "num_vertices").ok_or("stats JSON lacks num_vertices")?;
    drop(scout);

    let weight_total: u32 = args.mix.iter().map(|(_, w)| w).sum();
    // Probability scaled to integer space so the decision is one modulo on
    // the deterministic rng stream.
    let mutate_threshold = (args.mutate_rate * 1_000_000.0) as u64;
    let duration = Duration::from_secs(args.duration_secs);
    let started = Instant::now();
    let workers: Vec<_> = (0..args.connections.max(1))
        .map(|conn| {
            let addr = args.addr.clone();
            let mix = args.mix.clone();
            let (timeout_ms, iterations) = (args.timeout_ms, args.iterations);
            let mutate_batch = args.mutate_batch;
            let policy = retry_policy(args, conn as u64);
            let mut rng = args.seed ^ ((conn as u64 + 1) << 32);
            std::thread::spawn(
                move || -> (Vec<(Algorithm, Tally)>, Tally, ResilienceStats, u64, u64) {
                    let mut client = ResilientClient::new(&addr, policy, BreakerConfig::default());
                    let mut tallies: Vec<(Algorithm, Tally)> = mix
                        .iter()
                        .map(|(algorithm, _)| (*algorithm, Tally::default()))
                        .collect();
                    let mut updates = Tally::default();
                    let deadline = Instant::now() + duration;
                    while Instant::now() < deadline {
                        if mutate_threshold > 0
                            && next_rand(&mut rng) % 1_000_000 < mutate_threshold
                        {
                            let edits: Vec<EdgeEdit> = (0..mutate_batch)
                                .map(|_| {
                                    let src = (next_rand(&mut rng) % num_vertices) as u32;
                                    let dst = (next_rand(&mut rng) % num_vertices) as u32;
                                    if next_rand(&mut rng) % 4 == 0 {
                                        EdgeEdit::delete(src, dst)
                                    } else {
                                        let weight = (1 + next_rand(&mut rng) % 9) as f32;
                                        EdgeEdit::insert(src, dst, weight)
                                    }
                                })
                                .collect();
                            let sent = Instant::now();
                            match client.update(&edits) {
                                Ok(reply) => match reply.status {
                                    Status::Ok => {
                                        updates.ok += 1;
                                        updates
                                            .latencies_us
                                            .push(sent.elapsed().as_micros() as u64);
                                    }
                                    Status::Busy => updates.busy += 1,
                                    Status::Timeout => updates.timeout += 1,
                                    _ => updates.failed += 1,
                                },
                                Err(_) => {
                                    // Transport error: counted, connection
                                    // reconnects lazily. Brief pause so an
                                    // open breaker doesn't spin hot.
                                    updates.failed += 1;
                                    std::thread::sleep(Duration::from_millis(5));
                                }
                            }
                            continue;
                        }
                        let mut pick = (next_rand(&mut rng) % weight_total as u64) as u32;
                        let slot = mix
                            .iter()
                            .position(|(_, weight)| {
                                let hit = pick < *weight;
                                pick = pick.saturating_sub(*weight);
                                hit
                            })
                            .unwrap_or(0);
                        let algorithm = mix[slot].0;
                        let request = RunRequest::new(algorithm)
                            .seed(next_rand(&mut rng) % num_vertices)
                            .iterations(iterations)
                            .timeout_ms(timeout_ms);
                        let sent = Instant::now();
                        let tally = &mut tallies[slot].1;
                        match client.run(&request) {
                            Ok(reply) => match reply.status {
                                Status::Ok => {
                                    tally.ok += 1;
                                    tally.latencies_us.push(sent.elapsed().as_micros() as u64);
                                }
                                Status::Busy => tally.busy += 1,
                                Status::Timeout => tally.timeout += 1,
                                _ => tally.failed += 1,
                            },
                            Err(_) => {
                                tally.failed += 1;
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        }
                    }
                    let stats = client.stats();
                    let breaker = client.breaker();
                    (
                        tallies,
                        updates,
                        stats,
                        breaker.opens(),
                        breaker.short_circuited(),
                    )
                },
            )
        })
        .collect();

    let mut per_algo: Vec<(Algorithm, Tally)> = args
        .mix
        .iter()
        .map(|(algorithm, _)| (*algorithm, Tally::default()))
        .collect();
    let mut update_tally = Tally::default();
    let mut resilience = ResilienceStats::default();
    let (mut breaker_opens, mut short_circuited) = (0u64, 0u64);
    for worker in workers {
        let (tallies, updates, stats, opens, shorted) = worker
            .join()
            .map_err(|_| "connection thread panicked".to_string())?;
        for (slot, (_, tally)) in tallies.into_iter().enumerate() {
            per_algo[slot].1.absorb(tally);
        }
        update_tally.absorb(updates);
        resilience.attempts += stats.attempts;
        resilience.retries += stats.retries;
        resilience.giveups += stats.giveups;
        resilience.reconnects += stats.reconnects;
        breaker_opens += opens;
        short_circuited += shorted;
    }
    let elapsed_secs = started.elapsed().as_secs_f64();

    // Final server-side snapshot rides along in the report.
    let mut scout = ResilientClient::new(
        &args.addr,
        retry_policy(args, u64::MAX - 1),
        BreakerConfig::default(),
    );
    let server_stats = scout.stats_json().map_err(|e| format!("stats: {e}"))?;
    if args.shutdown_after {
        scout
            .shutdown_server()
            .map_err(|e| format!("shutdown: {e}"))?;
    }

    let mut total = Tally::default();
    for (_, tally) in &per_algo {
        total.ok += tally.ok;
        total.busy += tally.busy;
        total.timeout += tally.timeout;
        total.failed += tally.failed;
        total.latencies_us.extend(&tally.latencies_us);
    }
    let mut sorted_total = total.latencies_us.clone();
    sorted_total.sort_unstable();

    let mut report = String::with_capacity(2048);
    report.push_str(&format!(
        "{{\"series\":\"BENCH_serving\",\"addr\":\"{}\",\"connections\":{},\
         \"duration_secs\":{:.2},\"num_vertices\":{num_vertices},\
         \"mutate_rate\":{},\"mutate_batch\":{},\"retries\":{},",
        args.addr,
        args.connections.max(1),
        elapsed_secs,
        args.mutate_rate,
        args.mutate_batch,
        args.retries,
    ));
    // `total` counts queries only — with --mutate-rate these are the read
    // latencies under concurrent ingest; writes get their own tally below.
    report.push_str(&tally_json("total", &total, &sorted_total, elapsed_secs));
    report.push(',');
    let mut sorted_updates = update_tally.latencies_us.clone();
    sorted_updates.sort_unstable();
    report.push_str(&tally_json(
        "updates",
        &update_tally,
        &sorted_updates,
        elapsed_secs,
    ));
    report.push_str(",\"per_algorithm\":{");
    for (i, (algorithm, tally)) in per_algo.iter().enumerate() {
        if i > 0 {
            report.push(',');
        }
        let mut sorted = tally.latencies_us.clone();
        sorted.sort_unstable();
        report.push_str(&tally_json(algorithm.name(), tally, &sorted, elapsed_secs));
    }
    report.push_str("},");
    report.push_str(&format!(
        "\"resilience\":{{\"attempts\":{},\"retries\":{},\"giveups\":{},\
         \"reconnects\":{},\"breaker_opens\":{breaker_opens},\
         \"breaker_short_circuited\":{short_circuited}}},",
        resilience.attempts, resilience.retries, resilience.giveups, resilience.reconnects,
    ));
    report.push_str("\"server_stats\":");
    report.push_str(&server_stats);
    report.push('}');
    Ok((report, total.failed + update_tally.failed))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if args.ping_only {
        // Readiness probe: exit 0 iff the server answers a PING.
        let ping = Client::connect(&args.addr).and_then(|mut c| c.ping());
        return match ping {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("ping {} failed: {err}", args.addr);
                ExitCode::FAILURE
            }
        };
    }
    if args.smoke {
        return match run_smoke(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("smoke failed: {message}");
                ExitCode::FAILURE
            }
        };
    }
    match run_load(&args) {
        Ok((report, failed)) => {
            println!("{report}");
            if let Some(path) = &args.json {
                if let Err(err) = std::fs::write(path, &report) {
                    eprintln!("failed to write {path}: {err}");
                    return ExitCode::FAILURE;
                }
            }
            // Failed requests (not Busy/Timeout backpressure) are a
            // correctness signal: surface them in the exit code so CI legs
            // notice, unless the caller opted into expected faults.
            if failed > 0 && !args.allow_failures {
                eprintln!("loadgen: {failed} failed requests (pass --allow-failures to tolerate)");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("loadgen failed: {message}");
            ExitCode::FAILURE
        }
    }
}
