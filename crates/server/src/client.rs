//! A small blocking client for the wire protocol.
//!
//! Used by the load generator, the CI smoke test and the integration tests;
//! it is also the reference decoder for anyone writing a client in another
//! language. One [`Client`] wraps one connection and reuses its frame
//! buffers across calls.

use crate::protocol::{
    self, opcode, EdgeEdit, RunRequest, Status, UpdateRequest, ValueKind, PROTOCOL_VERSION,
};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A decoded RUN response.
#[derive(Clone, Debug)]
pub struct RunReply {
    /// Outcome status.
    pub status: Status,
    /// Error message (empty on success).
    pub message: String,
    /// Version of the graph snapshot the run executed against.
    pub snapshot_version: u64,
    /// Server-side service time in microseconds.
    pub elapsed_micros: u64,
    /// Supersteps the engine executed.
    pub iterations: u32,
    /// Element type of the result vector (`None` on error).
    pub value_kind: Option<ValueKind>,
    /// FNV-1a 64 over the little-endian value bytes.
    pub checksum: u64,
    /// Number of result values.
    pub num_values: u32,
    /// Raw little-endian value bytes (empty unless the request asked for
    /// values). Decode with the `values_*` accessors.
    pub values: Vec<u8>,
}

impl RunReply {
    /// Whether the run succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == Status::Ok
    }

    fn decode_values<T, const N: usize>(&self, from_le: fn([u8; N]) -> T) -> Option<Vec<T>> {
        if self.values.len() != self.num_values as usize * N {
            return None;
        }
        Some(
            self.values
                .chunks_exact(N)
                .map(|chunk| {
                    let mut arr = [0u8; N];
                    arr.copy_from_slice(chunk);
                    from_le(arr)
                })
                .collect(),
        )
    }

    /// The result vector as `f64` (PageRank).
    pub fn values_f64(&self) -> Option<Vec<f64>> {
        (self.value_kind == Some(ValueKind::F64))
            .then(|| self.decode_values(f64::from_le_bytes))
            .flatten()
    }

    /// The result vector as `u32` (BFS, components).
    pub fn values_u32(&self) -> Option<Vec<u32>> {
        (self.value_kind == Some(ValueKind::U32))
            .then(|| self.decode_values(u32::from_le_bytes))
            .flatten()
    }

    /// The result vector as `f32` (SSSP).
    pub fn values_f32(&self) -> Option<Vec<f32>> {
        (self.value_kind == Some(ValueKind::F32))
            .then(|| self.decode_values(f32::from_le_bytes))
            .flatten()
    }

    /// The result vector as `u64` (degrees).
    pub fn values_u64(&self) -> Option<Vec<u64>> {
        (self.value_kind == Some(ValueKind::U64))
            .then(|| self.decode_values(u64::from_le_bytes))
            .flatten()
    }
}

/// A decoded UPDATE response.
#[derive(Clone, Debug)]
pub struct UpdateReply {
    /// Outcome status.
    pub status: Status,
    /// Error message (empty on success).
    pub message: String,
    /// Version of the snapshot this batch published.
    pub snapshot_version: u64,
    /// Edges in the published `(base ⊕ delta)` graph.
    pub num_edges: u64,
    /// Resolved edits still pending in the delta overlay.
    pub delta_edges: u64,
    /// Compactions performed since the server started.
    pub compactions: u64,
}

impl UpdateReply {
    /// Whether the batch was applied.
    pub fn is_ok(&self) -> bool {
        self.status == Status::Ok
    }
}

/// One blocking protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    request_buf: Vec<u8>,
    reply_buf: Vec<u8>,
}

fn malformed(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed reply: {what}"),
    )
}

/// Decode a little-endian `u32` from the first 4 bytes (callers length-check
/// first).
fn le_u32(bytes: &[u8]) -> u32 {
    let mut arr = [0u8; 4];
    arr.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(arr)
}

/// Decode a little-endian `u64` from the first 8 bytes (callers length-check
/// first).
fn le_u64(bytes: &[u8]) -> u64 {
    let mut arr = [0u8; 8];
    arr.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(arr)
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            request_buf: Vec::new(),
            reply_buf: Vec::new(),
        })
    }

    fn round_trip(&mut self) -> io::Result<()> {
        protocol::write_frame(&mut self.writer, &self.request_buf)?;
        protocol::read_frame(&mut self.reader, &mut self.reply_buf)
    }

    /// Split the common `version | status` reply prefix; returns the status
    /// and the remaining body.
    fn reply_prefix(&self) -> io::Result<(Status, &[u8])> {
        let body = &self.reply_buf;
        if body.len() < 2 {
            return Err(malformed("body shorter than version + status"));
        }
        if body[0] != PROTOCOL_VERSION {
            return Err(malformed("unexpected protocol version"));
        }
        let status = Status::from_u8(body[1]).ok_or_else(|| malformed("unknown status byte"))?;
        Ok((status, &body[2..]))
    }

    fn error_message(rest: &[u8]) -> String {
        if rest.len() >= 4 {
            let len = le_u32(rest) as usize;
            if rest.len() >= 4 + len {
                return String::from_utf8_lossy(&rest[4..4 + len]).into_owned();
            }
        }
        String::new()
    }

    /// Execute one RUN request.
    pub fn run(&mut self, request: &RunRequest) -> io::Result<RunReply> {
        self.request_buf.clear();
        request.encode(&mut self.request_buf);
        self.round_trip()?;
        let (status, rest) = self.reply_prefix()?;
        if status != Status::Ok {
            return Ok(RunReply {
                status,
                message: Self::error_message(rest),
                snapshot_version: 0,
                elapsed_micros: 0,
                iterations: 0,
                value_kind: None,
                checksum: 0,
                num_values: 0,
                values: Vec::new(),
            });
        }
        // snapshot_version u64 | elapsed u64 | iterations u32 | kind u8 |
        // checksum u64 | count u32
        if rest.len() < 33 {
            return Err(malformed("RUN ok header truncated"));
        }
        let value_kind =
            ValueKind::from_u8(rest[20]).ok_or_else(|| malformed("unknown value kind"))?;
        Ok(RunReply {
            status,
            message: String::new(),
            snapshot_version: le_u64(rest),
            elapsed_micros: le_u64(&rest[8..16]),
            iterations: le_u32(&rest[16..20]),
            value_kind: Some(value_kind),
            checksum: le_u64(&rest[21..29]),
            num_values: le_u32(&rest[29..33]),
            values: rest[33..].to_vec(),
        })
    }

    /// Apply one batch of edge edits; returns the published snapshot's
    /// stats, or the typed error status for rejected batches.
    pub fn update(&mut self, edits: &[EdgeEdit]) -> io::Result<UpdateReply> {
        self.request_buf.clear();
        UpdateRequest::new(edits.to_vec()).encode(&mut self.request_buf);
        self.round_trip()?;
        let (status, rest) = self.reply_prefix()?;
        if status != Status::Ok {
            return Ok(UpdateReply {
                status,
                message: Self::error_message(rest),
                snapshot_version: 0,
                num_edges: 0,
                delta_edges: 0,
                compactions: 0,
            });
        }
        // snapshot_version u64 | num_edges u64 | delta_edges u64 |
        // compactions u64
        if rest.len() < 32 {
            return Err(malformed("UPDATE ok body truncated"));
        }
        Ok(UpdateReply {
            status,
            message: String::new(),
            snapshot_version: le_u64(rest),
            num_edges: le_u64(&rest[8..16]),
            delta_edges: le_u64(&rest[16..24]),
            compactions: le_u64(&rest[24..32]),
        })
    }

    /// Fetch the STATS snapshot as a JSON string.
    pub fn stats_json(&mut self) -> io::Result<String> {
        self.control(opcode::STATS)?;
        let (status, rest) = self.reply_prefix()?;
        if status != Status::Ok {
            return Err(malformed("STATS returned an error status"));
        }
        if rest.len() < 4 {
            return Err(malformed("STATS payload truncated"));
        }
        let len = le_u32(rest) as usize;
        if rest.len() < 4 + len {
            return Err(malformed("STATS payload shorter than its length"));
        }
        String::from_utf8(rest[4..4 + len].to_vec()).map_err(|_| malformed("STATS not UTF-8"))
    }

    /// Liveness probe; errors if the server replies anything but OK.
    pub fn ping(&mut self) -> io::Result<()> {
        self.control(opcode::PING)?;
        let (status, _) = self.reply_prefix()?;
        if status != Status::Ok {
            return Err(malformed("PING returned an error status"));
        }
        Ok(())
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.control(opcode::SHUTDOWN)?;
        let (status, _) = self.reply_prefix()?;
        if status != Status::Ok {
            return Err(malformed("SHUTDOWN returned an error status"));
        }
        Ok(())
    }

    fn control(&mut self, op: u8) -> io::Result<()> {
        self.request_buf.clear();
        self.request_buf.push(PROTOCOL_VERSION);
        self.request_buf.push(op);
        self.round_trip()
    }

    /// Send raw bytes as one frame and read one reply frame back — the
    /// robustness tests use this to speak malformed protocol on purpose.
    pub fn raw_round_trip(&mut self, body: &[u8]) -> io::Result<Vec<u8>> {
        protocol::write_frame(&mut self.writer, body)?;
        protocol::read_frame(&mut self.reader, &mut self.reply_buf)?;
        Ok(self.reply_buf.clone())
    }

    /// Write raw bytes (not necessarily a whole frame) without reading a
    /// reply. For truncated-frame tests.
    pub fn raw_write(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Read one raw reply frame (for use after [`Client::raw_write`]).
    pub fn raw_read(&mut self) -> io::Result<Vec<u8>> {
        protocol::read_frame(&mut self.reader, &mut self.reply_buf)?;
        Ok(self.reply_buf.clone())
    }

    /// Read a single byte, expecting EOF — asserts the server dropped the
    /// connection. Returns `true` on clean EOF.
    pub fn expect_eof(&mut self) -> bool {
        let mut byte = [0u8; 1];
        matches!(self.reader.read(&mut byte), Ok(0))
    }
}
