//! A long-running graph query server over one resident GraphMat session.
//!
//! GraphMat's architecture — an immutable, partition-parallel
//! `Arc<Topology>` plus cheap per-run `VertexState`s — is exactly the shape
//! of a serving system: build the matrix once, answer many queries. This
//! crate is that serving layer, built on `std` only (no async runtime, no
//! external protocol library):
//!
//! * [`protocol`] — length-prefixed binary frames with a versioned
//!   request/response codec: algorithm id, seed, iteration bound,
//!   per-request timeout, optional full result values, FNV-1a result
//!   checksums, typed error statuses;
//! * [`service`] — [`service::GraphService`] (session + resident topology)
//!   and [`service::WorkerStates`] (per-worker, per-algorithm
//!   `StatePool`s), dispatching wire requests to the pooled `*_into`
//!   algorithm drivers so steady-state serving allocates nothing per query;
//! * [`queue`] — the bounded admission queue: overload is an immediate
//!   `Busy` rejection, not unbounded latency;
//! * [`server`] — acceptor + connection threads + worker pool, per-request
//!   deadline enforcement (expired-in-queue and mid-run), graceful
//!   shutdown that drains admitted work;
//! * [`metrics`] — per-algorithm counters and p50/p95/p99 latency
//!   histograms behind the `STATS` endpoint and a periodic log line;
//! * [`client`] — the blocking reference client used by the `loadgen` bin,
//!   the CI smoke test and the integration tests;
//! * [`resilience`] — [`resilience::ResilientClient`]: retry with
//!   decorrelated-jitter backoff for idempotent operations (never UPDATE)
//!   plus a per-endpoint circuit breaker.
//!
//! ```no_run
//! use graphmat_core::Session;
//! use graphmat_io::{edgelist::EdgeList, rmat::RmatConfig};
//! use graphmat_server::{Algorithm, Client, GraphService, RunRequest, Server, ServerConfig};
//!
//! let edges: EdgeList<f32> = graphmat_io::rmat::generate(
//!     &RmatConfig::graph500(10).with_weights(1, 10),
//! );
//! let session = Session::with_threads(2)?;
//! let topology = session.build_graph(&edges).finish()?;
//! let server = Server::bind(
//!     "127.0.0.1:0",
//!     GraphService::new(session, topology),
//!     ServerConfig::default(),
//! )?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! let reply = client.run(&RunRequest::new(Algorithm::Bfs).seed(0))?;
//! assert!(reply.is_ok());
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod resilience;
pub mod server;
pub mod service;

pub use client::{Client, RunReply, UpdateReply};
pub use metrics::Metrics;
pub use protocol::{Algorithm, EdgeEdit, RunRequest, Status, UpdateRequest, ValueKind};
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, ResilienceStats, ResilientClient, RetryPolicy,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{GraphService, WorkerStates};
