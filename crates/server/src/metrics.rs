//! Observability: request counters, latency histograms and JSON snapshots.
//!
//! Everything is lock-free (`AtomicU64`, relaxed ordering) so the serving
//! hot path pays a handful of uncontended atomic increments per request.
//! Latencies go into power-of-two histograms; quantiles are read as the
//! upper bound of the bucket holding the target rank, which is exact to
//! within 2× — plenty for p50/p95/p99 dashboards and regression gates.
//!
//! The [`Metrics::to_json`] snapshot backs the `STATS` endpoint; the bench
//! harness's `BENCH_serving` series and the CI smoke test both scrape it.

use crate::protocol::Algorithm;
use graphmat_core::StoreStats;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Number of power-of-two latency buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` microseconds, so 40 buckets span 1 µs to ~18 minutes.
const BUCKETS: usize = 40;

/// A fixed-bucket log₂ latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency sample.
    pub fn record(&self, micros: u64) {
        let idx = (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_micros.fetch_add(micros, Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Approximate quantile in microseconds: the upper bound of the bucket
    /// containing the `q`-th ranked sample (0 when empty).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// Per-algorithm request accounting.
#[derive(Debug, Default)]
pub struct AlgoMetrics {
    /// Requests admitted for decode (every RUN with this algorithm id).
    pub requests: AtomicU64,
    /// Completed successfully.
    pub ok: AtomicU64,
    /// Rejected at admission because the queue was full.
    pub busy: AtomicU64,
    /// Deadline expired (queued or mid-run).
    pub timeout: AtomicU64,
    /// Failed inside the engine (or invalid seed).
    pub failed: AtomicU64,
    /// Service-time histogram of successful runs.
    pub latency: LatencyHistogram,
}

/// Server-wide metrics registry.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    algos: [AlgoMetrics; Algorithm::ALL.len()],
    /// STATS requests served.
    pub stats_requests: AtomicU64,
    /// PING requests served.
    pub pings: AtomicU64,
    /// Frames that failed to decode into a request.
    pub bad_requests: AtomicU64,
    /// UPDATE batches applied successfully.
    pub updates: AtomicU64,
    /// Edge edits contained in applied UPDATE batches.
    pub update_edits: AtomicU64,
    /// UPDATE batches rejected (out-of-range vertices, store errors).
    pub update_failed: AtomicU64,
    /// UPDATE batches shed because the store's pending-delta watermark was
    /// hit (a subset of `update_failed`'s sibling counter — overload is its
    /// own bucket, not a failure of the batch).
    pub update_overloaded: AtomicU64,
    /// Connections dropped for framing violations (oversized prefix,
    /// mid-frame stalls) or write-side stalls (half-open peers).
    pub dropped_connections: AtomicU64,
    /// Run executions that panicked and were isolated (typed `ServerError`
    /// reply, state quarantined, worker kept serving).
    pub worker_panics: AtomicU64,
    /// Worker lanes respawned by the supervisor after dying outside the
    /// panic-isolation guard.
    pub worker_restarts: AtomicU64,
    /// `VertexState`s allocated by worker pools — constant after warm-up
    /// ⇔ steady-state serving allocates no per-query state.
    pub pool_created: AtomicU64,
    /// Pool acquisitions served by recycling instead of allocation.
    pub pool_reused: AtomicU64,
    /// Possibly-corrupt `VertexState`s retired after a panic instead of
    /// recycled.
    pub pool_quarantined: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            algos: Default::default(),
            stats_requests: AtomicU64::new(0),
            pings: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            update_edits: AtomicU64::new(0),
            update_failed: AtomicU64::new(0),
            update_overloaded: AtomicU64::new(0),
            dropped_connections: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            pool_created: AtomicU64::new(0),
            pool_reused: AtomicU64::new(0),
            pool_quarantined: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// The counter block for one algorithm.
    pub fn algo(&self, algorithm: Algorithm) -> &AlgoMetrics {
        &self.algos[algorithm as usize]
    }

    /// Seconds since the server started.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Total successful runs across all algorithms.
    pub fn total_ok(&self) -> u64 {
        self.algos.iter().map(|a| a.ok.load(Relaxed)).sum()
    }

    /// Total RUN requests across all algorithms.
    pub fn total_requests(&self) -> u64 {
        self.algos.iter().map(|a| a.requests.load(Relaxed)).sum()
    }

    /// Total busy rejections across all algorithms.
    pub fn total_busy(&self) -> u64 {
        self.algos.iter().map(|a| a.busy.load(Relaxed)).sum()
    }

    /// Total timeouts across all algorithms.
    pub fn total_timeout(&self) -> u64 {
        self.algos.iter().map(|a| a.timeout.load(Relaxed)).sum()
    }

    /// Total engine failures across all algorithms.
    pub fn total_failed(&self) -> u64 {
        self.algos.iter().map(|a| a.failed.load(Relaxed)).sum()
    }

    /// The STATS endpoint snapshot. `num_vertices` and the `store` counters
    /// describe the currently published graph snapshot so clients can size
    /// seeds without a side channel; the store block also exposes the
    /// streaming/self-healing state (`delta_edges`, `compactions`,
    /// `compaction_failures`, `compaction_restarts`).
    pub fn to_json(&self, num_vertices: u64, store: &StoreStats) -> String {
        use std::fmt::Write;
        let uptime = self.uptime_secs();
        let ok = self.total_ok();
        let qps = if uptime > 0.0 {
            ok as f64 / uptime
        } else {
            0.0
        };
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"uptime_secs\":{uptime:.3},\"num_vertices\":{num_vertices},\
             \"num_edges\":{num_edges},\"qps\":{qps:.2},\
             \"store\":{{\"snapshot_version\":{snapshot_version},\
             \"delta_edges\":{delta_edges},\"compactions\":{compactions},\
             \"compaction_failures\":{compaction_failures},\
             \"compaction_restarts\":{compaction_restarts},\
             \"updates\":{},\"update_edits\":{},\"update_failed\":{},\
             \"update_overloaded\":{}}},\
             \"pool\":{{\"created\":{},\"reused\":{},\"quarantined\":{}}},\
             \"totals\":{{\"requests\":{},\"ok\":{ok},\"busy\":{},\
             \"timeout\":{},\"failed\":{},\"bad_requests\":{},\
             \"dropped_connections\":{},\"worker_panics\":{},\
             \"worker_restarts\":{},\"stats_requests\":{},\"pings\":{}}},\
             \"algorithms\":{{",
            self.updates.load(Relaxed),
            self.update_edits.load(Relaxed),
            self.update_failed.load(Relaxed),
            self.update_overloaded.load(Relaxed),
            self.pool_created.load(Relaxed),
            self.pool_reused.load(Relaxed),
            self.pool_quarantined.load(Relaxed),
            self.total_requests(),
            self.total_busy(),
            self.total_timeout(),
            self.total_failed(),
            self.bad_requests.load(Relaxed),
            self.dropped_connections.load(Relaxed),
            self.worker_panics.load(Relaxed),
            self.worker_restarts.load(Relaxed),
            self.stats_requests.load(Relaxed),
            self.pings.load(Relaxed),
            num_edges = store.num_edges as u64,
            snapshot_version = store.version,
            delta_edges = store.delta_edges as u64,
            compactions = store.compactions,
            compaction_failures = store.compaction_failures,
            compaction_restarts = store.compaction_restarts,
        );
        for (i, algorithm) in Algorithm::ALL.iter().enumerate() {
            let a = self.algo(*algorithm);
            let _ = write!(
                out,
                "{}\"{}\":{{\"requests\":{},\"ok\":{},\"busy\":{},\
                 \"timeout\":{},\"failed\":{},\"mean_us\":{},\
                 \"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
                if i == 0 { "" } else { "," },
                algorithm.name(),
                a.requests.load(Relaxed),
                a.ok.load(Relaxed),
                a.busy.load(Relaxed),
                a.timeout.load(Relaxed),
                a.failed.load(Relaxed),
                a.latency.mean_micros(),
                a.latency.quantile_micros(0.50),
                a.latency.quantile_micros(0.95),
                a.latency.quantile_micros(0.99),
            );
        }
        out.push_str("}}");
        out
    }

    /// One-line periodic log summary.
    pub fn log_line(&self) -> String {
        format!(
            "up={:.0}s qps={:.1} ok={} busy={} timeout={} failed={} bad={} pool_created={} pool_reused={}",
            self.uptime_secs(),
            if self.uptime_secs() > 0.0 {
                self.total_ok() as f64 / self.uptime_secs()
            } else {
                0.0
            },
            self.total_ok(),
            self.total_busy(),
            self.total_timeout(),
            self.total_failed(),
            self.bad_requests.load(Relaxed),
            self.pool_created.load(Relaxed),
            self.pool_reused.load(Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = LatencyHistogram::default();
        for micros in [10, 20, 30, 40, 1000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean_micros(), 220);
        // p50 sample is 30 µs → bucket [16,32) → upper bound 32
        assert_eq!(h.quantile_micros(0.50), 32);
        // p99 sample is 1000 µs → bucket [512,1024) → upper bound 1024
        assert_eq!(h.quantile_micros(0.99), 1024);
        // empty histogram reports zeros
        let empty = LatencyHistogram::default();
        assert_eq!(empty.quantile_micros(0.99), 0);
        assert_eq!(empty.mean_micros(), 0);
    }

    #[test]
    fn snapshot_is_wellformed_json_with_all_algorithms() {
        let m = Metrics::default();
        m.algo(Algorithm::Bfs).requests.fetch_add(3, Relaxed);
        m.algo(Algorithm::Bfs).ok.fetch_add(2, Relaxed);
        m.algo(Algorithm::Bfs).latency.record(120);
        let json = m.to_json(
            100,
            &StoreStats {
                version: 3,
                num_edges: 500,
                delta_edges: 12,
                compactions: 1,
                compaction_failures: 2,
                compaction_restarts: 2,
            },
        );
        for key in [
            "\"num_vertices\":100",
            "\"num_edges\":500",
            "\"snapshot_version\":3",
            "\"delta_edges\":12",
            "\"compactions\":1",
            "\"compaction_failures\":2",
            "\"compaction_restarts\":2",
            "\"update_overloaded\"",
            "\"worker_panics\"",
            "\"worker_restarts\"",
            "\"quarantined\"",
            "\"update_edits\"",
            "\"pagerank\"",
            "\"bfs\"",
            "\"sssp\"",
            "\"components\"",
            "\"in_degrees\"",
            "\"p99_us\"",
            "\"pool\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // crude balance check — the snapshot must at least nest correctly
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
    }
}
