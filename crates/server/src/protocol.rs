//! Wire protocol: length-prefixed binary frames with a versioned codec.
//!
//! Every message — request or response — is one **frame**: a little-endian
//! `u32` byte length followed by that many body bytes. Bodies start with a
//! protocol version byte so the codec can evolve, followed by an opcode
//! (requests) or a status byte (responses). All multi-byte integers are
//! little-endian.
//!
//! Request bodies:
//!
//! ```text
//! RUN:      version u8 | opcode=1 | algorithm u8 | flags u8 |
//!           timeout_ms u32 | iterations u32 | seed u64        (20 bytes)
//! STATS:    version u8 | opcode=2                             (2 bytes)
//! PING:     version u8 | opcode=3                             (2 bytes)
//! SHUTDOWN: version u8 | opcode=4                             (2 bytes)
//! UPDATE:   version u8 | opcode=5 | flags u8 (must be 0) | count u32 |
//!           count × { op u8 (0=insert, 1=delete) | src u32 | dst u32 |
//!                     weight f32 }                   (7 + 13·count bytes)
//! ```
//!
//! Response bodies:
//!
//! ```text
//! error:     version u8 | status!=0 | msg_len u32 | msg utf-8
//! RUN ok:    version u8 | status=0  | snapshot_version u64 |
//!            elapsed_micros u64 | iterations u32 | value_kind u8 |
//!            checksum u64 | num_values u32 |
//!            [num_values values, little-endian]   (only if requested)
//! UPDATE ok: version u8 | status=0  | snapshot_version u64 |
//!            num_edges u64 | delta_edges u64 | compactions u64
//! STATS ok:  version u8 | status=0  | json_len u32 | json utf-8
//! PING ok / SHUTDOWN ok: version u8 | status=0
//! ```
//!
//! The `checksum` is FNV-1a 64 over the little-endian value bytes, so a
//! client can verify a result against a local run without shipping the full
//! vector. `snapshot_version` is the version of the immutable graph snapshot
//! the run was admitted against (the number of UPDATE batches applied before
//! it), so a client can pin a result to the exact graph state that produced
//! it. Decoding is strict: wrong version, unknown opcode/algorithm,
//! undefined flag bits, and bodies of the wrong length all produce a typed
//! error status — never a panic.

use std::io::{self, Read, Write};

/// Current protocol version; bumped on any incompatible codec change.
/// Version 2 added the `UPDATE` opcode and the `snapshot_version` field in
/// the RUN ok header.
pub const PROTOCOL_VERSION: u8 = 2;

/// Upper bound on a frame body. Large enough for the value vector of a
/// 2M-vertex f64 result; anything bigger is a corrupt or hostile length
/// prefix and the connection is dropped after a typed error.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Request opcodes.
pub mod opcode {
    /// Execute one algorithm run.
    pub const RUN: u8 = 1;
    /// Fetch the observability snapshot as JSON.
    pub const STATS: u8 = 2;
    /// Liveness probe.
    pub const PING: u8 = 3;
    /// Begin graceful shutdown (drains in-flight requests).
    pub const SHUTDOWN: u8 = 4;
    /// Apply one batch of edge insertions/deletions to the resident graph.
    pub const UPDATE: u8 = 5;
}

/// Response status byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request succeeded.
    Ok = 0,
    /// Admission queue full — retry later (fast rejection under overload).
    Busy = 1,
    /// The request deadline expired, either while queued or mid-run.
    Timeout = 2,
    /// The request was malformed (bad version, length, flags, or seed).
    BadRequest = 3,
    /// The algorithm id is not one this server knows.
    UnknownAlgorithm = 4,
    /// The run failed inside the engine.
    ServerError = 5,
    /// The server is draining and no longer admits new runs.
    ShuttingDown = 6,
    /// The store's pending-delta high-watermark was hit: the write was shed
    /// to protect the serving path. Reads keep working; retry the write
    /// after compaction drains the backlog.
    Overloaded = 7,
}

impl Status {
    /// Decode a status byte.
    pub fn from_u8(byte: u8) -> Option<Status> {
        Some(match byte {
            0 => Status::Ok,
            1 => Status::Busy,
            2 => Status::Timeout,
            3 => Status::BadRequest,
            4 => Status::UnknownAlgorithm,
            5 => Status::ServerError,
            6 => Status::ShuttingDown,
            7 => Status::Overloaded,
            _ => return None,
        })
    }
}

/// The algorithms the server can run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Algorithm {
    /// PageRank; `iterations` bounds the run (0 = server default).
    PageRank = 0,
    /// BFS hop distances from `seed`.
    Bfs = 1,
    /// Single-source shortest paths from `seed`.
    Sssp = 2,
    /// Connected components by label propagation.
    ConnectedComponents = 3,
    /// In-degree of every vertex.
    InDegrees = 4,
}

impl Algorithm {
    /// Every algorithm, in wire-id order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::PageRank,
        Algorithm::Bfs,
        Algorithm::Sssp,
        Algorithm::ConnectedComponents,
        Algorithm::InDegrees,
    ];

    /// Decode a wire id.
    pub fn from_u8(byte: u8) -> Option<Algorithm> {
        Some(match byte {
            0 => Algorithm::PageRank,
            1 => Algorithm::Bfs,
            2 => Algorithm::Sssp,
            3 => Algorithm::ConnectedComponents,
            4 => Algorithm::InDegrees,
            _ => return None,
        })
    }

    /// Stable lowercase name (metrics keys, loadgen mix specs).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PageRank => "pagerank",
            Algorithm::Bfs => "bfs",
            Algorithm::Sssp => "sssp",
            Algorithm::ConnectedComponents => "components",
            Algorithm::InDegrees => "in_degrees",
        }
    }
}

/// Element type of a RUN result vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ValueKind {
    /// `f64` (PageRank ranks).
    F64 = 0,
    /// `u32` (BFS distances, component labels).
    U32 = 1,
    /// `f32` (SSSP distances).
    F32 = 2,
    /// `u64` (degree counts).
    U64 = 3,
}

impl ValueKind {
    /// Decode a wire id.
    pub fn from_u8(byte: u8) -> Option<ValueKind> {
        Some(match byte {
            0 => ValueKind::F64,
            1 => ValueKind::U32,
            2 => ValueKind::F32,
            3 => ValueKind::U64,
            _ => return None,
        })
    }

    /// Bytes per element on the wire.
    pub fn width(self) -> usize {
        match self {
            ValueKind::U32 | ValueKind::F32 => 4,
            ValueKind::F64 | ValueKind::U64 => 8,
        }
    }
}

/// Flag bit: include the full value vector in the RUN response (otherwise
/// only the checksum is returned).
pub const FLAG_INCLUDE_VALUES: u8 = 0b0000_0001;

/// A decoded RUN request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunRequest {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Ship the full value vector back (not just the checksum).
    pub include_values: bool,
    /// Per-request deadline in milliseconds; 0 = server default.
    pub timeout_ms: u32,
    /// Iteration bound for iteration-driven algorithms (PageRank);
    /// 0 = server default. Ignored by convergence-driven algorithms.
    pub iterations: u32,
    /// Seed vertex (BFS root / SSSP source). Ignored by seedless algorithms.
    pub seed: u64,
}

impl RunRequest {
    /// A request with default options (checksum only, server-default
    /// timeout, seed 0).
    pub fn new(algorithm: Algorithm) -> RunRequest {
        RunRequest {
            algorithm,
            include_values: false,
            timeout_ms: 0,
            iterations: 0,
            seed: 0,
        }
    }

    /// Set the seed vertex (BFS root / SSSP source).
    pub fn seed(mut self, seed: u64) -> RunRequest {
        self.seed = seed;
        self
    }

    /// Set the iteration bound (PageRank).
    pub fn iterations(mut self, iterations: u32) -> RunRequest {
        self.iterations = iterations;
        self
    }

    /// Set the per-request deadline in milliseconds.
    pub fn timeout_ms(mut self, timeout_ms: u32) -> RunRequest {
        self.timeout_ms = timeout_ms;
        self
    }

    /// Request the full value vector in the response.
    pub fn include_values(mut self, include: bool) -> RunRequest {
        self.include_values = include;
        self
    }

    /// Encode into a frame body.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(PROTOCOL_VERSION);
        buf.push(opcode::RUN);
        buf.push(self.algorithm as u8);
        buf.push(if self.include_values {
            FLAG_INCLUDE_VALUES
        } else {
            0
        });
        buf.extend_from_slice(&self.timeout_ms.to_le_bytes());
        buf.extend_from_slice(&self.iterations.to_le_bytes());
        buf.extend_from_slice(&self.seed.to_le_bytes());
    }
}

/// Exact body length of a RUN request frame.
const RUN_BODY_LEN: usize = 20;

/// One edge edit inside an UPDATE batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeEdit {
    /// `true` = insert/upsert with `weight`; `false` = delete (weight
    /// ignored, encoded as 0).
    pub insert: bool,
    /// Source vertex id.
    pub src: u32,
    /// Destination vertex id.
    pub dst: u32,
    /// Edge weight for inserts.
    pub weight: f32,
}

impl EdgeEdit {
    /// An insert/upsert edit.
    pub fn insert(src: u32, dst: u32, weight: f32) -> EdgeEdit {
        EdgeEdit {
            insert: true,
            src,
            dst,
            weight,
        }
    }

    /// A delete edit.
    pub fn delete(src: u32, dst: u32) -> EdgeEdit {
        EdgeEdit {
            insert: false,
            src,
            dst,
            weight: 0.0,
        }
    }
}

/// A decoded UPDATE request: one batch of edge edits applied atomically —
/// readers see either the previous snapshot or the whole batch.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct UpdateRequest {
    /// The edits, applied in order (later edits to the same `(src, dst)`
    /// pair win).
    pub edits: Vec<EdgeEdit>,
}

/// Bytes per encoded edge edit: op u8 + src u32 + dst u32 + weight f32.
const EDIT_RECORD_LEN: usize = 13;

/// Fixed prefix of an UPDATE body: version, opcode, flags, count.
const UPDATE_PREFIX_LEN: usize = 7;

impl UpdateRequest {
    /// Wrap a batch of edits.
    pub fn new(edits: Vec<EdgeEdit>) -> UpdateRequest {
        UpdateRequest { edits }
    }

    /// Encode into a frame body.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(PROTOCOL_VERSION);
        buf.push(opcode::UPDATE);
        buf.push(0); // flags: none defined
        buf.extend_from_slice(&(self.edits.len() as u32).to_le_bytes());
        for edit in &self.edits {
            buf.push(if edit.insert { 0 } else { 1 });
            buf.extend_from_slice(&edit.src.to_le_bytes());
            buf.extend_from_slice(&edit.dst.to_le_bytes());
            buf.extend_from_slice(&edit.weight.to_le_bytes());
        }
    }
}

/// A decoded request of any opcode.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Execute one algorithm run.
    Run(RunRequest),
    /// Apply one batch of edge edits.
    Update(UpdateRequest),
    /// Fetch the observability snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Begin graceful shutdown.
    Shutdown,
}

/// A request decode failure: the status to reply with plus a human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Status byte for the error response.
    pub status: Status,
    /// Human-readable diagnosis.
    pub message: String,
}

impl DecodeError {
    fn bad(message: impl Into<String>) -> DecodeError {
        DecodeError {
            status: Status::BadRequest,
            message: message.into(),
        }
    }
}

impl Request {
    /// Decode a frame body. Strict: every malformed shape is a typed error.
    pub fn decode(body: &[u8]) -> Result<Request, DecodeError> {
        if body.len() < 2 {
            return Err(DecodeError::bad(format!(
                "frame body too short: {} bytes (need at least version + opcode)",
                body.len()
            )));
        }
        if body[0] != PROTOCOL_VERSION {
            return Err(DecodeError::bad(format!(
                "unsupported protocol version {} (server speaks {PROTOCOL_VERSION})",
                body[0]
            )));
        }
        match body[1] {
            opcode::RUN => {
                if body.len() != RUN_BODY_LEN {
                    return Err(DecodeError::bad(format!(
                        "RUN body must be exactly {RUN_BODY_LEN} bytes, got {}",
                        body.len()
                    )));
                }
                let algorithm = Algorithm::from_u8(body[2]).ok_or(DecodeError {
                    status: Status::UnknownAlgorithm,
                    message: format!("unknown algorithm id {}", body[2]),
                })?;
                let flags = body[3];
                if flags & !FLAG_INCLUDE_VALUES != 0 {
                    return Err(DecodeError::bad(format!(
                        "undefined flag bits 0b{flags:08b}"
                    )));
                }
                let le_u32 = |bytes: &[u8]| {
                    let mut arr = [0u8; 4];
                    arr.copy_from_slice(bytes);
                    u32::from_le_bytes(arr)
                };
                let le_u64 = |bytes: &[u8]| {
                    let mut arr = [0u8; 8];
                    arr.copy_from_slice(bytes);
                    u64::from_le_bytes(arr)
                };
                Ok(Request::Run(RunRequest {
                    algorithm,
                    include_values: flags & FLAG_INCLUDE_VALUES != 0,
                    timeout_ms: le_u32(&body[4..8]),
                    iterations: le_u32(&body[8..12]),
                    seed: le_u64(&body[12..20]),
                }))
            }
            opcode::UPDATE => {
                if body.len() < UPDATE_PREFIX_LEN {
                    return Err(DecodeError::bad(format!(
                        "UPDATE body must be at least {UPDATE_PREFIX_LEN} bytes, got {}",
                        body.len()
                    )));
                }
                let flags = body[2];
                if flags != 0 {
                    return Err(DecodeError::bad(format!(
                        "undefined UPDATE flag bits 0b{flags:08b}"
                    )));
                }
                let mut count_bytes = [0u8; 4];
                count_bytes.copy_from_slice(&body[3..7]);
                let count = u32::from_le_bytes(count_bytes) as usize;
                if count == 0 {
                    return Err(DecodeError::bad(
                        "UPDATE batch must contain at least one edit",
                    ));
                }
                let expected = UPDATE_PREFIX_LEN + count * EDIT_RECORD_LEN;
                if body.len() != expected {
                    return Err(DecodeError::bad(format!(
                        "UPDATE body for {count} edits must be exactly {expected} bytes, got {}",
                        body.len()
                    )));
                }
                let mut edits = Vec::with_capacity(count);
                for record in body[UPDATE_PREFIX_LEN..].chunks_exact(EDIT_RECORD_LEN) {
                    let insert = match record[0] {
                        0 => true,
                        1 => false,
                        op => {
                            return Err(DecodeError::bad(format!(
                                "unknown UPDATE edit op {op} (0=insert, 1=delete)"
                            )))
                        }
                    };
                    let le_u32 = |bytes: &[u8]| {
                        let mut arr = [0u8; 4];
                        arr.copy_from_slice(bytes);
                        u32::from_le_bytes(arr)
                    };
                    edits.push(EdgeEdit {
                        insert,
                        src: le_u32(&record[1..5]),
                        dst: le_u32(&record[5..9]),
                        weight: f32::from_le_bytes([record[9], record[10], record[11], record[12]]),
                    });
                }
                Ok(Request::Update(UpdateRequest { edits }))
            }
            op @ (opcode::STATS | opcode::PING | opcode::SHUTDOWN) => {
                if body.len() != 2 {
                    return Err(DecodeError::bad(format!(
                        "opcode {op} takes no operands, got {} trailing bytes",
                        body.len() - 2
                    )));
                }
                Ok(match op {
                    opcode::STATS => Request::Stats,
                    opcode::PING => Request::Ping,
                    _ => Request::Shutdown,
                })
            }
            op => Err(DecodeError::bad(format!("unknown opcode {op}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Response encoding (server side) — all into a caller-reused buffer.
// ---------------------------------------------------------------------------

/// Encode an error response.
pub fn encode_error(buf: &mut Vec<u8>, status: Status, message: &str) {
    buf.push(PROTOCOL_VERSION);
    buf.push(status as u8);
    buf.extend_from_slice(&(message.len() as u32).to_le_bytes());
    buf.extend_from_slice(message.as_bytes());
}

/// Header fields of a successful RUN response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOkHeader {
    /// Version of the graph snapshot the run executed against.
    pub snapshot_version: u64,
    /// Wall-clock service time of the run, in microseconds.
    pub elapsed_micros: u64,
    /// Supersteps the engine executed.
    pub iterations: u32,
    /// Element type of the result vector.
    pub value_kind: ValueKind,
    /// FNV-1a 64 over the little-endian value bytes.
    pub checksum: u64,
    /// Number of result values (= vertex count).
    pub num_values: u32,
}

/// Encode a successful RUN response header; the caller appends the raw
/// little-endian value bytes afterwards if the client asked for them.
pub fn encode_run_ok_header(buf: &mut Vec<u8>, header: &RunOkHeader) {
    buf.push(PROTOCOL_VERSION);
    buf.push(Status::Ok as u8);
    buf.extend_from_slice(&header.snapshot_version.to_le_bytes());
    buf.extend_from_slice(&header.elapsed_micros.to_le_bytes());
    buf.extend_from_slice(&header.iterations.to_le_bytes());
    buf.push(header.value_kind as u8);
    buf.extend_from_slice(&header.checksum.to_le_bytes());
    buf.extend_from_slice(&header.num_values.to_le_bytes());
}

/// Fields of a successful UPDATE response: the state of the newly published
/// snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateOkReply {
    /// Version of the snapshot this batch published.
    pub snapshot_version: u64,
    /// Edges in the published `(base ⊕ delta)` graph.
    pub num_edges: u64,
    /// Resolved edits still pending in the delta overlay (0 right after a
    /// compaction).
    pub delta_edges: u64,
    /// Compactions performed since the server started.
    pub compactions: u64,
}

/// Encode a successful UPDATE response.
pub fn encode_update_ok(buf: &mut Vec<u8>, reply: &UpdateOkReply) {
    buf.push(PROTOCOL_VERSION);
    buf.push(Status::Ok as u8);
    buf.extend_from_slice(&reply.snapshot_version.to_le_bytes());
    buf.extend_from_slice(&reply.num_edges.to_le_bytes());
    buf.extend_from_slice(&reply.delta_edges.to_le_bytes());
    buf.extend_from_slice(&reply.compactions.to_le_bytes());
}

/// Encode a successful payload-carrying response (STATS).
pub fn encode_ok_payload(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.push(PROTOCOL_VERSION);
    buf.push(Status::Ok as u8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Encode a successful empty response (PING, SHUTDOWN).
pub fn encode_ok_empty(buf: &mut Vec<u8>) {
    buf.push(PROTOCOL_VERSION);
    buf.push(Status::Ok as u8);
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame (length prefix + body) and flush.
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME_LEN);
    writer.write_all(&(body.len() as u32).to_le_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

/// Read one frame body into `buf` (blocking; used by clients). Fails with
/// `InvalidData` on an oversized length prefix.
pub fn read_frame(reader: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<()> {
    let mut header = [0u8; 4];
    reader.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds maximum {MAX_FRAME_LEN}"),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    reader.read_exact(buf)
}

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

/// Incremental FNV-1a 64 hasher over the little-endian value bytes.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Fold bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// FNV-1a 64 of a little-endian `f64` slice (client-side verification).
pub fn checksum_f64(values: &[f64]) -> u64 {
    let mut h = Fnv64::new();
    for v in values {
        h.write(&v.to_le_bytes());
    }
    h.finish()
}

/// FNV-1a 64 of a little-endian `u32` slice.
pub fn checksum_u32(values: &[u32]) -> u64 {
    let mut h = Fnv64::new();
    for v in values {
        h.write(&v.to_le_bytes());
    }
    h.finish()
}

/// FNV-1a 64 of a little-endian `f32` slice.
pub fn checksum_f32(values: &[f32]) -> u64 {
    let mut h = Fnv64::new();
    for v in values {
        h.write(&v.to_le_bytes());
    }
    h.finish()
}

/// FNV-1a 64 of a little-endian `u64` slice.
pub fn checksum_u64(values: &[u64]) -> u64 {
    let mut h = Fnv64::new();
    for v in values {
        h.write(&v.to_le_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_round_trips() {
        let req = RunRequest::new(Algorithm::Sssp)
            .seed(42)
            .iterations(7)
            .timeout_ms(250)
            .include_values(true);
        let mut buf = Vec::new();
        req.encode(&mut buf);
        assert_eq!(buf.len(), RUN_BODY_LEN);
        assert_eq!(Request::decode(&buf), Ok(Request::Run(req)));
    }

    #[test]
    fn control_opcodes_round_trip() {
        for (op, want) in [
            (opcode::STATS, Request::Stats),
            (opcode::PING, Request::Ping),
            (opcode::SHUTDOWN, Request::Shutdown),
        ] {
            assert_eq!(Request::decode(&[PROTOCOL_VERSION, op]), Ok(want));
        }
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        // empty / one-byte body
        assert_eq!(Request::decode(&[]).unwrap_err().status, Status::BadRequest);
        assert_eq!(
            Request::decode(&[PROTOCOL_VERSION]).unwrap_err().status,
            Status::BadRequest
        );
        // wrong version
        assert_eq!(
            Request::decode(&[99, opcode::PING]).unwrap_err().status,
            Status::BadRequest
        );
        // unknown opcode
        assert_eq!(
            Request::decode(&[PROTOCOL_VERSION, 200])
                .unwrap_err()
                .status,
            Status::BadRequest
        );
        // short RUN body
        assert_eq!(
            Request::decode(&[PROTOCOL_VERSION, opcode::RUN, 0, 0])
                .unwrap_err()
                .status,
            Status::BadRequest
        );
        // trailing junk on a control opcode
        assert_eq!(
            Request::decode(&[PROTOCOL_VERSION, opcode::PING, 7])
                .unwrap_err()
                .status,
            Status::BadRequest
        );
        // unknown algorithm id
        let mut buf = Vec::new();
        RunRequest::new(Algorithm::Bfs).encode(&mut buf);
        buf[2] = 99;
        assert_eq!(
            Request::decode(&buf).unwrap_err().status,
            Status::UnknownAlgorithm
        );
        // undefined flag bits
        buf[2] = Algorithm::Bfs as u8;
        buf[3] = 0b1000_0000;
        assert_eq!(
            Request::decode(&buf).unwrap_err().status,
            Status::BadRequest
        );
    }

    #[test]
    fn update_request_round_trips() {
        let req = UpdateRequest::new(vec![
            EdgeEdit::insert(0, 7, 2.5),
            EdgeEdit::delete(3, 4),
            EdgeEdit::insert(7, 0, -1.0),
        ]);
        let mut buf = Vec::new();
        req.encode(&mut buf);
        assert_eq!(buf.len(), UPDATE_PREFIX_LEN + 3 * EDIT_RECORD_LEN);
        assert_eq!(Request::decode(&buf), Ok(Request::Update(req)));
    }

    #[test]
    fn malformed_update_bodies_are_typed_errors() {
        let mut buf = Vec::new();
        UpdateRequest::new(vec![EdgeEdit::insert(1, 2, 1.0)]).encode(&mut buf);

        // zero-count batch
        let mut empty = buf.clone();
        empty[3..7].copy_from_slice(&0u32.to_le_bytes());
        empty.truncate(UPDATE_PREFIX_LEN);
        assert_eq!(
            Request::decode(&empty).unwrap_err().status,
            Status::BadRequest
        );
        // truncated prefix
        assert_eq!(
            Request::decode(&buf[..5]).unwrap_err().status,
            Status::BadRequest
        );
        // count disagrees with the body length
        let mut wrong_count = buf.clone();
        wrong_count[3..7].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(
            Request::decode(&wrong_count).unwrap_err().status,
            Status::BadRequest
        );
        // trailing junk
        let mut trailing = buf.clone();
        trailing.push(0);
        assert_eq!(
            Request::decode(&trailing).unwrap_err().status,
            Status::BadRequest
        );
        // undefined flag bits
        let mut flagged = buf.clone();
        flagged[2] = 0b0000_0100;
        assert_eq!(
            Request::decode(&flagged).unwrap_err().status,
            Status::BadRequest
        );
        // unknown edit op byte
        let mut bad_op = buf.clone();
        bad_op[UPDATE_PREFIX_LEN] = 9;
        assert_eq!(
            Request::decode(&bad_op).unwrap_err().status,
            Status::BadRequest
        );
    }

    #[test]
    fn fnv1a64_matches_reference_vector() {
        // FNV-1a 64 of "a" is a published test vector.
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn framing_round_trips_through_a_cursor() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        let mut reader = io::Cursor::new(wire);
        let mut body = Vec::new();
        read_frame(&mut reader, &mut body).unwrap();
        assert_eq!(body, b"hello");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_client_side() {
        let mut reader = io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        let mut body = Vec::new();
        let err = read_frame(&mut reader, &mut body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
