//! Bounded admission queue between connection threads and the worker pool.
//!
//! A `Mutex<VecDeque>` + `Condvar` multi-producer/multi-consumer queue with
//! a hard capacity. Producers never block: [`BoundedQueue::try_push`] fails
//! fast when the queue is full, which is what turns overload into immediate
//! `Busy` rejections instead of unbounded latency. Consumers block in
//! [`BoundedQueue::pop`] until an item arrives or the queue is closed *and*
//! drained — so closing the queue is exactly the graceful-shutdown
//! semantics: accepted work is finished, new work is refused.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock the queue mutex, shrugging off poisoning: the queue state is always
/// consistent between statements (single push/pop/flag updates), and the
/// accept loop must keep draining even if one connection thread panicked.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Why a push was refused; the item is handed back so the caller can reply
/// to the client with its (reused) buffer.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — reply `Busy`.
    Full(T),
    /// The queue is closed — reply `ShuttingDown`.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded, closable MPMC queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Non-blocking push; fails fast with the item when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = lock(&self.inner);
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` only once the queue is closed **and** empty, so
    /// workers drain accepted items before exiting.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = match self.not_empty.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Close the queue: future pushes fail, queued items remain poppable,
    /// and blocked consumers wake up.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        lock(&self.inner).items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_fast() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_queued_items_then_returns_none() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        match q.try_push(3) {
            Err(PushError::Closed(3)) => {}
            other => panic!("expected Closed(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
