//! Client-side resilience: retry with decorrelated-jitter backoff and a
//! per-endpoint circuit breaker.
//!
//! [`ResilientClient`] wraps the blocking [`Client`] with the two standard
//! defenses a caller needs against a flaky serving path:
//!
//! * a [`RetryPolicy`] — capped exponential backoff with decorrelated
//!   jitter and a lifetime retry budget, applied **only to idempotent
//!   operations** (RUN, STATS, PING). UPDATE is never auto-retried: a
//!   transport error leaves the batch's fate unknown, and replaying it
//!   could double-apply edits — that decision belongs to the caller;
//! * a [`CircuitBreaker`] — after enough consecutive failures the endpoint
//!   is considered down and calls fail fast (no connect, no backoff sleep)
//!   until a cooldown elapses; the first call after the cooldown is the
//!   half-open probe that either closes the breaker or re-opens it.
//!
//! Both are deterministic given the policy seed, so load tests that use
//! them stay reproducible.

use crate::client::{Client, RunReply, UpdateReply};
use crate::protocol::{EdgeEdit, RunRequest, Status};
use std::io;
use std::time::{Duration, Instant};

/// splitmix64 step — the jitter source (deterministic per seed).
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Retry tuning for idempotent operations.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Floor of the backoff window.
    pub base_backoff: Duration,
    /// Cap of the backoff window.
    pub max_backoff: Duration,
    /// Lifetime retry budget across all operations on one client — the
    /// backstop against a retry storm when the server is down for good.
    pub retry_budget: u32,
    /// Jitter seed; same seed, same backoff sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            retry_budget: 1024,
            seed: 0x9e37_79b9,
        }
    }
}

impl RetryPolicy {
    /// Next sleep via decorrelated jitter: uniform in
    /// `[base, min(cap, prev * 3)]`. Unlike plain exponential-with-jitter
    /// this decorrelates concurrent clients quickly, so a fleet that failed
    /// together does not retry together.
    fn next_backoff(&self, rng: &mut u64, prev: Duration) -> Duration {
        let base = self.base_backoff.max(Duration::from_micros(1));
        let hi = prev
            .saturating_mul(3)
            .clamp(base, self.max_backoff.max(base));
        let span = hi.as_micros().saturating_sub(base.as_micros()) as u64;
        let jitter = if span == 0 {
            0
        } else {
            next_rand(rng) % (span + 1)
        };
        base + Duration::from_micros(jitter)
    }
}

/// Circuit breaker phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every call goes through.
    Closed,
    /// Tripped: calls fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next call is the probe that decides.
    HalfOpen,
}

/// Circuit breaker tuning.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// Per-endpoint circuit breaker: closed → (N consecutive failures) → open
/// → (cooldown) → half-open probe → closed or back to open.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    opens: u64,
    short_circuited: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            opens: 0,
            short_circuited: 0,
        }
    }

    /// Current state, advancing open → half-open once the cooldown elapsed.
    pub fn state(&mut self) -> BreakerState {
        if self.state == BreakerState::Open
            && self
                .opened_at
                .is_some_and(|at| at.elapsed() >= self.config.cooldown)
        {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// Whether a call may proceed. `false` means fail fast; the rejection
    /// is counted.
    pub fn allow(&mut self) -> bool {
        match self.state() {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.short_circuited += 1;
                false
            }
        }
    }

    /// Record a successful call: closes the breaker from any state.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    /// Record a failed call: trips the breaker at the threshold; a failed
    /// half-open probe re-opens it immediately.
    pub fn record_failure(&mut self) {
        match self.state() {
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip();
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.opened_at = Some(Instant::now());
        self.opens += 1;
    }

    /// Times the breaker has tripped open.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Calls rejected without reaching the wire.
    pub fn short_circuited(&self) -> u64 {
        self.short_circuited
    }
}

/// Counters a [`ResilientClient`] keeps about its own behavior, reported by
/// the load generator alongside the server-side metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResilienceStats {
    /// Wire attempts made (first tries + retries).
    pub attempts: u64,
    /// Retries performed after a retryable outcome.
    pub retries: u64,
    /// Operations that exhausted their attempts or the budget and returned
    /// their last (failed) outcome.
    pub giveups: u64,
    /// Reconnects after a transport error.
    pub reconnects: u64,
}

/// Whether a reply status is worth retrying on an idempotent operation.
/// `Busy`/`Timeout` are transient by construction; `ServerError` covers a
/// panicked-and-isolated run, which a retry lands on a fresh pooled state.
/// Everything else (`BadRequest`, `Unsupported`, `ShuttingDown`,
/// `Overloaded`) is definitive.
fn retryable(status: Status) -> bool {
    matches!(status, Status::Busy | Status::Timeout | Status::ServerError)
}

/// What an attempt concluded, as far as the retry loop is concerned.
enum Verdict {
    /// Definitive reply (success or permanent error) — return it.
    Done,
    /// Transient failure — worth another attempt.
    Retry,
}

/// A [`Client`] wrapper that reconnects after transport errors, retries
/// idempotent operations under a [`RetryPolicy`], and fails fast behind a
/// [`CircuitBreaker`]. UPDATE goes through the breaker but is never
/// auto-retried.
pub struct ResilientClient {
    addr: String,
    client: Option<Client>,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    rng: u64,
    budget_left: u32,
    stats: ResilienceStats,
}

fn breaker_open_error() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionRefused,
        "circuit breaker open: endpoint failing, not attempting",
    )
}

impl ResilientClient {
    /// Wrap an endpoint. Connects lazily on first use, so construction
    /// never blocks and a dead endpoint is just the first failure.
    pub fn new(
        addr: impl Into<String>,
        policy: RetryPolicy,
        breaker: BreakerConfig,
    ) -> ResilientClient {
        let rng = policy.seed;
        let budget_left = policy.retry_budget;
        ResilientClient {
            addr: addr.into(),
            client: None,
            policy,
            breaker: CircuitBreaker::new(breaker),
            rng,
            budget_left,
            stats: ResilienceStats::default(),
        }
    }

    /// Client-side counters (attempts, retries, giveups, reconnects).
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// The breaker, for state inspection and its own counters.
    pub fn breaker(&mut self) -> &mut CircuitBreaker {
        &mut self.breaker
    }

    fn ensure_client(&mut self) -> io::Result<&mut Client> {
        if self.client.is_none() {
            if self.stats.attempts > 0 {
                self.stats.reconnects += 1;
            }
            self.client = Some(Client::connect(&self.addr)?);
        }
        // audit:allow(no-unwrap): just populated above.
        Ok(self.client.as_mut().expect("client populated"))
    }

    /// The retry loop shared by every idempotent operation: gate on the
    /// breaker, attempt, classify, back off, repeat within the attempt cap
    /// and the lifetime budget. Returns the last outcome when giving up.
    fn call_idempotent<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> io::Result<T>,
        classify: impl Fn(&T) -> Verdict,
    ) -> io::Result<T> {
        let mut backoff = self.policy.base_backoff;
        let mut attempt = 0u32;
        loop {
            if !self.breaker.allow() {
                return Err(breaker_open_error());
            }
            attempt += 1;
            self.stats.attempts += 1;
            let outcome = match self.ensure_client() {
                Ok(client) => op(client),
                Err(err) => Err(err),
            };
            match &outcome {
                Ok(reply) => match classify(reply) {
                    Verdict::Done => {
                        self.breaker.record_success();
                        return outcome;
                    }
                    // Reply in hand, connection still framed — retry on it.
                    Verdict::Retry => self.breaker.record_failure(),
                },
                Err(_) => {
                    self.breaker.record_failure();
                    // The stream may hold half a frame — unusable. Drop it
                    // and reconnect on the next attempt.
                    self.client = None;
                }
            }
            if attempt >= self.policy.max_attempts || self.budget_left == 0 {
                self.stats.giveups += 1;
                return outcome;
            }
            self.budget_left -= 1;
            self.stats.retries += 1;
            backoff = self.policy.next_backoff(&mut self.rng, backoff);
            std::thread::sleep(backoff);
        }
    }

    /// RUN with retries: transport errors and transient statuses
    /// (`Busy`/`Timeout`/`ServerError`) are retried; definitive replies are
    /// returned as-is.
    pub fn run(&mut self, request: &RunRequest) -> io::Result<RunReply> {
        self.call_idempotent(
            |client| client.run(request),
            |reply| {
                if retryable(reply.status) {
                    Verdict::Retry
                } else {
                    Verdict::Done
                }
            },
        )
    }

    /// STATS with retries.
    pub fn stats_json(&mut self) -> io::Result<String> {
        self.call_idempotent(|client| client.stats_json(), |_| Verdict::Done)
    }

    /// PING with retries.
    pub fn ping(&mut self) -> io::Result<()> {
        self.call_idempotent(|client| client.ping(), |_| Verdict::Done)
    }

    /// UPDATE: exactly one wire attempt, never auto-retried — a transport
    /// error leaves the batch's fate unknown (it may have been applied),
    /// and blind replay could double-apply edits. The breaker still gates
    /// and observes the attempt. Callers that know their batch is
    /// idempotent (e.g. latest-wins upserts) can retry at their layer.
    pub fn update(&mut self, edits: &[EdgeEdit]) -> io::Result<UpdateReply> {
        if !self.breaker.allow() {
            return Err(breaker_open_error());
        }
        self.stats.attempts += 1;
        let outcome = match self.ensure_client() {
            Ok(client) => client.update(edits),
            Err(err) => Err(err),
        };
        match &outcome {
            Ok(reply) if !retryable(reply.status) => self.breaker.record_success(),
            Ok(_) => self.breaker.record_failure(),
            Err(_) => {
                self.breaker.record_failure();
                self.client = None;
            }
        }
        outcome
    }

    /// Ask the server to shut down (single attempt; not idempotent in
    /// spirit — the first one wins).
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        let client = self.ensure_client()?;
        client.shutdown_server()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_stays_within_base_and_cap() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        let mut rng = 7u64;
        let mut prev = policy.base_backoff;
        for _ in 0..64 {
            prev = policy.next_backoff(&mut rng, prev);
            assert!(prev >= policy.base_backoff, "below base: {prev:?}");
            assert!(prev <= policy.max_backoff, "above cap: {prev:?}");
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let sequence = |seed: u64| -> Vec<Duration> {
            let mut rng = seed;
            let mut prev = policy.base_backoff;
            (0..8)
                .map(|_| {
                    prev = policy.next_backoff(&mut rng, prev);
                    prev
                })
                .collect()
        };
        assert_eq!(sequence(42), sequence(42));
        assert_ne!(sequence(42), sequence(43));
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_through_half_open() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(20),
        });
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.record_failure();
        breaker.record_failure();
        assert!(breaker.allow(), "below threshold stays closed");
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow(), "open breaker fails fast");
        assert_eq!(breaker.short_circuited(), 1);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(breaker.allow(), "half-open admits the probe");
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.opens(), 1);
    }

    #[test]
    fn failed_half_open_probe_reopens_immediately() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(10),
        });
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow());
        assert_eq!(breaker.opens(), 2);
    }

    #[test]
    fn open_breaker_short_circuits_a_dead_endpoint() {
        // Nothing listens on this address; the breaker must fail fast
        // after the threshold instead of dialing forever.
        let mut client = ResilientClient::new(
            "127.0.0.1:1", // reserved port, connection refused
            RetryPolicy {
                max_attempts: 1,
                base_backoff: Duration::from_micros(10),
                max_backoff: Duration::from_micros(50),
                ..RetryPolicy::default()
            },
            BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(60),
            },
        );
        assert!(client.ping().is_err());
        assert!(client.ping().is_err());
        // Breaker is now open: the next call must not touch the wire.
        let before = client.stats().attempts;
        let err = client.ping().expect_err("breaker should fail fast");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(err.to_string().contains("circuit breaker open"));
        assert_eq!(client.stats().attempts, before, "no wire attempt");
        assert_eq!(client.breaker().short_circuited(), 1);
    }
}
