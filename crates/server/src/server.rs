//! The TCP server: acceptor, per-connection framing, worker pool, graceful
//! shutdown.
//!
//! Thread model (all `std::thread`, no async runtime):
//!
//! * one **acceptor** polls a non-blocking listener and spawns one thread
//!   per connection;
//! * **connection threads** read frames with a short socket timeout so they
//!   can notice the shutdown flag and mid-frame stalls, decode requests,
//!   and push RUN jobs onto the bounded admission queue — a full queue is an
//!   immediate `Busy` reply, never backpressure-by-latency;
//! * **worker threads** own the per-algorithm [`WorkerStates`] pools, pop
//!   jobs, enforce the per-request deadline (requests that expired while
//!   queued are answered `Timeout` without running), execute, and send the
//!   encoded reply back over a per-connection channel. The reply buffer
//!   travels with the job and returns with the reply, so the steady state
//!   recycles both the vertex states and the response buffers.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`] or the wire `SHUTDOWN`
//! opcode): the accept loop stops, the queue closes (workers drain what was
//! admitted), connection threads answer late arrivals with `ShuttingDown`
//! and exit, and every thread is joined before the handle returns.

use crate::metrics::Metrics;
use crate::protocol::{self, Request, Status};
use crate::queue::{BoundedQueue, PushError};
use crate::service::{self, GraphService, WorkerStates};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tick length for every polling loop (accept, reads, shutdown checks).
const TICK: Duration = Duration::from_millis(20);

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing runs (each owns its own state pools).
    pub workers: usize,
    /// Admission queue depth; pushes beyond it are rejected `Busy`.
    pub queue_depth: usize,
    /// Deadline applied to requests that don't carry their own
    /// (`timeout_ms == 0`). `None` = unbounded.
    pub default_timeout: Option<Duration>,
    /// Close a connection that stalls mid-frame for this long — the
    /// protection against truncated frames and slow-loris peers.
    pub read_stall_timeout: Duration,
    /// Close a connection whose peer stops draining responses for this
    /// long — the protection against half-open peers that send a request
    /// and then stall forever mid-response-read. Applied as the socket
    /// write timeout; a blocked `write` past it drops the connection and
    /// reclaims its thread.
    pub write_stall_timeout: Duration,
    /// Emit a metrics log line to stderr at this interval.
    pub stats_log_interval: Option<Duration>,
    /// Artificial per-request service delay, applied after a job is popped
    /// and **before** its deadline check. A test/bench aid: it makes
    /// overload (`Busy`) and queued-expiry (`Timeout`) outcomes
    /// deterministic. `None` in production.
    pub service_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            default_timeout: None,
            read_stall_timeout: Duration::from_secs(10),
            write_stall_timeout: Duration::from_secs(10),
            stats_log_interval: None,
            service_delay: None,
        }
    }
}

/// State shared by every server thread.
struct Shared {
    service: GraphService,
    metrics: Metrics,
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    config: ServerConfig,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Relaxed);
        self.queue.close();
    }
}

/// One admitted RUN, carrying the connection's reusable reply buffer.
struct Job {
    request: protocol::RunRequest,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Vec<u8>>,
    buf: Vec<u8>,
}

/// A running server; dropping it without calling [`ServerHandle::shutdown`]
/// or [`ServerHandle::wait`] leaves threads running.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    logger: Option<JoinHandle<()>>,
}

/// Alias kept for readability at call sites: `bind` returns a handle you
/// later `shutdown()` or `wait()` on.
pub type ServerHandle = Server;

impl Server {
    /// Bind and start serving. Use port 0 to let the OS pick (read it back
    /// with [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: GraphService,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            service,
            metrics: Metrics::default(),
            queue: BoundedQueue::new(config.queue_depth),
            shutdown: AtomicBool::new(false),
            config,
        });

        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
            .map(|i| spawn_worker(&shared, i, 0))
            .collect();

        // The supervisor owns the worker lanes: it respawns any lane that
        // dies outside the per-run panic guard and joins them all at
        // shutdown, so a single runaway panic can never silently shrink the
        // pool.
        let supervisor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("graphmat-supervisor".into())
                .spawn(move || supervisor_loop(&shared, workers))
                // audit:allow(no-unwrap): server startup; without the
                // supervisor the worker pool has no owner to join it.
                .expect("spawn supervisor thread")
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("graphmat-acceptor".into())
                .spawn(move || acceptor_loop(listener, &shared))
                // audit:allow(no-unwrap): server startup; no acceptor means
                // no server.
                .expect("spawn acceptor thread")
        };

        let logger = shared.config.stats_log_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("graphmat-stats-log".into())
                .spawn(move || logger_loop(&shared, interval))
                // audit:allow(no-unwrap): server startup; failing to spawn
                // the requested stats logger should be loud, not silent.
                .expect("spawn stats logger thread")
        });

        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
            logger: Some(logger).flatten(),
        })
    }

    /// The bound address (with the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live metrics registry (for in-process assertions).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Whether shutdown has been requested (locally or via the wire).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Relaxed)
    }

    /// Request graceful shutdown and join every thread: stops accepting,
    /// drains admitted runs, answers stragglers with `ShuttingDown`.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.join_all();
    }

    /// Block until something requests shutdown (e.g. the wire `SHUTDOWN`
    /// opcode), then drain and join like [`Server::shutdown`].
    pub fn wait(mut self) {
        while !self.shared.shutdown.load(Relaxed) {
            thread::sleep(TICK);
        }
        // The opcode path already closed the queue; closing twice is fine.
        self.shared.begin_shutdown();
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.logger.take() {
            let _ = handle.join();
        }
    }
}

fn logger_loop(shared: &Shared, interval: Duration) {
    let mut last = Instant::now();
    while !shared.shutdown.load(Relaxed) {
        thread::sleep(TICK);
        if last.elapsed() >= interval {
            // audit:allow(no-println): this IS the opt-in stats logger —
            // periodic operational lines on stderr are its whole job.
            eprintln!("[graphmat-serve] {}", shared.metrics.log_line());
            last = Instant::now();
        }
    }
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let handle = thread::Builder::new()
                    .name("graphmat-conn".into())
                    .spawn(move || connection_loop(stream, &shared))
                    // audit:allow(no-unwrap): per-connection thread — if the
                    // host is out of threads the accept loop cannot serve
                    // the socket anyway; crashing the acceptor is the
                    // honest failure.
                    .expect("spawn connection thread");
                connections.push(handle);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => thread::sleep(TICK),
            Err(_) => thread::sleep(TICK),
        }
        // Reap finished connections so a long-lived server doesn't
        // accumulate join handles.
        connections.retain(|h| !h.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Spawn one worker lane. `respawn` distinguishes supervisor restarts in
/// thread names (`graphmat-worker-2-r1`).
fn spawn_worker(shared: &Arc<Shared>, lane: usize, respawn: u64) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let name = if respawn == 0 {
        format!("graphmat-worker-{lane}")
    } else {
        format!("graphmat-worker-{lane}-r{respawn}")
    };
    thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(&shared))
        // audit:allow(no-unwrap): server startup / lane respawn; a host
        // that cannot spawn worker threads has nothing to serve with, and
        // the panic carries the OS error.
        .expect("spawn worker thread")
}

/// Own the worker lanes: respawn any lane that dies while the server is
/// live, join them all once shutdown drains the queue.
fn supervisor_loop(shared: &Arc<Shared>, mut workers: Vec<JoinHandle<()>>) {
    let mut respawns: u64 = 0;
    while !shared.shutdown.load(Relaxed) {
        thread::sleep(TICK);
        for (lane, slot) in workers.iter_mut().enumerate() {
            if !slot.is_finished() || shared.shutdown.load(Relaxed) {
                continue;
            }
            respawns += 1;
            let replacement = spawn_worker(shared, lane, respawns);
            let dead = std::mem::replace(slot, replacement);
            // RECOVERY: a worker lane died outside the per-run panic guard
            // (e.g. the chaos `server.worker.lane` failpoint). Its in-hand
            // job already got a typed `ServerError` reply from the lane's
            // ReplyGuard (resilient clients retry it), and its pooled
            // states died with the thread, so there is nothing to
            // quarantine; the fresh lane warms up its own pools. The
            // restart is counted so operators can see lane churn through
            // STATS.
            let _ = dead.join();
            shared.metrics.worker_restarts.fetch_add(1, Relaxed);
        }
    }
    for handle in workers {
        let _ = handle.join();
    }
}

/// Guarantees a popped [`Job`] always gets *some* reply. The connection
/// thread blocks in `reply_rx.recv()` while it also holds a sender clone,
/// so the channel can never close on it — if the worker unwinds with the
/// job in hand and nobody sends, that connection hangs forever. This guard
/// closes the gap: on a normal path the job is defused and replied inline;
/// on an unwind, `Drop` sends a typed `ServerError` instead.
struct ReplyGuard {
    job: Option<Job>,
}

impl Drop for ReplyGuard {
    fn drop(&mut self) {
        // RECOVERY: the worker lane is unwinding with this job in hand
        // (a panic outside the per-run isolation guard, e.g. the chaos
        // `server.worker.lane` failpoint). Send the typed error now so the
        // waiting connection unblocks and can keep serving its client;
        // the supervisor respawns the lane itself.
        if let Some(mut job) = self.job.take() {
            job.buf.clear();
            protocol::encode_error(
                &mut job.buf,
                Status::ServerError,
                "worker lane died mid-request; lane is being respawned",
            );
            let _ = job.reply.send(std::mem::take(&mut job.buf));
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut states = WorkerStates::for_topology(shared.service.topology());
    let (mut seen_created, mut seen_reused, mut seen_quarantined) = (0usize, 0usize, 0usize);
    while let Some(popped) = shared.queue.pop() {
        let mut guard = ReplyGuard { job: Some(popped) };
        if let Some(delay) = shared.config.service_delay {
            thread::sleep(delay);
        }
        // A `panic` action here unwinds outside the per-run guard and kills
        // the whole lane — the hazard the ReplyGuard + supervisor respawn
        // path covers.
        let _ = graphmat_chaos::fire("server.worker.lane");
        let Some(job) = guard.job.as_mut() else {
            continue; // unreachable: armed two lines up
        };
        job.buf.clear();
        let counters = shared.metrics.algo(job.request.algorithm);
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            protocol::encode_error(
                &mut job.buf,
                Status::Timeout,
                "request deadline expired while queued",
            );
            counters.timeout.fetch_add(1, Relaxed);
        } else {
            let start = Instant::now();
            let outcome = service::execute_run(
                &shared.service,
                &mut states,
                &job.request,
                job.deadline,
                &mut job.buf,
            );
            if outcome.panicked {
                shared.metrics.worker_panics.fetch_add(1, Relaxed);
            }
            match outcome.status {
                Status::Ok => {
                    counters.ok.fetch_add(1, Relaxed);
                    counters.latency.record(start.elapsed().as_micros() as u64);
                }
                Status::Timeout => {
                    counters.timeout.fetch_add(1, Relaxed);
                }
                _ => {
                    counters.failed.fetch_add(1, Relaxed);
                }
            }
        }
        // Export pool growth so "steady state allocates nothing" — and
        // post-panic quarantines — are observable through STATS.
        let (created, reused, quarantined) =
            (states.created(), states.reused(), states.quarantined());
        shared
            .metrics
            .pool_created
            .fetch_add((created - seen_created) as u64, Relaxed);
        shared
            .metrics
            .pool_reused
            .fetch_add((reused - seen_reused) as u64, Relaxed);
        shared
            .metrics
            .pool_quarantined
            .fetch_add((quarantined - seen_quarantined) as u64, Relaxed);
        (seen_created, seen_reused, seen_quarantined) = (created, reused, quarantined);
        // Normal path: defuse the guard and send the real reply. The
        // receiver may have hung up (client gone) — nothing to do.
        if let Some(mut job) = guard.job.take() {
            let _ = job.reply.send(std::mem::take(&mut job.buf));
        }
    }
}

/// Why a connection's frame read ended without a frame.
enum ReadOutcome {
    /// A complete frame body is in the buffer.
    Frame,
    /// Peer closed the connection.
    Eof,
    /// Server is shutting down.
    Shutdown,
    /// Peer stalled mid-frame past the configured stall timeout.
    Stall,
    /// The length prefix exceeds `MAX_FRAME_LEN`.
    TooLarge,
    /// Hard socket error.
    Error,
}

/// Read one frame with tick-granularity interruption: notices the shutdown
/// flag between ticks and drops peers that stall mid-frame, so a truncated
/// frame can never hang a connection thread forever.
fn read_frame_ticking(stream: &mut TcpStream, buf: &mut Vec<u8>, shared: &Shared) -> ReadOutcome {
    let stall = shared.config.read_stall_timeout;
    let mut header = [0u8; 4];
    let mut have = 0usize;
    let mut body_len: Option<usize> = None;
    let mut last_progress = Instant::now();
    loop {
        let result = match body_len {
            None => stream.read(&mut header[have..]),
            Some(len) => {
                if have == len {
                    return ReadOutcome::Frame;
                }
                stream.read(&mut buf[have..len])
            }
        };
        match result {
            Ok(0) => {
                // Mid-frame EOF is a truncated frame; between frames it's a
                // normal close. Either way the connection is done.
                return ReadOutcome::Eof;
            }
            Ok(n) => {
                have += n;
                last_progress = Instant::now();
                if body_len.is_none() && have == 4 {
                    let len = u32::from_le_bytes(header) as usize;
                    if len > protocol::MAX_FRAME_LEN {
                        return ReadOutcome::TooLarge;
                    }
                    buf.clear();
                    buf.resize(len, 0);
                    body_len = Some(len);
                    have = 0;
                }
            }
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Relaxed) {
                    return ReadOutcome::Shutdown;
                }
                let mid_frame = have > 0 || body_len.is_some();
                if mid_frame && last_progress.elapsed() >= stall {
                    return ReadOutcome::Stall;
                }
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Error,
        }
    }
}

fn connection_loop(mut stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(TICK)).is_err() {
        return;
    }
    // A half-open peer (sends a request, then stops draining its socket)
    // would otherwise pin this thread in `write_frame` forever once large
    // replies fill the kernel send buffer. The write timeout bounds that:
    // the blocked write fails, the connection drops, the thread is
    // reclaimed. Worker lanes are unaffected either way — they hand replies
    // over a channel and never touch the socket.
    if stream
        .set_write_timeout(Some(shared.config.write_stall_timeout))
        .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let mut frame = Vec::new();
    // The response buffer: encoded into directly for control replies and
    // errors, and carried through the worker round-trip for runs.
    let mut resp = Vec::new();
    loop {
        match read_frame_ticking(&mut stream, &mut frame, shared) {
            ReadOutcome::Frame => {}
            ReadOutcome::TooLarge => {
                // The stream can't be re-synchronized after a bogus length
                // prefix; send a typed error, then drop the connection.
                shared.metrics.dropped_connections.fetch_add(1, Relaxed);
                resp.clear();
                protocol::encode_error(
                    &mut resp,
                    Status::BadRequest,
                    "frame length prefix exceeds maximum frame size",
                );
                let _ = protocol::write_frame(&mut stream, &resp);
                return;
            }
            ReadOutcome::Stall => {
                shared.metrics.dropped_connections.fetch_add(1, Relaxed);
                return;
            }
            ReadOutcome::Eof | ReadOutcome::Shutdown | ReadOutcome::Error => return,
        }
        // Models the frame arriving corrupted past the length check (e.g. a
        // torn read): the connection is unrecoverable and is dropped.
        if graphmat_chaos::fire("server.frame.read").is_some() {
            shared.metrics.dropped_connections.fetch_add(1, Relaxed);
            return;
        }
        let request = match Request::decode(&frame) {
            Ok(request) => request,
            Err(err) => {
                // Framing is intact, so the connection survives a malformed
                // body — reply with the typed error and keep reading.
                shared.metrics.bad_requests.fetch_add(1, Relaxed);
                resp.clear();
                protocol::encode_error(&mut resp, err.status, &err.message);
                if protocol::write_frame(&mut stream, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        match request {
            Request::Ping => {
                shared.metrics.pings.fetch_add(1, Relaxed);
                resp.clear();
                protocol::encode_ok_empty(&mut resp);
            }
            Request::Stats => {
                shared.metrics.stats_requests.fetch_add(1, Relaxed);
                let store = shared.service.store().stats();
                let json = shared
                    .metrics
                    .to_json(shared.service.topology().num_vertices() as u64, &store);
                resp.clear();
                protocol::encode_ok_payload(&mut resp, json.as_bytes());
            }
            Request::Update(update) => {
                // Writers apply inline on the connection thread: the store
                // serializes them on its writer lock and publishing never
                // blocks readers, so there is nothing to queue. In-flight
                // runs keep the snapshot they were admitted against.
                let edits = update.edits.len() as u64;
                resp.clear();
                match shared.service.apply_update(&update) {
                    Ok(stats) => {
                        shared.metrics.updates.fetch_add(1, Relaxed);
                        shared.metrics.update_edits.fetch_add(edits, Relaxed);
                        protocol::encode_update_ok(
                            &mut resp,
                            &protocol::UpdateOkReply {
                                snapshot_version: stats.version,
                                num_edges: stats.num_edges as u64,
                                delta_edges: stats.delta_edges as u64,
                                compactions: stats.compactions,
                            },
                        );
                    }
                    Err((status, message)) => {
                        shared.metrics.update_failed.fetch_add(1, Relaxed);
                        if status == Status::Overloaded {
                            shared.metrics.update_overloaded.fetch_add(1, Relaxed);
                        }
                        protocol::encode_error(&mut resp, status, &message);
                    }
                }
            }
            Request::Shutdown => {
                resp.clear();
                protocol::encode_ok_empty(&mut resp);
                let _ = protocol::write_frame(&mut stream, &resp);
                shared.begin_shutdown();
                return;
            }
            Request::Run(run) => {
                let counters = shared.metrics.algo(run.algorithm);
                counters.requests.fetch_add(1, Relaxed);
                let timeout = if run.timeout_ms > 0 {
                    Some(Duration::from_millis(run.timeout_ms as u64))
                } else {
                    shared.config.default_timeout
                };
                // Models the admission hand-off itself failing (e.g. the
                // queue's backing state unavailable): the request is
                // rejected with a typed error, the connection survives.
                if graphmat_chaos::fire("server.admission.push").is_some() {
                    counters.failed.fetch_add(1, Relaxed);
                    resp.clear();
                    protocol::encode_error(
                        &mut resp,
                        Status::ServerError,
                        "chaos failpoint server.admission.push",
                    );
                } else {
                    let job = Job {
                        request: run,
                        deadline: timeout.map(|t| Instant::now() + t),
                        reply: reply_tx.clone(),
                        buf: std::mem::take(&mut resp),
                    };
                    match shared.queue.try_push(job) {
                        Ok(()) => match reply_rx.recv() {
                            Ok(encoded) => resp = encoded,
                            // Worker pool gone mid-request (shutdown race);
                            // nothing coherent to say, drop the connection.
                            Err(_) => return,
                        },
                        Err(PushError::Full(job)) => {
                            counters.busy.fetch_add(1, Relaxed);
                            resp = job.buf;
                            resp.clear();
                            protocol::encode_error(
                                &mut resp,
                                Status::Busy,
                                "admission queue full, retry later",
                            );
                        }
                        Err(PushError::Closed(job)) => {
                            resp = job.buf;
                            resp.clear();
                            protocol::encode_error(
                                &mut resp,
                                Status::ShuttingDown,
                                "server is shutting down",
                            );
                        }
                    }
                }
            }
        }
        // Models the reply write failing mid-frame (peer reset, stalled
        // socket): the frame cannot be completed, so the connection drops.
        if graphmat_chaos::fire("server.frame.write").is_some()
            || protocol::write_frame(&mut stream, &resp).is_err()
        {
            shared.metrics.dropped_connections.fetch_add(1, Relaxed);
            return;
        }
    }
}
