//! Algorithm dispatch over one resident session — the layer between the
//! wire protocol and the engine.
//!
//! A [`GraphService`] owns the process-wide [`Session`] (one persistent
//! executor pool) and the resident `Arc<Topology>`; it is `Sync` and shared
//! by every worker. Each worker owns a private [`WorkerStates`] — one
//! [`StatePool`] per algorithm, because the engine workspace cached inside a
//! state is typed by the program and sharing a pool across programs would
//! thrash it. After warm-up the pools stop growing and a request performs no
//! per-query allocation: the run writes into a recycled state and the
//! response is encoded into the connection's reused buffer.

use crate::protocol::{self, Fnv64, RunOkHeader, RunRequest, Status, ValueKind};
use graphmat_algorithms::bfs::bfs_into;
use graphmat_algorithms::connected_components::connected_components_into;
use graphmat_algorithms::degree::in_degrees_into;
use graphmat_algorithms::pagerank::{pagerank_into, PageRankConfig, PageRankVertex};
use graphmat_algorithms::sssp::sssp_into;
use graphmat_core::{GraphMatError, Session, StatePool, Topology};
use std::sync::Arc;
use std::time::Instant;

use crate::protocol::Algorithm;

/// The resident graph plus the session that runs queries against it.
pub struct GraphService {
    session: Session,
    topology: Arc<Topology<f32>>,
}

impl GraphService {
    /// Wrap a session and a pre-built topology.
    pub fn new(session: Session, topology: Arc<Topology<f32>>) -> GraphService {
        GraphService { session, topology }
    }

    /// The resident topology (share it to compute expected results
    /// out-of-band, e.g. in tests).
    pub fn topology(&self) -> &Arc<Topology<f32>> {
        &self.topology
    }

    /// The session queries run through.
    pub fn session(&self) -> &Session {
        &self.session
    }
}

/// One worker's pooled per-algorithm vertex states.
///
/// Deliberately one pool per algorithm (not one per value type): BFS and
/// connected components both use `u32` states, but their cached workspaces
/// are typed by the program, so sharing a pool would re-allocate the
/// workspace on every program switch.
pub struct WorkerStates {
    pagerank: StatePool<PageRankVertex>,
    bfs: StatePool<u32>,
    sssp: StatePool<f32>,
    components: StatePool<u32>,
    in_degrees: StatePool<u64>,
}

impl WorkerStates {
    /// Empty pools sized for the topology.
    pub fn for_topology(topology: &Topology<f32>) -> WorkerStates {
        WorkerStates {
            pagerank: StatePool::for_topology(topology),
            bfs: StatePool::for_topology(topology),
            sssp: StatePool::for_topology(topology),
            components: StatePool::for_topology(topology),
            in_degrees: StatePool::for_topology(topology),
        }
    }

    /// Total states allocated across all pools (constant after warm-up).
    pub fn created(&self) -> usize {
        self.pagerank.created()
            + self.bfs.created()
            + self.sssp.created()
            + self.components.created()
            + self.in_degrees.created()
    }

    /// Total acquisitions served by recycling.
    pub fn reused(&self) -> usize {
        self.pagerank.reused()
            + self.bfs.reused()
            + self.sssp.reused()
            + self.components.reused()
            + self.in_degrees.reused()
    }
}

/// Map an engine error to a wire status + message.
fn error_reply(buf: &mut Vec<u8>, err: &GraphMatError) -> Status {
    let status = match err {
        GraphMatError::DeadlineExceeded => Status::Timeout,
        GraphMatError::VertexOutOfRange { .. } => Status::BadRequest,
        _ => Status::ServerError,
    };
    protocol::encode_error(buf, status, &err.to_string());
    status
}

/// Encode a successful run: header with checksum, then (if requested) the
/// raw little-endian values. Two passes over the same iterator — one for
/// the checksum that precedes the values on the wire, one to copy them.
fn ok_reply<const N: usize, I>(
    buf: &mut Vec<u8>,
    request: &RunRequest,
    elapsed: Instant,
    iterations: usize,
    value_kind: ValueKind,
    num_values: usize,
    bytes: I,
) -> Status
where
    I: Iterator<Item = [u8; N]> + Clone,
{
    let mut hash = Fnv64::new();
    for chunk in bytes.clone() {
        hash.write(&chunk);
    }
    protocol::encode_run_ok_header(
        buf,
        &RunOkHeader {
            elapsed_micros: elapsed.elapsed().as_micros() as u64,
            iterations: iterations as u32,
            value_kind,
            checksum: hash.finish(),
            num_values: num_values as u32,
        },
    );
    if request.include_values {
        buf.reserve(num_values * N);
        for chunk in bytes {
            buf.extend_from_slice(&chunk);
        }
    }
    Status::Ok
}

/// Execute one RUN request with this worker's pooled states, encoding the
/// full response (success or typed error) into `buf`. Returns the status
/// for metrics accounting. Never panics on request content — bad seeds and
/// engine errors all become typed error responses.
pub fn execute_run(
    service: &GraphService,
    states: &mut WorkerStates,
    request: &RunRequest,
    deadline: Option<Instant>,
    buf: &mut Vec<u8>,
) -> Status {
    let topology = service.topology();
    let num_vertices = topology.num_vertices() as u64;
    if matches!(request.algorithm, Algorithm::Bfs | Algorithm::Sssp) && request.seed >= num_vertices
    {
        protocol::encode_error(
            buf,
            Status::BadRequest,
            &format!(
                "seed vertex {} out of range ({num_vertices} vertices)",
                request.seed
            ),
        );
        return Status::BadRequest;
    }
    let start = Instant::now();
    match request.algorithm {
        Algorithm::PageRank => {
            let config = PageRankConfig {
                iterations: if request.iterations == 0 {
                    PageRankConfig::default().iterations
                } else {
                    request.iterations as usize
                },
                ..Default::default()
            };
            let mut state = states.pagerank.acquire();
            let outcome = pagerank_into(&service.session, topology, &config, deadline, &mut state);
            let status = match outcome {
                Ok(result) => ok_reply(
                    buf,
                    request,
                    start,
                    result.stats.iterations,
                    ValueKind::F64,
                    state.num_vertices(),
                    state.properties().iter().map(|p| p.rank.to_le_bytes()),
                ),
                Err(err) => error_reply(buf, &err),
            };
            states.pagerank.release(state);
            status
        }
        Algorithm::Bfs => {
            let mut state = states.bfs.acquire();
            let outcome = bfs_into(
                &service.session,
                topology,
                request.seed as u32,
                deadline,
                &mut state,
            );
            let status = match outcome {
                Ok(result) => ok_reply(
                    buf,
                    request,
                    start,
                    result.stats.iterations,
                    ValueKind::U32,
                    state.num_vertices(),
                    state.properties().iter().map(|d| d.to_le_bytes()),
                ),
                Err(err) => error_reply(buf, &err),
            };
            states.bfs.release(state);
            status
        }
        Algorithm::Sssp => {
            let mut state = states.sssp.acquire();
            let outcome = sssp_into(
                &service.session,
                topology,
                request.seed as u32,
                deadline,
                &mut state,
            );
            let status = match outcome {
                Ok(result) => ok_reply(
                    buf,
                    request,
                    start,
                    result.stats.iterations,
                    ValueKind::F32,
                    state.num_vertices(),
                    state.properties().iter().map(|d| d.to_le_bytes()),
                ),
                Err(err) => error_reply(buf, &err),
            };
            states.sssp.release(state);
            status
        }
        Algorithm::ConnectedComponents => {
            let mut state = states.components.acquire();
            let outcome =
                connected_components_into(&service.session, topology, deadline, &mut state);
            let status = match outcome {
                Ok(result) => ok_reply(
                    buf,
                    request,
                    start,
                    result.stats.iterations,
                    ValueKind::U32,
                    state.num_vertices(),
                    state.properties().iter().map(|l| l.to_le_bytes()),
                ),
                Err(err) => error_reply(buf, &err),
            };
            states.components.release(state);
            status
        }
        Algorithm::InDegrees => {
            let mut state = states.in_degrees.acquire();
            let outcome = in_degrees_into(&service.session, topology, deadline, &mut state);
            let status = match outcome {
                Ok(result) => ok_reply(
                    buf,
                    request,
                    start,
                    result.stats.iterations,
                    ValueKind::U64,
                    state.num_vertices(),
                    state.properties().iter().map(|d| d.to_le_bytes()),
                ),
                Err(err) => error_reply(buf, &err),
            };
            states.in_degrees.release(state);
            status
        }
    }
}
