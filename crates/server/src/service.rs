//! Algorithm dispatch over one resident session — the layer between the
//! wire protocol and the engine.
//!
//! A [`GraphService`] owns the process-wide [`Session`] (one persistent
//! executor pool) and the resident `Arc<Topology>`; it is `Sync` and shared
//! by every worker. Each worker owns a private [`WorkerStates`] — one
//! [`StatePool`] per algorithm, because the engine workspace cached inside a
//! state is typed by the program and sharing a pool across programs would
//! thrash it. After warm-up the pools stop growing and a request performs no
//! per-query allocation: the run writes into a recycled state and the
//! response is encoded into the connection's reused buffer.

use crate::protocol::{self, Fnv64, RunOkHeader, RunRequest, Status, UpdateRequest, ValueKind};
use graphmat_algorithms::bfs::bfs_view_into;
use graphmat_algorithms::connected_components::connected_components_view_into;
use graphmat_algorithms::degree::in_degrees_view_into;
use graphmat_algorithms::pagerank::{pagerank_view_into, PageRankConfig, PageRankVertex};
use graphmat_algorithms::sssp::sssp_view_into;
use graphmat_core::{
    GraphMatError, GraphSnapshot, GraphStore, Session, StatePool, StoreOptions, StoreStats,
    Topology, VertexState,
};
use graphmat_delta::DeltaBatch;
use std::sync::Arc;
use std::time::Instant;

use crate::protocol::Algorithm;

/// The resident graph plus the session that runs queries against it.
///
/// The graph lives in a [`GraphStore`]: queries are admitted against the
/// currently published immutable snapshot (base topology ⊕ delta overlay),
/// UPDATE batches publish new snapshots without blocking readers, and a
/// background worker compacts the overlay into a fresh base topology when it
/// grows past the store threshold. Version 0 serves the topology passed to
/// [`GraphService::new`] verbatim.
pub struct GraphService {
    session: Session,
    topology: Arc<Topology<f32>>,
    store: Arc<GraphStore<f32>>,
}

impl GraphService {
    /// Wrap a session and a pre-built topology (default store options:
    /// background compaction).
    pub fn new(session: Session, topology: Arc<Topology<f32>>) -> GraphService {
        GraphService::with_store_options(session, topology, StoreOptions::default())
    }

    /// Wrap a session and a pre-built topology with explicit store tuning
    /// (compaction threshold, background vs inline compaction).
    pub fn with_store_options(
        session: Session,
        topology: Arc<Topology<f32>>,
        options: StoreOptions,
    ) -> GraphService {
        let store = GraphStore::new(Arc::clone(&topology), options);
        GraphService {
            session,
            topology,
            store,
        }
    }

    /// The topology the service was started with — the version-0 snapshot
    /// base (share it to compute expected results out-of-band, e.g. in
    /// tests). After UPDATE batches, the *live* graph is
    /// [`GraphService::snapshot`].
    pub fn topology(&self) -> &Arc<Topology<f32>> {
        &self.topology
    }

    /// The streaming store holding the published snapshot.
    pub fn store(&self) -> &Arc<GraphStore<f32>> {
        &self.store
    }

    /// The currently published immutable snapshot.
    pub fn snapshot(&self) -> Arc<GraphSnapshot<f32>> {
        self.store.snapshot()
    }

    /// The session queries run through.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Apply one UPDATE batch: validates every edit against the vertex
    /// count, publishes a new snapshot on success, and returns its stats.
    /// In-flight queries keep the snapshot they were admitted against.
    pub fn apply_update(&self, request: &UpdateRequest) -> Result<StoreStats, (Status, String)> {
        let num_vertices = self.topology.num_vertices();
        let mut batch = DeltaBatch::new(num_vertices);
        for edit in &request.edits {
            let result = if edit.insert {
                batch.insert(edit.src, edit.dst, edit.weight)
            } else {
                batch.delete(edit.src, edit.dst)
            };
            if let Err(err) = result {
                return Err((Status::BadRequest, err.to_string()));
            }
        }
        match self.store.apply(batch) {
            // Report the snapshot *this* batch published, not the current
            // one — a concurrent writer may already have published a later
            // version.
            Ok(snapshot) => Ok(StoreStats {
                version: snapshot.version(),
                num_edges: snapshot.num_edges(),
                delta_edges: snapshot.delta_len(),
                compactions: self.store.compactions(),
                compaction_failures: self.store.compaction_failures(),
                compaction_restarts: self.store.compaction_restarts(),
            }),
            // Overload is graceful degradation, not a server fault: the
            // client gets a typed, retry-after-compaction status while
            // reads keep serving.
            Err(err @ GraphMatError::Overloaded { .. }) => {
                Err((Status::Overloaded, err.to_string()))
            }
            Err(err) => Err((Status::ServerError, err.to_string())),
        }
    }
}

/// One worker's pooled per-algorithm vertex states.
///
/// Deliberately one pool per algorithm (not one per value type): BFS and
/// connected components both use `u32` states, but their cached workspaces
/// are typed by the program, so sharing a pool would re-allocate the
/// workspace on every program switch.
pub struct WorkerStates {
    pagerank: StatePool<PageRankVertex>,
    bfs: StatePool<u32>,
    sssp: StatePool<f32>,
    components: StatePool<u32>,
    in_degrees: StatePool<u64>,
}

impl WorkerStates {
    /// Empty pools sized for the topology.
    pub fn for_topology(topology: &Topology<f32>) -> WorkerStates {
        WorkerStates {
            pagerank: StatePool::for_topology(topology),
            bfs: StatePool::for_topology(topology),
            sssp: StatePool::for_topology(topology),
            components: StatePool::for_topology(topology),
            in_degrees: StatePool::for_topology(topology),
        }
    }

    /// Total states allocated across all pools (constant after warm-up).
    pub fn created(&self) -> usize {
        self.pagerank.created()
            + self.bfs.created()
            + self.sssp.created()
            + self.components.created()
            + self.in_degrees.created()
    }

    /// Total acquisitions served by recycling.
    pub fn reused(&self) -> usize {
        self.pagerank.reused()
            + self.bfs.reused()
            + self.sssp.reused()
            + self.components.reused()
            + self.in_degrees.reused()
    }

    /// Total possibly-corrupt states retired after a panic instead of
    /// recycled.
    pub fn quarantined(&self) -> usize {
        self.pagerank.quarantined()
            + self.bfs.quarantined()
            + self.sssp.quarantined()
            + self.components.quarantined()
            + self.in_degrees.quarantined()
    }
}

/// Map an engine error to a wire status + message.
fn error_reply(buf: &mut Vec<u8>, err: &GraphMatError) -> Status {
    let status = match err {
        GraphMatError::DeadlineExceeded => Status::Timeout,
        GraphMatError::VertexOutOfRange { .. } => Status::BadRequest,
        GraphMatError::Overloaded { .. } => Status::Overloaded,
        _ => Status::ServerError,
    };
    protocol::encode_error(buf, status, &err.to_string());
    status
}

/// What one guarded RUN execution produced, for metrics accounting.
#[derive(Clone, Copy, Debug)]
pub struct ExecOutcome {
    /// Wire status of the reply encoded into the buffer.
    pub status: Status,
    /// The execution panicked: the reply is a typed `ServerError` and the
    /// vertex state it was using has been quarantined.
    pub panicked: bool,
}

/// Best-effort panic payload text for the error reply.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Acquire a state, run one algorithm execution inside a panic guard, and
/// either release the state (normal path, including typed engine errors) or
/// quarantine it (panic path). The connection always gets a complete typed
/// reply — a panicking run can never hang its client.
fn guarded<V: Clone + Default>(
    pool: &mut StatePool<V>,
    buf: &mut Vec<u8>,
    run: impl FnOnce(&mut VertexState<V>, &mut Vec<u8>) -> Status,
) -> ExecOutcome {
    let mut state = pool.acquire();
    // RECOVERY: a panic mid-run may leave `state` (frontier bitmaps, value
    // arrays, scratch) half-written, so the panic path quarantines it —
    // dropped, never released back to the pool — and the worker reports a
    // typed `ServerError` reply built from the panic payload. Nothing else
    // escapes the closure: `buf` is overwritten by `encode_error` before
    // sending, and the topology snapshot is immutable.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if graphmat_chaos::fire("server.worker.execute").is_some() {
            protocol::encode_error(
                buf,
                Status::ServerError,
                "chaos failpoint server.worker.execute",
            );
            return Status::ServerError;
        }
        run(&mut state, buf)
    }));
    match outcome {
        Ok(status) => {
            pool.release(state);
            ExecOutcome {
                status,
                panicked: false,
            }
        }
        // RECOVERY: the run unwound mid-superstep, so the vertex state (and
        // the engine workspace cached inside it) may be half-written —
        // quarantine it (drop, never recycle; the pool counts it) and
        // encode a typed ServerError so the connection gets a complete
        // reply instead of a hang. The worker lane itself keeps serving.
        Err(panic) => {
            pool.quarantine(state);
            buf.clear();
            protocol::encode_error(
                buf,
                Status::ServerError,
                &format!(
                    "run panicked and was isolated (state quarantined): {}",
                    panic_message(&*panic)
                ),
            );
            ExecOutcome {
                status: Status::ServerError,
                panicked: true,
            }
        }
    }
}

/// Encode a successful run: header with checksum, then (if requested) the
/// raw little-endian values. Two passes over the same iterator — one for
/// the checksum that precedes the values on the wire, one to copy them.
#[allow(clippy::too_many_arguments)]
fn ok_reply<const N: usize, I>(
    buf: &mut Vec<u8>,
    request: &RunRequest,
    snapshot_version: u64,
    elapsed: Instant,
    iterations: usize,
    value_kind: ValueKind,
    num_values: usize,
    bytes: I,
) -> Status
where
    I: Iterator<Item = [u8; N]> + Clone,
{
    let mut hash = Fnv64::new();
    for chunk in bytes.clone() {
        hash.write(&chunk);
    }
    protocol::encode_run_ok_header(
        buf,
        &RunOkHeader {
            snapshot_version,
            elapsed_micros: elapsed.elapsed().as_micros() as u64,
            iterations: iterations as u32,
            value_kind,
            checksum: hash.finish(),
            num_values: num_values as u32,
        },
    );
    if request.include_values {
        buf.reserve(num_values * N);
        for chunk in bytes {
            buf.extend_from_slice(&chunk);
        }
    }
    Status::Ok
}

/// Execute one RUN request with this worker's pooled states, encoding the
/// full response (success or typed error) into `buf`. Returns the status
/// plus panic-isolation accounting. Never panics on request content — bad
/// seeds and engine errors become typed error responses, and a panic
/// anywhere inside the execution is caught, quarantines the state, and
/// becomes a typed `ServerError` reply (see the internal `guarded` helper).
///
/// The request is **admitted against the snapshot published at this
/// moment**: the run keeps that snapshot for its whole execution even if
/// UPDATE batches or a compaction publish newer ones mid-run (snapshot
/// isolation). With an empty delta this is one `RwLock` read + `Arc` clone
/// on top of the plain topology path — the steady-state read path still
/// allocates nothing per query (`tests/zero_alloc.rs`).
pub fn execute_run(
    service: &GraphService,
    states: &mut WorkerStates,
    request: &RunRequest,
    deadline: Option<Instant>,
    buf: &mut Vec<u8>,
) -> ExecOutcome {
    let snapshot = service.snapshot();
    let version = snapshot.version();
    let view = snapshot.view();
    let num_vertices = view.num_vertices() as u64;
    if matches!(request.algorithm, Algorithm::Bfs | Algorithm::Sssp) && request.seed >= num_vertices
    {
        protocol::encode_error(
            buf,
            Status::BadRequest,
            &format!(
                "seed vertex {} out of range ({num_vertices} vertices)",
                request.seed
            ),
        );
        return ExecOutcome {
            status: Status::BadRequest,
            panicked: false,
        };
    }
    let start = Instant::now();
    match request.algorithm {
        Algorithm::PageRank => {
            let config = PageRankConfig {
                iterations: if request.iterations == 0 {
                    PageRankConfig::default().iterations
                } else {
                    request.iterations as usize
                },
                ..Default::default()
            };
            guarded(
                &mut states.pagerank,
                buf,
                |state, buf| match pagerank_view_into(
                    &service.session,
                    view,
                    &config,
                    deadline,
                    state,
                ) {
                    Ok(result) => ok_reply(
                        buf,
                        request,
                        version,
                        start,
                        result.stats.iterations,
                        ValueKind::F64,
                        state.num_vertices(),
                        state.properties().iter().map(|p| p.rank.to_le_bytes()),
                    ),
                    Err(err) => error_reply(buf, &err),
                },
            )
        }
        Algorithm::Bfs => guarded(&mut states.bfs, buf, |state, buf| {
            match bfs_view_into(&service.session, view, request.seed as u32, deadline, state) {
                Ok(result) => ok_reply(
                    buf,
                    request,
                    version,
                    start,
                    result.stats.iterations,
                    ValueKind::U32,
                    state.num_vertices(),
                    state.properties().iter().map(|d| d.to_le_bytes()),
                ),
                Err(err) => error_reply(buf, &err),
            }
        }),
        Algorithm::Sssp => guarded(&mut states.sssp, buf, |state, buf| {
            match sssp_view_into(&service.session, view, request.seed as u32, deadline, state) {
                Ok(result) => ok_reply(
                    buf,
                    request,
                    version,
                    start,
                    result.stats.iterations,
                    ValueKind::F32,
                    state.num_vertices(),
                    state.properties().iter().map(|d| d.to_le_bytes()),
                ),
                Err(err) => error_reply(buf, &err),
            }
        }),
        Algorithm::ConnectedComponents => {
            guarded(
                &mut states.components,
                buf,
                |state, buf| match connected_components_view_into(
                    &service.session,
                    view,
                    deadline,
                    state,
                ) {
                    Ok(result) => ok_reply(
                        buf,
                        request,
                        version,
                        start,
                        result.stats.iterations,
                        ValueKind::U32,
                        state.num_vertices(),
                        state.properties().iter().map(|l| l.to_le_bytes()),
                    ),
                    Err(err) => error_reply(buf, &err),
                },
            )
        }
        Algorithm::InDegrees => {
            guarded(
                &mut states.in_degrees,
                buf,
                |state, buf| match in_degrees_view_into(&service.session, view, deadline, state) {
                    Ok(result) => ok_reply(
                        buf,
                        request,
                        version,
                        start,
                        result.stats.iterations,
                        ValueKind::U64,
                        state.num_vertices(),
                        state.properties().iter().map(|d| d.to_le_bytes()),
                    ),
                    Err(err) => error_reply(buf, &err),
                },
            )
        }
    }
}
