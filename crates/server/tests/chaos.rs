//! Fault-injection suite: mixed read/write load raced against every chaos
//! failpoint, individually and in a seeded combination.
//!
//! Each scenario asserts the full robustness contract:
//!
//! * **no hang** — every client loop is count-bounded and the server still
//!   answers a plain (no-retry) client after the faults are disarmed;
//! * **no wrong answer** — every `Ok` RUN reply carries values, and the
//!   reply checksum is replay-verified against those bytes;
//! * **no leak** — pool/metrics counters balance: every isolated panic
//!   quarantined exactly one state, every quarantine came from a panic;
//! * **bounded-time recovery** — after `reset()` the very next plain
//!   client round-trip succeeds.
//!
//! Failpoints are process-global, so this suite lives in its own test
//! binary and serializes scenarios on a mutex; the lib/integration tests in
//! other binaries never arm failpoints.

#![cfg(feature = "chaos")]

use graphmat_core::{Session, StoreOptions, Topology};
use graphmat_io::edgelist::EdgeList;
use graphmat_io::rmat::RmatConfig;
use graphmat_server::{
    protocol, Algorithm, BreakerConfig, Client, EdgeEdit, GraphService, ResilientClient,
    RetryPolicy, RunRequest, Server, ServerConfig, Status,
};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Serialize scenarios: armed failpoints are process-global state.
fn guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn test_edges() -> EdgeList<f32> {
    graphmat_io::rmat::generate(&RmatConfig::graph500(7).with_seed(23).with_weights(1, 10))
}

fn start_server() -> (Server, Arc<Topology<f32>>) {
    let edges = test_edges();
    let session = Session::sequential();
    let topology = session.build_graph(&edges).finish().unwrap();
    let service = GraphService::with_store_options(
        session,
        Arc::clone(&topology),
        StoreOptions {
            compaction_threshold: 64,
            background: true,
            overload_watermark: usize::MAX,
        },
    );
    let server = Server::bind(
        "127.0.0.1:0",
        service,
        ServerConfig {
            workers: 2,
            queue_depth: 32,
            write_stall_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server, topology)
}

fn retrying_client(addr: std::net::SocketAddr, seed: u64) -> ResilientClient {
    ResilientClient::new(
        addr.to_string(),
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(20),
            retry_budget: 100_000,
            seed,
        },
        BreakerConfig {
            // High threshold: these scenarios inject faults on purpose, and
            // the point is to keep hammering through them, not to fail fast.
            failure_threshold: 10_000,
            cooldown: Duration::from_millis(10),
        },
    )
}

/// splitmix64 — deterministic per-thread request sequencing.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Replay-verify an Ok reply: recompute the FNV checksum from the value
/// bytes the reply actually carried. A worker that answered from a
/// corrupted pooled state would disagree here.
fn verify_checksum(reply: &graphmat_server::RunReply) {
    use graphmat_server::ValueKind;
    let recomputed = match reply.value_kind {
        Some(ValueKind::F64) => protocol::checksum_f64(&reply.values_f64().expect("f64 values")),
        Some(ValueKind::U32) => protocol::checksum_u32(&reply.values_u32().expect("u32 values")),
        Some(ValueKind::F32) => protocol::checksum_f32(&reply.values_f32().expect("f32 values")),
        Some(ValueKind::U64) => protocol::checksum_u64(&reply.values_u64().expect("u64 values")),
        None => panic!("Ok reply without a value kind"),
    };
    assert_eq!(
        recomputed, reply.checksum,
        "Ok reply failed checksum replay"
    );
}

/// Mixed read/write load from several client threads, each count-bounded.
/// Returns the number of Ok runs observed (so scenarios can assert the
/// server actually served through the faults).
fn mixed_load(addr: std::net::SocketAddr, threads: usize, requests_per_thread: usize) -> u64 {
    let num_vertices = {
        let edges = test_edges();
        edges.num_vertices() as u64
    };
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = retrying_client(addr, 0xc0ffee ^ t as u64);
                let mut rng = 0x5eed ^ ((t as u64 + 1) << 40);
                let mut ok_runs = 0u64;
                for i in 0..requests_per_thread {
                    if i % 7 == 3 {
                        let src = (next_rand(&mut rng) % num_vertices) as u32;
                        let dst = (next_rand(&mut rng) % num_vertices) as u32;
                        match client.update(&[EdgeEdit::insert(src, dst, 1.0)]) {
                            // Typed rejections (injected apply errors,
                            // overload) and transport errors (dropped
                            // connections, inline-apply panics) are all
                            // legitimate under injected faults; the batch
                            // must just never half-apply — the replay
                            // checks below would surface that as a wrong
                            // answer or a hang.
                            Ok(_) | Err(_) => {}
                        }
                        continue;
                    }
                    let algorithm = match next_rand(&mut rng) % 4 {
                        0 => Algorithm::PageRank,
                        1 => Algorithm::Bfs,
                        2 => Algorithm::ConnectedComponents,
                        _ => Algorithm::InDegrees,
                    };
                    let request = RunRequest::new(algorithm)
                        .seed(next_rand(&mut rng) % num_vertices)
                        .iterations(5)
                        .timeout_ms(10_000)
                        .include_values(true);
                    match client.run(&request) {
                        Ok(reply) if reply.is_ok() => {
                            verify_checksum(&reply);
                            ok_runs += 1;
                        }
                        Ok(reply) => {
                            // Only the typed, fault-shaped statuses are
                            // acceptable — anything else is a wrong answer.
                            assert!(
                                matches!(
                                    reply.status,
                                    Status::Busy | Status::Timeout | Status::ServerError
                                ),
                                "unexpected status {:?}: {}",
                                reply.status,
                                reply.message
                            );
                        }
                        // Transport error after retries: dropped
                        // connection under frame faults. Tolerated.
                        Err(_) => {}
                    }
                }
                ok_runs
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

/// After disarming: a plain client (no retries) must round-trip
/// immediately — the bounded-time recovery assertion.
fn assert_recovered(addr: std::net::SocketAddr) {
    let mut plain = Client::connect(addr).expect("post-fault connect");
    plain.ping().expect("post-fault ping");
    let reply = plain
        .run(&RunRequest::new(Algorithm::Bfs).seed(0).include_values(true))
        .expect("post-fault run");
    assert!(reply.is_ok(), "post-fault run: {}", reply.message);
    verify_checksum(&reply);
}

/// One full scenario: arm the given failpoints, race mixed load, disarm,
/// assert recovery and counter balance.
fn run_scenario(failpoints: &[(&'static str, &str)]) {
    let _guard = guard();
    graphmat_chaos::reset();
    let (server, _topology) = start_server();
    let addr = server.local_addr();
    // Warm up before arming so every scenario starts from a serving state.
    assert_recovered(addr);
    for (name, spec) in failpoints {
        graphmat_chaos::configure(name, spec).unwrap();
    }
    let ok_runs = mixed_load(addr, 3, 40);
    let fired: u64 = failpoints
        .iter()
        .map(|(name, _)| graphmat_chaos::fires(name))
        .sum();
    graphmat_chaos::reset();
    assert_recovered(addr);
    // No leak: every isolated panic retired exactly one pooled state.
    let metrics = server.metrics();
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(
        metrics.worker_panics.load(Relaxed),
        metrics.pool_quarantined.load(Relaxed),
        "worker panics and quarantined states must balance"
    );
    assert!(
        ok_runs > 0,
        "server never answered Ok under {failpoints:?} (fired {fired})"
    );
    server.shutdown();
}

#[test]
fn worker_execute_panics_are_isolated_and_quarantined() {
    let _guard = guard();
    graphmat_chaos::reset();
    let (server, _topology) = start_server();
    let addr = server.local_addr();
    assert_recovered(addr);
    graphmat_chaos::configure("server.worker.execute", "panic@n1").unwrap();
    // A plain client sees the typed isolation reply, not a dropped
    // connection: the panic is caught inside the worker.
    let mut plain = Client::connect(addr).unwrap();
    let reply = plain
        .run(&RunRequest::new(Algorithm::Bfs).seed(0))
        .expect("connection must survive the isolated panic");
    assert_eq!(reply.status, Status::ServerError);
    assert!(
        reply.message.contains("quarantined"),
        "isolation reply should say so: {}",
        reply.message
    );
    graphmat_chaos::reset();
    assert_recovered(addr);
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(server.metrics().worker_panics.load(Relaxed), 1);
    assert_eq!(server.metrics().pool_quarantined.load(Relaxed), 1);
    server.shutdown();
}

#[test]
fn worker_lane_death_is_respawned_by_the_supervisor() {
    let _guard = guard();
    graphmat_chaos::reset();
    let (server, _topology) = start_server();
    let addr = server.local_addr();
    assert_recovered(addr);
    // Kill exactly one lane: the panic fires outside the per-run guard.
    graphmat_chaos::configure("server.worker.lane", "panic@n1").unwrap();
    {
        // This request's job is picked up by the dying lane. The lane's
        // ReplyGuard converts the unwind into a typed ServerError (the
        // connection must NOT hang on its reply channel), which the
        // resilient client retries — the surviving lane answers.
        let mut client = retrying_client(addr, 99);
        let reply = client
            .run(&RunRequest::new(Algorithm::Bfs).seed(0).include_values(true))
            .expect("retries must ride out the lane death");
        assert!(reply.is_ok(), "{}", reply.message);
        verify_checksum(&reply);
    }
    graphmat_chaos::reset();
    // The supervisor notices the dead lane within a few ticks and
    // respawns it; serving capacity must return to both lanes. Poll with a
    // deadline — bounded-time recovery, not eventual.
    use std::sync::atomic::Ordering::Relaxed;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.metrics().worker_restarts.load(Relaxed) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never respawned the dead lane"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_recovered(addr);
    // Both lanes alive again: two slow-ish concurrent runs both succeed.
    let ok_runs = mixed_load(addr, 2, 10);
    assert!(ok_runs > 0);
    server.shutdown();
}

#[test]
fn every_failpoint_individually_survives_mixed_load() {
    // Probabilistic arming (seeded, deterministic): roughly 1 in 12 hits
    // fire, so the load sees both faulted and clean requests at every
    // point. Worker/store panics use one-shot or low probability so the
    // scenario exercises recovery, not permanent outage.
    let scenarios: &[&[(&'static str, &str)]] = &[
        &[("server.worker.execute", "panic@p0.08,s7")],
        &[("server.worker.execute", "error@p0.15,s11")],
        &[("server.admission.push", "error@p0.10,s13")],
        &[("server.frame.read", "error@p0.05,s17")],
        &[("server.frame.write", "error@p0.05,s19")],
        &[("store.apply.admit", "error@p0.25,s23")],
        &[("store.overlay.build", "error@p0.25,s29")],
        &[("store.apply.publish", "panic@n3")],
        &[("store.compact", "panic@n1")],
    ];
    for scenario in scenarios {
        run_scenario(scenario);
    }
}

#[test]
fn seeded_random_combination_of_failpoints_survives_mixed_load() {
    run_scenario(&[
        ("server.worker.execute", "panic@p0.03,s31"),
        ("server.admission.push", "error@p0.04,s37"),
        ("server.frame.read", "error@p0.02,s41"),
        ("server.frame.write", "error@p0.02,s43"),
        ("store.apply.admit", "error@p0.10,s47"),
        ("store.overlay.build", "error@p0.10,s53"),
        ("store.compact", "panic@n2"),
    ]);
}

#[test]
fn store_overload_rejects_writes_while_reads_keep_serving() {
    let _guard = guard();
    graphmat_chaos::reset();
    // Tiny watermark + no compaction: the second batch tips the store into
    // degraded mode.
    let edges = test_edges();
    let session = Session::sequential();
    let topology = session.build_graph(&edges).finish().unwrap();
    let service = GraphService::with_store_options(
        session,
        Arc::clone(&topology),
        StoreOptions {
            compaction_threshold: usize::MAX,
            background: false,
            overload_watermark: 2,
        },
    );
    let server = Server::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let first = client
        .update(&[EdgeEdit::insert(0, 1, 1.0), EdgeEdit::insert(1, 2, 1.0)])
        .unwrap();
    assert!(first.is_ok(), "{}", first.message);
    let second = client.update(&[EdgeEdit::insert(2, 3, 1.0)]).unwrap();
    assert_eq!(second.status, Status::Overloaded, "{}", second.message);
    assert!(
        second.message.contains("overloaded"),
        "typed overload message: {}",
        second.message
    );
    // Degraded mode sheds writes only: reads still serve, same snapshot.
    let reply = client
        .run(
            &RunRequest::new(Algorithm::InDegrees)
                .seed(0)
                .include_values(true),
        )
        .unwrap();
    assert!(reply.is_ok(), "{}", reply.message);
    assert_eq!(reply.snapshot_version, first.snapshot_version);
    verify_checksum(&reply);
    // STATS counts the shed batch.
    let stats = client.stats_json().unwrap();
    assert!(
        stats.contains("\"update_overloaded\":1"),
        "stats must count shed batches: {stats}"
    );
    server.shutdown();
}
