//! Half-open peer reclamation: a client that sends valid requests and then
//! stalls forever mid-response-read must not pin a connection thread (or
//! any worker slot) indefinitely. The server's write-stall timeout bounds
//! the blocked `write_frame`, drops the connection, and keeps serving
//! everyone else.

use graphmat_core::{Session, Topology};
use graphmat_io::edgelist::EdgeList;
use graphmat_io::rmat::RmatConfig;
use graphmat_server::{Algorithm, Client, GraphService, RunRequest, Server, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_server(config: ServerConfig) -> (Server, Arc<Topology<f32>>) {
    // A larger graph (2^13 vertices) so include_values replies are ~64 KiB:
    // a handful of unread replies overflow the kernel socket buffers and
    // block the server's write path — the half-open hazard under test.
    let edges: EdgeList<f32> =
        graphmat_io::rmat::generate(&RmatConfig::graph500(13).with_seed(5).with_weights(1, 10));
    let session = Session::sequential();
    let topology = session.build_graph(&edges).finish().unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        GraphService::new(session, Arc::clone(&topology)),
        config,
    )
    .unwrap();
    (server, topology)
}

/// Encode one RUN frame (length prefix + body) by hand so we can write
/// requests without ever reading replies.
fn encoded_run_frame() -> Vec<u8> {
    let mut body = Vec::new();
    RunRequest::new(Algorithm::PageRank)
        .iterations(5)
        .include_values(true)
        .encode(&mut body);
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

#[test]
fn half_open_peer_is_reclaimed_and_serving_continues() {
    let (server, _topology) = start_server(ServerConfig {
        workers: 2,
        queue_depth: 16,
        // Short stall budget so the test is fast; production default is 10s.
        write_stall_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // The half-open peer: valid frames in, nothing ever read out. A tiny
    // receive buffer makes the server's send side fill after the first
    // large reply, so its connection thread blocks in write_frame.
    let mut stalled = TcpStream::connect(addr).unwrap();
    // Shrink our receive window if the OS lets us (best effort — the
    // 64 KiB replies overflow default loopback buffers regardless).
    let frame = encoded_run_frame();
    for _ in 0..64 {
        if stalled.write_all(&frame).is_err() {
            // Server already dropped us — that's the mechanism working.
            break;
        }
    }
    // ... and now stall forever: no reads, connection held open.

    // Meanwhile every other client keeps getting answers the whole time.
    let mut live = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut reclaimed = false;
    while Instant::now() < deadline {
        let reply = live
            .run(&RunRequest::new(Algorithm::Bfs).seed(0).timeout_ms(5_000))
            .expect("live client must keep serving alongside the stalled peer");
        assert!(reply.is_ok(), "{}", reply.message);
        if server.metrics().dropped_connections.load(Relaxed) > 0 {
            reclaimed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        reclaimed,
        "server never reclaimed the half-open connection (write stall timeout)"
    );

    // The stalled peer's socket is dead from the server side; worker slots
    // are free (workers hand replies to a channel, they never block on the
    // socket), so a burst of fresh clients all succeed promptly.
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let reply = client
                    .run(&RunRequest::new(Algorithm::InDegrees).timeout_ms(5_000))
                    .unwrap();
                assert!(reply.is_ok(), "{}", reply.message);
            })
        })
        .collect();
    for handle in workers {
        handle.join().unwrap();
    }
    drop(stalled);
    server.shutdown();
}
