//! Adversarial protocol tests: truncated frames, hostile length prefixes,
//! unknown ids, malformed bodies. The invariant under test: every
//! malformed input produces a typed error response or a closed connection —
//! never a panic, never a hung connection thread.

use graphmat_core::Session;
use graphmat_io::rmat::RmatConfig;
use graphmat_server::protocol::{opcode, UpdateRequest, PROTOCOL_VERSION};
use graphmat_server::{
    Algorithm, Client, EdgeEdit, GraphService, RunRequest, Server, ServerConfig, Status,
};
use std::time::Duration;

fn start_server() -> Server {
    let edges = graphmat_io::rmat::generate(&RmatConfig::graph500(6).with_seed(3));
    let session = Session::sequential();
    let topology = session.build_graph(&edges).finish().unwrap();
    Server::bind(
        "127.0.0.1:0",
        GraphService::new(session, topology),
        ServerConfig {
            // Short stall timeout so the truncated-frame test is fast.
            read_stall_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Status byte of a raw reply body (`version | status | ...`).
fn status_of(reply: &[u8]) -> Status {
    assert!(reply.len() >= 2, "reply too short: {reply:?}");
    assert_eq!(reply[0], PROTOCOL_VERSION);
    Status::from_u8(reply[1]).expect("valid status byte")
}

/// After a well-framed error the connection must still serve requests.
fn assert_connection_alive(client: &mut Client) {
    client
        .ping()
        .expect("connection must survive a decode error");
}

#[test]
fn zero_length_frame_is_a_typed_error() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reply = client.raw_round_trip(&[]).unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);
    assert_connection_alive(&mut client);
    server.shutdown();
}

#[test]
fn unknown_opcode_and_bad_version_are_typed_errors() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reply = client.raw_round_trip(&[PROTOCOL_VERSION, 250]).unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);
    let reply = client.raw_round_trip(&[99, opcode::PING]).unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);
    assert_connection_alive(&mut client);
    server.shutdown();
}

#[test]
fn unknown_algorithm_id_is_a_typed_error() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut body = Vec::new();
    RunRequest::new(Algorithm::Bfs).encode(&mut body);
    body[2] = 77; // stomp the algorithm id
    let reply = client.raw_round_trip(&body).unwrap();
    assert_eq!(status_of(&reply), Status::UnknownAlgorithm);
    assert_connection_alive(&mut client);
    server.shutdown();
}

#[test]
fn malformed_run_bodies_are_typed_errors() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Short body.
    let reply = client
        .raw_round_trip(&[PROTOCOL_VERSION, opcode::RUN, 0, 0, 1])
        .unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);

    // Trailing junk.
    let mut body = Vec::new();
    RunRequest::new(Algorithm::Bfs).encode(&mut body);
    body.extend_from_slice(b"junk");
    let reply = client.raw_round_trip(&body).unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);

    // Undefined flag bits.
    let mut body = Vec::new();
    RunRequest::new(Algorithm::Bfs).encode(&mut body);
    body[3] = 0xF0;
    let reply = client.raw_round_trip(&body).unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);

    assert_connection_alive(&mut client);
    server.shutdown();
}

#[test]
fn out_of_range_seed_is_a_typed_error_not_a_panic() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Vertex far beyond the scale-6 graph, and beyond u32.
    for seed in [1_000_000u64, u64::MAX] {
        let reply = client
            .run(&RunRequest::new(Algorithm::Bfs).seed(seed))
            .unwrap();
        assert_eq!(reply.status, Status::BadRequest, "{}", reply.message);
        assert!(
            reply.message.contains("out of range"),
            "useful message expected, got {:?}",
            reply.message
        );
    }
    assert_connection_alive(&mut client);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_gets_error_then_disconnect() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // A hostile 4 GiB length prefix: the server cannot resync the stream,
    // so it answers with a typed error and drops the connection.
    client.raw_write(&u32::MAX.to_le_bytes()).unwrap();
    let reply = client.raw_read().unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);
    assert!(
        client.expect_eof(),
        "server must close after a bogus prefix"
    );
    // The server itself must survive for other clients.
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    fresh.ping().unwrap();
    server.shutdown();
}

#[test]
fn truncated_frame_times_out_and_disconnects() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Claim 20 bytes, send 5, go silent: the mid-frame stall watchdog must
    // close the connection instead of hanging the thread forever.
    client.raw_write(&20u32.to_le_bytes()).unwrap();
    client
        .raw_write(&[PROTOCOL_VERSION, opcode::RUN, 0, 0, 0])
        .unwrap();
    assert!(
        client.expect_eof(),
        "server must drop a connection stalled mid-frame"
    );
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    fresh.ping().unwrap();
    server.shutdown();
}

#[test]
fn malformed_update_bodies_are_typed_errors_and_do_not_corrupt_the_snapshot() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Reference result against the untouched version-0 snapshot.
    let baseline = client
        .run(&RunRequest::new(Algorithm::ConnectedComponents))
        .unwrap();
    assert_eq!(baseline.snapshot_version, 0);

    // Zero-length batch (count == 0).
    let reply = client
        .raw_round_trip(&[PROTOCOL_VERSION, opcode::UPDATE, 0, 0, 0, 0, 0])
        .unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);

    // Truncated prefix.
    let reply = client
        .raw_round_trip(&[PROTOCOL_VERSION, opcode::UPDATE, 0])
        .unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);

    // Count that disagrees with the body length.
    let mut body = Vec::new();
    UpdateRequest::new(vec![EdgeEdit::insert(0, 1, 1.0)]).encode(&mut body);
    body[3..7].copy_from_slice(&1000u32.to_le_bytes());
    let reply = client.raw_round_trip(&body).unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);

    // Undefined flag bits.
    let mut body = Vec::new();
    UpdateRequest::new(vec![EdgeEdit::insert(0, 1, 1.0)]).encode(&mut body);
    body[2] = 0b0000_0001;
    let reply = client.raw_round_trip(&body).unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);

    // Unknown edit op byte.
    let mut body = Vec::new();
    UpdateRequest::new(vec![EdgeEdit::insert(0, 1, 1.0)]).encode(&mut body);
    body[7] = 42;
    let reply = client.raw_round_trip(&body).unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);

    // Well-formed frame, but the vertex ids are beyond the graph.
    let reply = client
        .update(&[EdgeEdit::insert(u32::MAX, 0, 1.0)])
        .unwrap();
    assert_eq!(reply.status, Status::BadRequest, "{}", reply.message);
    let reply = client.update(&[EdgeEdit::delete(0, u32::MAX - 1)]).unwrap();
    assert_eq!(reply.status, Status::BadRequest, "{}", reply.message);

    // None of the rejected batches may have published a snapshot: the
    // version is still 0 and queries reproduce the baseline bit-for-bit.
    let after = client
        .run(&RunRequest::new(Algorithm::ConnectedComponents))
        .unwrap();
    assert_eq!(after.snapshot_version, 0);
    assert_eq!(after.checksum, baseline.checksum);

    assert_connection_alive(&mut client);
    server.shutdown();
}

#[test]
fn oversized_update_frame_gets_error_then_disconnect() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // An UPDATE whose claimed body exceeds MAX_FRAME_LEN: rejected at the
    // framing layer before any edit bytes are read.
    client
        .raw_write(&((graphmat_server::protocol::MAX_FRAME_LEN as u32) + 1).to_le_bytes())
        .unwrap();
    let reply = client.raw_read().unwrap();
    assert_eq!(status_of(&reply), Status::BadRequest);
    assert!(
        client.expect_eof(),
        "server must close after a bogus prefix"
    );
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    fresh.ping().unwrap();
    server.shutdown();
}

#[test]
fn half_sent_header_then_close_does_not_wedge_the_server() {
    let server = start_server();
    {
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.raw_write(&[7u8, 0]).unwrap();
        // dropped here — mid-header EOF
    }
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    fresh.ping().unwrap();
    server.shutdown();
}
