//! End-to-end serving tests: a real TCP server on a loopback port, driven
//! through the reference client, with results checked bit-for-bit against
//! direct `Session` runs on the same topology.

use graphmat_algorithms::bfs::bfs_on;
use graphmat_algorithms::connected_components::connected_components_on;
use graphmat_algorithms::degree::in_degrees_on;
use graphmat_algorithms::pagerank::{pagerank_on, PageRankConfig};
use graphmat_algorithms::sssp::sssp_on;
use graphmat_core::{Session, Topology};
use graphmat_io::edgelist::EdgeList;
use graphmat_io::rmat::RmatConfig;
use graphmat_server::{
    protocol, Algorithm, Client, GraphService, RunRequest, Server, ServerConfig, Status,
};
use std::sync::Arc;
use std::time::Duration;

fn test_edges() -> EdgeList<f32> {
    graphmat_io::rmat::generate(&RmatConfig::graph500(7).with_seed(11).with_weights(1, 10))
}

fn start_server(config: ServerConfig) -> (Server, Arc<Topology<f32>>) {
    let edges = test_edges();
    let session = Session::sequential();
    let topology = session.build_graph(&edges).finish().unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        GraphService::new(session, Arc::clone(&topology)),
        config,
    )
    .unwrap();
    (server, topology)
}

#[test]
fn concurrent_mixed_clients_match_direct_session_runs() {
    let (server, topology) = start_server(ServerConfig {
        workers: 2,
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Expected results computed directly against the same Arc<Topology>
    // (results are bit-identical across sessions and thread counts).
    let check = Session::sequential();
    let pr_cfg = PageRankConfig {
        iterations: 10,
        ..Default::default()
    };
    let expect_pr = pagerank_on(&check, &topology, &pr_cfg).unwrap().values;
    let expect_cc = connected_components_on(&check, &topology).unwrap().values;
    let expect_deg = in_degrees_on(&check, &topology).unwrap().values;
    let expect_bfs: Vec<Vec<u32>> = (0..4)
        .map(|root| bfs_on(&check, &topology, root).unwrap().values)
        .collect();
    let expect_sssp: Vec<Vec<f32>> = (0..4)
        .map(|src| sssp_on(&check, &topology, src).unwrap().values)
        .collect();

    // ≥8 concurrent clients, mixed algorithms, several queries each.
    let clients: Vec<_> = (0..8u32)
        .map(|i| {
            let expect_pr = expect_pr.clone();
            let expect_cc = expect_cc.clone();
            let expect_deg = expect_deg.clone();
            let expect_bfs = expect_bfs.clone();
            let expect_sssp = expect_sssp.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..3u32 {
                    let seed = ((i + round) % 4) as u64;
                    match i % 4 {
                        0 => {
                            let reply = client
                                .run(
                                    &RunRequest::new(Algorithm::PageRank)
                                        .iterations(10)
                                        .include_values(true),
                                )
                                .unwrap();
                            assert!(reply.is_ok(), "{}", reply.message);
                            assert_eq!(reply.values_f64().unwrap(), expect_pr);
                            assert_eq!(reply.checksum, protocol::checksum_f64(&expect_pr));
                        }
                        1 => {
                            let reply = client
                                .run(
                                    &RunRequest::new(Algorithm::Bfs)
                                        .seed(seed)
                                        .include_values(true),
                                )
                                .unwrap();
                            assert!(reply.is_ok(), "{}", reply.message);
                            assert_eq!(reply.values_u32().unwrap(), expect_bfs[seed as usize]);
                        }
                        2 => {
                            let reply = client
                                .run(
                                    &RunRequest::new(Algorithm::Sssp)
                                        .seed(seed)
                                        .include_values(true),
                                )
                                .unwrap();
                            assert!(reply.is_ok(), "{}", reply.message);
                            assert_eq!(reply.values_f32().unwrap(), expect_sssp[seed as usize]);
                        }
                        _ => {
                            let reply = client
                                .run(
                                    &RunRequest::new(Algorithm::ConnectedComponents)
                                        .include_values(true),
                                )
                                .unwrap();
                            assert!(reply.is_ok(), "{}", reply.message);
                            assert_eq!(reply.values_u32().unwrap(), expect_cc);
                            let reply = client
                                .run(&RunRequest::new(Algorithm::InDegrees).include_values(true))
                                .unwrap();
                            assert!(reply.is_ok(), "{}", reply.message);
                            assert_eq!(reply.values_u64().unwrap(), expect_deg);
                        }
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }
    assert!(server.metrics().total_ok() >= 24);
    assert_eq!(server.metrics().total_failed(), 0);
    server.shutdown();
}

#[test]
fn checksum_only_replies_verify_against_local_values() {
    let (server, topology) = start_server(ServerConfig::default());
    let check = Session::sequential();
    let expect = bfs_on(&check, &topology, 3).unwrap().values;

    let mut client = Client::connect(server.local_addr()).unwrap();
    let reply = client
        .run(&RunRequest::new(Algorithm::Bfs).seed(3))
        .unwrap();
    assert!(reply.is_ok());
    assert!(
        reply.values.is_empty(),
        "checksum-only reply ships no values"
    );
    assert_eq!(reply.num_values as usize, expect.len());
    assert_eq!(reply.checksum, protocol::checksum_u32(&expect));
    server.shutdown();
}

#[test]
fn overload_is_rejected_busy_not_queued_forever() {
    // One slow worker, queue depth 1: most of a burst must bounce.
    let (server, _topology) = start_server(ServerConfig {
        workers: 1,
        queue_depth: 1,
        service_delay: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let burst: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client
                    .run(&RunRequest::new(Algorithm::Bfs).seed(0))
                    .unwrap()
                    .status
            })
        })
        .collect();
    let statuses: Vec<Status> = burst.into_iter().map(|t| t.join().unwrap()).collect();
    let ok = statuses.iter().filter(|s| **s == Status::Ok).count();
    let busy = statuses.iter().filter(|s| **s == Status::Busy).count();
    assert!(ok >= 1, "some requests must get through: {statuses:?}");
    assert!(busy >= 1, "undersized queue must bounce some: {statuses:?}");
    assert_eq!(
        ok + busy,
        statuses.len(),
        "only Ok/Busy expected: {statuses:?}"
    );
    assert_eq!(server.metrics().total_busy() as usize, busy);
    server.shutdown();
}

#[test]
fn deadline_expired_while_queued_returns_timeout() {
    // The artificial service delay exceeds the request deadline, so the
    // deadline check after pop fires deterministically.
    let (server, _topology) = start_server(ServerConfig {
        workers: 1,
        queue_depth: 8,
        service_delay: Some(Duration::from_millis(80)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reply = client
        .run(&RunRequest::new(Algorithm::Bfs).seed(0).timeout_ms(20))
        .unwrap();
    assert_eq!(reply.status, Status::Timeout, "{}", reply.message);
    assert_eq!(server.metrics().total_timeout(), 1);
    server.shutdown();
}

#[test]
fn deadline_mid_run_returns_timeout() {
    // A graph big enough that PageRank takes well over the deadline even in
    // release builds (it converges after ~200 supersteps; each superstep
    // touches every edge). The engine checks the deadline between
    // supersteps and aborts mid-run.
    let edges =
        graphmat_io::rmat::generate(&RmatConfig::graph500(12).with_seed(5).with_weights(1, 10));
    let session = Session::sequential();
    let topology = session.build_graph(&edges).finish().unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        GraphService::new(session, topology),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reply = client
        .run(
            &RunRequest::new(Algorithm::PageRank)
                .iterations(200_000)
                .timeout_ms(5),
        )
        .unwrap();
    assert_eq!(reply.status, Status::Timeout, "{}", reply.message);
    assert!(
        reply.message.contains("deadline"),
        "timeout reply must say so: {:?}",
        reply.message
    );
    // The worker and its pooled state survive to serve the next query.
    let reply = client
        .run(&RunRequest::new(Algorithm::PageRank).iterations(5))
        .unwrap();
    assert!(reply.is_ok(), "{}", reply.message);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (server, _topology) = start_server(ServerConfig {
        workers: 1,
        queue_depth: 4,
        service_delay: Some(Duration::from_millis(120)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .run(&RunRequest::new(Algorithm::Bfs).seed(0))
            .unwrap()
    });
    // Let the request reach the queue, then shut down underneath it.
    std::thread::sleep(Duration::from_millis(40));
    server.shutdown();
    let reply = in_flight.join().unwrap();
    assert!(
        reply.is_ok(),
        "admitted request must be drained, got {:?}: {}",
        reply.status,
        reply.message
    );
}

#[test]
fn late_requests_during_shutdown_are_refused_not_hung() {
    let (server, _topology) = start_server(ServerConfig::default());
    let addr = server.local_addr();
    let mut straggler = Client::connect(addr).unwrap();
    straggler.ping().unwrap();

    // Ask for shutdown over the wire; the server must acknowledge first.
    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();

    // A run on a pre-existing connection now either gets a typed
    // ShuttingDown reply (if it races ahead of the connection teardown) or
    // a closed connection — never a hang, never success.
    match straggler.run(&RunRequest::new(Algorithm::Bfs).seed(0)) {
        Ok(reply) => assert_eq!(reply.status, Status::ShuttingDown, "{}", reply.message),
        Err(_closed) => {}
    }
    server.wait();
}

#[test]
fn steady_state_serving_allocates_no_new_states() {
    let (server, _topology) = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Warm-up: first request per algorithm creates that pool's one state.
    for _ in 0..2 {
        for algorithm in [Algorithm::Bfs, Algorithm::Sssp, Algorithm::PageRank] {
            let reply = client
                .run(&RunRequest::new(algorithm).seed(1).iterations(5))
                .unwrap();
            assert!(reply.is_ok(), "{}", reply.message);
        }
    }
    let created_after_warmup = server
        .metrics()
        .pool_created
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(created_after_warmup, 3, "one state per algorithm pool");

    for round in 0..10u64 {
        for algorithm in [Algorithm::Bfs, Algorithm::Sssp, Algorithm::PageRank] {
            let reply = client
                .run(&RunRequest::new(algorithm).seed(round % 8).iterations(5))
                .unwrap();
            assert!(reply.is_ok(), "{}", reply.message);
        }
    }
    let created = server
        .metrics()
        .pool_created
        .load(std::sync::atomic::Ordering::Relaxed);
    let reused = server
        .metrics()
        .pool_reused
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(
        created, created_after_warmup,
        "steady state must not allocate new states"
    );
    assert!(reused >= 30, "reuse counter must grow: {reused}");

    // The same counters are visible through the wire STATS endpoint.
    let stats = client.stats_json().unwrap();
    assert!(
        stats.contains(&format!("\"created\":{created}")),
        "stats must export pool growth: {stats}"
    );
    server.shutdown();
}

#[test]
fn stats_endpoint_reports_counters_and_latency() {
    let (server, topology) = start_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    for _ in 0..3 {
        let reply = client
            .run(&RunRequest::new(Algorithm::Bfs).seed(0))
            .unwrap();
        assert!(reply.is_ok());
    }
    let stats = client.stats_json().unwrap();
    for key in [
        &format!("\"num_vertices\":{}", topology.num_vertices()) as &str,
        &format!("\"num_edges\":{}", topology.num_edges()),
        "\"qps\":",
        "\"p99_us\":",
        "\"pings\":1",
        "\"bfs\":{\"requests\":3,\"ok\":3",
    ] {
        assert!(stats.contains(key), "missing {key} in {stats}");
    }
    server.shutdown();
}
