//! Streaming-update serving tests: UPDATE batches over the wire, snapshot
//! isolation under concurrent ingest, and bit-for-bit agreement between
//! queries served from `(base ⊕ delta)` snapshots and direct runs against a
//! topology rebuilt from the same edits.

use graphmat_algorithms::bfs::bfs_on;
use graphmat_algorithms::connected_components::connected_components_on;
use graphmat_algorithms::degree::in_degrees_on;
use graphmat_algorithms::pagerank::{pagerank_on, PageRankConfig};
use graphmat_algorithms::sssp::sssp_on;
use graphmat_core::{GraphStore, Session, StoreOptions, Topology};
use graphmat_delta::DeltaBatch;
use graphmat_io::edgelist::EdgeList;
use graphmat_io::rmat::RmatConfig;
use graphmat_server::{
    protocol, Algorithm, Client, EdgeEdit, GraphService, RunRequest, Server, ServerConfig,
};
use std::collections::HashMap;
use std::sync::Arc;

fn test_edges() -> EdgeList<f32> {
    graphmat_io::rmat::generate(&RmatConfig::graph500(7).with_seed(11).with_weights(1, 10))
}

fn start_server(options: StoreOptions, config: ServerConfig) -> (Server, Arc<Topology<f32>>) {
    let session = Session::sequential();
    let topology = session.build_graph(&test_edges()).finish().unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        GraphService::with_store_options(session, Arc::clone(&topology), options),
        config,
    )
    .unwrap();
    (server, topology)
}

/// splitmix64 step — deterministic pseudo-random edits.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Apply recorded UPDATE batches (in version order, up to and including
/// `version`) to a fresh store over `base`, then compact, so the result is a
/// genuinely rebuilt topology — not another overlay.
fn rebuild_at_version(
    base: &Arc<Topology<f32>>,
    batches: &HashMap<u64, Vec<EdgeEdit>>,
    version: u64,
) -> Arc<Topology<f32>> {
    let store = GraphStore::new(
        Arc::clone(base),
        StoreOptions {
            compaction_threshold: usize::MAX,
            background: false,
            overload_watermark: usize::MAX,
        },
    );
    for v in 1..=version {
        let edits = &batches[&v];
        let mut batch = DeltaBatch::new(base.num_vertices());
        for edit in edits {
            if edit.insert {
                batch.insert(edit.src, edit.dst, edit.weight).unwrap();
            } else {
                batch.delete(edit.src, edit.dst).unwrap();
            }
        }
        store.apply(batch).unwrap();
    }
    store.compact_now();
    let snapshot = store.snapshot();
    assert!(
        snapshot.overlay().is_none(),
        "compaction must clear overlay"
    );
    Arc::clone(snapshot.base())
}

#[test]
fn update_over_the_wire_changes_query_results() {
    let (server, topology) = start_server(StoreOptions::default(), ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let before = client
        .run(&RunRequest::new(Algorithm::Bfs).seed(0).include_values(true))
        .unwrap();
    assert!(before.is_ok(), "{}", before.message);
    assert_eq!(before.snapshot_version, 0);

    // Splice vertex 0 directly into every vertex it could not reach.
    let unreached: Vec<u32> = before
        .values_u32()
        .unwrap()
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == u32::MAX)
        .map(|(v, _)| v as u32)
        .collect();
    assert!(!unreached.is_empty(), "scale-7 RMAT has unreached vertices");
    let edits: Vec<EdgeEdit> = unreached
        .iter()
        .map(|&v| EdgeEdit::insert(0, v, 1.0))
        .collect();
    let reply = client.update(&edits).unwrap();
    assert!(reply.is_ok(), "{}", reply.message);
    assert_eq!(reply.snapshot_version, 1);
    assert_eq!(reply.delta_edges as usize, edits.len());

    let after = client
        .run(&RunRequest::new(Algorithm::Bfs).seed(0).include_values(true))
        .unwrap();
    assert!(after.is_ok(), "{}", after.message);
    assert_eq!(after.snapshot_version, 1);
    let distances = after.values_u32().unwrap();
    assert!(
        distances.iter().all(|&d| d != u32::MAX),
        "every vertex must now be reachable from 0"
    );

    // The served result is bit-identical to a direct run over a topology
    // rebuilt from the same edits.
    let mut batches = HashMap::new();
    batches.insert(1, edits);
    let rebuilt = rebuild_at_version(&topology, &batches, 1);
    let check = Session::sequential();
    let expect = bfs_on(&check, &rebuilt, 0).unwrap().values;
    assert_eq!(distances, expect);

    // Deleting the splices restores the original distances (the graph, not
    // the history, defines the result).
    let removals: Vec<EdgeEdit> = unreached.iter().map(|&v| EdgeEdit::delete(0, v)).collect();
    let reply = client.update(&removals).unwrap();
    assert!(reply.is_ok(), "{}", reply.message);
    assert_eq!(reply.snapshot_version, 2);
    let restored = client
        .run(&RunRequest::new(Algorithm::Bfs).seed(0).include_values(true))
        .unwrap();
    assert_eq!(restored.snapshot_version, 2);
    assert_eq!(restored.checksum, before.checksum);

    server.shutdown();
}

#[test]
fn stats_exposes_store_state_after_updates() {
    let (server, _topology) = start_server(
        StoreOptions {
            compaction_threshold: usize::MAX, // keep the delta visible
            background: false,
            overload_watermark: usize::MAX,
        },
        ServerConfig::default(),
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .update(&[EdgeEdit::insert(1, 2, 1.0), EdgeEdit::insert(2, 3, 1.0)])
        .unwrap();
    let stats = client.stats_json().unwrap();
    for key in [
        "\"snapshot_version\":1",
        "\"delta_edges\":2",
        "\"updates\":1",
        "\"update_edits\":2",
        "\"compactions\":0",
    ] {
        assert!(stats.contains(key), "missing {key} in {stats}");
    }
    server.shutdown();
}

/// The acceptance-criterion test: client threads running mixed algorithms
/// concurrently with writer threads pushing real edge batches while the
/// background worker compacts. Every reply names the snapshot version it was
/// admitted against, and its checksum must be bit-identical to a direct run
/// against a topology rebuilt from exactly that version's edits — in-flight
/// queries are never contaminated by later writes or by compaction.
#[test]
fn ingest_while_serving_queries_match_their_admitted_snapshot() {
    const WRITERS: usize = 2;
    const BATCHES_PER_WRITER: u64 = 6;
    const EDITS_PER_BATCH: usize = 24;
    const READERS: usize = 4;
    const QUERIES_PER_READER: usize = 10;

    let (server, topology) = start_server(
        StoreOptions {
            // Low threshold so background compaction genuinely runs
            // mid-test.
            compaction_threshold: 32,
            background: true,
            overload_watermark: usize::MAX,
        },
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let num_vertices = topology.num_vertices() as u64;

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || -> Vec<(u64, Vec<EdgeEdit>)> {
                let mut client = Client::connect(addr).unwrap();
                let mut rng = 0xA5A5_0000 ^ (w as u64) << 8;
                let mut applied = Vec::new();
                for _ in 0..BATCHES_PER_WRITER {
                    let edits: Vec<EdgeEdit> = (0..EDITS_PER_BATCH)
                        .map(|_| {
                            let src = (next_rand(&mut rng) % num_vertices) as u32;
                            let dst = (next_rand(&mut rng) % num_vertices) as u32;
                            if next_rand(&mut rng) % 4 == 0 {
                                EdgeEdit::delete(src, dst)
                            } else {
                                EdgeEdit::insert(src, dst, (1 + next_rand(&mut rng) % 9) as f32)
                            }
                        })
                        .collect();
                    let reply = client.update(&edits).unwrap();
                    assert!(reply.is_ok(), "{}", reply.message);
                    applied.push((reply.snapshot_version, edits));
                }
                applied
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            std::thread::spawn(move || -> Vec<(Algorithm, u64, u64, u64)> {
                let mut client = Client::connect(addr).unwrap();
                let mut observed = Vec::new();
                for q in 0..QUERIES_PER_READER {
                    let seed = ((r + q) % 8) as u64;
                    let algorithm = match (r + q) % 5 {
                        0 => Algorithm::PageRank,
                        1 => Algorithm::Bfs,
                        2 => Algorithm::Sssp,
                        3 => Algorithm::ConnectedComponents,
                        _ => Algorithm::InDegrees,
                    };
                    let reply = client
                        .run(&RunRequest::new(algorithm).seed(seed).iterations(10))
                        .unwrap();
                    assert!(reply.is_ok(), "{}", reply.message);
                    observed.push((algorithm, seed, reply.snapshot_version, reply.checksum));
                }
                observed
            })
        })
        .collect();

    // Version → batch, reassembled from what each writer was told it
    // published.
    let mut batches: HashMap<u64, Vec<EdgeEdit>> = HashMap::new();
    for writer in writers {
        for (version, edits) in writer.join().unwrap() {
            assert!(batches.insert(version, edits).is_none());
        }
    }
    assert_eq!(batches.len(), WRITERS * BATCHES_PER_WRITER as usize);
    let queries: Vec<_> = readers
        .into_iter()
        .flat_map(|r| r.join().unwrap())
        .collect();
    server.shutdown();

    // Replay: for every observed (version, query), rebuild the graph as it
    // was at that version and demand a bit-identical checksum.
    let check = Session::sequential();
    let mut rebuilt_cache: HashMap<u64, Arc<Topology<f32>>> = HashMap::new();
    for (algorithm, seed, version, checksum) in queries {
        let rebuilt = rebuilt_cache
            .entry(version)
            .or_insert_with(|| rebuild_at_version(&topology, &batches, version));
        let expect = match algorithm {
            Algorithm::PageRank => {
                let cfg = PageRankConfig {
                    iterations: 10,
                    ..Default::default()
                };
                protocol::checksum_f64(&pagerank_on(&check, rebuilt, &cfg).unwrap().values)
            }
            Algorithm::Bfs => {
                protocol::checksum_u32(&bfs_on(&check, rebuilt, seed as u32).unwrap().values)
            }
            Algorithm::Sssp => {
                protocol::checksum_f32(&sssp_on(&check, rebuilt, seed as u32).unwrap().values)
            }
            Algorithm::ConnectedComponents => {
                protocol::checksum_u32(&connected_components_on(&check, rebuilt).unwrap().values)
            }
            Algorithm::InDegrees => {
                protocol::checksum_u64(&in_degrees_on(&check, rebuilt).unwrap().values)
            }
        };
        assert_eq!(
            checksum,
            expect,
            "{} at snapshot version {version} (seed {seed}) diverged from \
             the from-scratch rebuild",
            algorithm.name()
        );
    }
}
